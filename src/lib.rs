//! Umbrella crate for the QCFE reproduction.
//!
//! Re-exports the workspace crates under one roof so examples and downstream
//! users can depend on a single `qcfe` crate:
//!
//! * [`nn`] — the dense neural-network substrate,
//! * [`storage`] — pages, B+tree/LSM storage, buffer pool, disk model,
//! * [`db`] — catalog, statistics, planner, plan trees, knobs, execution simulator,
//! * [`workloads`] — TPC-H / job-light / Sysbench style benchmarks,
//! * [`core`] — the paper's contribution: feature snapshot, simplified
//!   templates, feature reduction and the QPPNet/MSCN estimators,
//! * [`serve`] — the online estimation service layer: persisted snapshot
//!   store keyed by environment fingerprint, model registry, and a
//!   concurrent micro-batching inference service with metrics,
//! * [`net`] — the network front end: the QCFP length-framed wire
//!   protocol, a single-threaded reactor server multiplexing TCP and
//!   Unix-domain clients into the gateway, and a blocking client.

pub use qcfe_core as core;
pub use qcfe_db as db;
pub use qcfe_net as net;
pub use qcfe_nn as nn;
pub use qcfe_serve as serve;
pub use qcfe_storage as storage;
pub use qcfe_workloads as workloads;

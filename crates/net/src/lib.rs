//! # qcfe-net — the event-loop network front end
//!
//! Everything below [`qcfe_serve::QcfeGateway`] is in-process; this crate
//! puts the gateway on the network so remote clients submit plans and read
//! estimates over TCP or Unix-domain sockets:
//!
//! * [`wire`] — the `QCFP` wire protocol: length-framed, versioned,
//!   CRC-checked request/response records with strict unknown-version/flag
//!   rejection and no-panic bounds-checked decoding.
//! * [`server`] — a single-threaded reactor (epoll on Linux, `poll`
//!   elsewhere) multiplexing every connection through non-blocking framed
//!   reads/writes, submitting decoded requests through the gateway's
//!   asynchronous [`qcfe_serve::QcfeGateway::submit_with_notify`] path and
//!   shipping responses as they complete — thousands of in-flight
//!   estimates without a thread each.
//! * [`client`] — a small blocking client that connects, pipelines
//!   requests and reaps responses by correlation id, with an opt-in
//!   [`client::RetryPolicy`] for backoff-on-shed and transparent
//!   reconnect; [`client::ShardClient`] adds shard-aware routing over a
//!   replica set — it rendezvous-places each request's serving key,
//!   follows [`wire::WireFault::NotOwner`] redirects, and fails over to
//!   the surviving peers when the owner dies mid-load.
//! * [`replicator`] — the peer-to-peer shipping worker behind
//!   [`qcfe_serve::ReplicationSink`]: every published or refined
//!   snapshot/model is pushed to the other replica-set members as `QCFP`
//!   ship frames (the verbatim persisted `QCFS`/`QCFW` codec bytes), and
//!   heartbeat probes keep the shared liveness mask honest so a dead
//!   peer's shards rendezvous onto survivors.
//!
//! The `qcfe-served` binary glues the pieces together: it opens a store
//! directory, builds a gateway and serves it on the listeners named on the
//! command line; `--peer`/`--self-index` turn N such processes into a
//! replica set.

pub mod client;
pub mod replicator;
pub mod server;
pub mod sys;
pub mod wire;

pub use client::{ClientError, QcfeClient, RetryPolicy, ShardClient};
pub use replicator::{Replicator, ReplicatorConfig, ReplicatorStats};
pub use server::{NetServerBuilder, ServerHandle, ServerStats};
pub use wire::{
    decode_frame, encode_request, encode_response, frame_length, Frame, WireError, WireEstimate,
    WireFault, WireRequest, WireResponse, WireShipAck, WireShipModel, WireShipSnapshot,
};

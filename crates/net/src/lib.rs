//! # qcfe-net — the event-loop network front end
//!
//! Everything below [`qcfe_serve::QcfeGateway`] is in-process; this crate
//! puts the gateway on the network so remote clients submit plans and read
//! estimates over TCP or Unix-domain sockets:
//!
//! * [`wire`] — the `QCFP` wire protocol: length-framed, versioned,
//!   CRC-checked request/response records with strict unknown-version/flag
//!   rejection and no-panic bounds-checked decoding.
//! * [`server`] — a single-threaded reactor (epoll on Linux, `poll`
//!   elsewhere) multiplexing every connection through non-blocking framed
//!   reads/writes, submitting decoded requests through the gateway's
//!   asynchronous [`qcfe_serve::QcfeGateway::submit_with_notify`] path and
//!   shipping responses as they complete — thousands of in-flight
//!   estimates without a thread each.
//! * [`client`] — a small blocking client that connects, pipelines
//!   requests and reaps responses by correlation id, with an opt-in
//!   [`client::RetryPolicy`] for backoff-on-shed and transparent
//!   reconnect.
//!
//! The `qcfe-served` binary glues the pieces together: it opens a store
//! directory, builds a gateway and serves it on the listeners named on the
//! command line.

pub mod client;
pub mod server;
pub mod sys;
pub mod wire;

pub use client::{ClientError, QcfeClient, RetryPolicy};
pub use server::{NetServerBuilder, ServerHandle, ServerStats};
pub use wire::{
    decode_frame, encode_request, encode_response, frame_length, Frame, WireError, WireEstimate,
    WireFault, WireRequest, WireResponse,
};

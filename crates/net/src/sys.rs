//! Minimal readiness polling over raw OS primitives.
//!
//! The reactor needs exactly four operations — register, rearm, remove,
//! wait — so this module binds them directly: `epoll` on Linux (constant
//! time per ready event) and POSIX `poll` elsewhere. The symbols are
//! declared by hand against libc (which every Rust program already links)
//! instead of pulling in a bindings crate; the workspace's no-new-deps
//! rule is why this file exists.
//!
//! Both backends are level-triggered: a socket that still has buffered
//! bytes (or window space) reports ready on every wait, so the reactor
//! never needs to drain-to-`WouldBlock` for correctness, only for
//! efficiency.

use std::io;
use std::os::unix::io::RawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Interest set for one registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or a peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event: the token the descriptor was registered under,
/// plus what it is ready for. `error` covers `EPOLLERR`/`EPOLLHUP`-class
/// conditions; the reactor treats it as "read until the real error
/// surfaces".
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Registration token.
    pub token: usize,
    /// Ready to read (or peer closed).
    pub readable: bool,
    /// Ready to write.
    pub writable: bool,
    /// Error/hang-up condition on the descriptor.
    pub error: bool,
}

/// Clamp a poll timeout to the millisecond `int` both syscalls take.
/// `None` blocks indefinitely; sub-millisecond timeouts round up so a
/// near deadline cannot spin at zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The kernel's epoll_event is packed (12 bytes, no padding between the
    // u32 mask and the u64 payload) on x86/x86_64 only; every other Linux
    // arch (aarch64, riscv64, …) uses the natural 16-byte layout with the
    // payload at offset 8. Mirror libc: conditional `repr(packed)` on a
    // `repr(C)` struct, with a per-arch size assertion so a layout drift
    // fails the build instead of corrupting the event buffer.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const _: () = assert!(
        std::mem::size_of::<EpollEvent>()
            == if cfg!(any(target_arch = "x86", target_arch = "x86_64")) {
                12
            } else {
                16
            },
        "EpollEvent must match the kernel ABI for this architecture",
    );

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Readiness poller backed by an epoll instance.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            events
        }

        fn ctl(&self, op: c_int, fd: RawFd, event: Option<EpollEvent>) -> io::Result<()> {
            let mut event = event;
            let ptr = event
                .as_mut()
                .map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            if unsafe { epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Some(EpollEvent {
                    events: Self::mask(interest),
                    data: token as u64,
                }),
            )
        }

        pub fn rearm(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Some(EpollEvent {
                    events: Self::mask(interest),
                    data: token as u64,
                }),
            )
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for raw in &self.buf[..n as usize] {
                let bits = raw.events;
                events.push(Event {
                    token: raw.data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    /// Readiness poller backed by POSIX `poll` over a shadow registration
    /// table. O(registered) per wait, which is fine at this crate's scale;
    /// Linux gets the epoll backend.
    pub struct Poller {
        registered: Vec<(RawFd, usize, Interest)>,
        buf: Vec<PollFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller {
                registered: Vec::new(),
                buf: Vec::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.push((fd, token, interest));
            Ok(())
        }

        pub fn rearm(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            match self.registered.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.retain(|(f, _, _)| *f != fd);
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            events.clear();
            self.buf.clear();
            for (fd, _, interest) in &self.registered {
                let mut mask = 0;
                if interest.readable {
                    mask |= POLLIN;
                }
                if interest.writable {
                    mask |= POLLOUT;
                }
                self.buf.push(PollFd {
                    fd: *fd,
                    events: mask,
                    revents: 0,
                });
            }
            let n = unsafe {
                poll(
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_ulong,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (raw, (_, token, _)) in self.buf.iter().zip(&self.registered) {
                if raw.revents == 0 {
                    continue;
                }
                events.push(Event {
                    token: *token,
                    readable: raw.revents & (POLLIN | POLLHUP) != 0,
                    writable: raw.revents & POLLOUT != 0,
                    error: raw.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

pub use imp::Poller;

/// Cross-thread wakeup for a blocked [`Poller::wait`]: a nonblocking
/// socketpair whose read end is registered like any connection. Completion
/// hooks (running on service worker threads) call [`Waker::wake`]; the
/// reactor drains the read end and processes its completion queue.
///
/// A socketpair needs no FFI beyond what [`UnixStream::pair`] already
/// wraps, and a full pipe simply coalesces wakeups — `wake` treats
/// `WouldBlock` as success.
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Create the pair; both ends are nonblocking.
    pub fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The descriptor to register for read interest.
    pub fn fd(&self) -> RawFd {
        use std::os::unix::io::AsRawFd;
        self.rx.as_raw_fd()
    }

    /// A clonable handle that wakes the poller. Cheap enough to call from
    /// every completion hook.
    pub fn handle(&self) -> io::Result<WakerHandle> {
        Ok(WakerHandle {
            tx: self.tx.try_clone()?,
        })
    }

    /// Drain pending wakeup bytes after the poller reported the read end
    /// ready. Coalesced wakeups drain in one call.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 64];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// Cloneable wake-the-reactor handle (see [`Waker`]).
pub struct WakerHandle {
    tx: UnixStream,
}

impl WakerHandle {
    /// Wake the poller. A full buffer means a wakeup is already pending,
    /// which is just as good; a broken pair means the reactor is gone and
    /// there is nobody left to wake.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }
}

impl Clone for WakerHandle {
    fn clone(&self) -> Self {
        WakerHandle {
            tx: self.tx.try_clone().expect("clone waker socket"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_sees_readable_socketpair() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty(), "no data yet");
        (&a).write_all(&[42]).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        poller.deregister(b.as_raw_fd()).unwrap();
    }

    #[test]
    fn waker_crosses_threads_and_coalesces() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(waker.fd(), 0, Interest::READ).unwrap();
        let handle = waker.handle().unwrap();
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                handle.wake();
            }
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 0 && e.readable));
        t.join().unwrap();
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(
            events.iter().all(|e| e.token != 0 || !e.readable),
            "drained waker must be quiet"
        );
    }
}

//! Fire-and-forget state shipping between replica-set peers.
//!
//! The gateway's replication hooks hand every published or refined
//! artifact to a [`qcfe_serve::ReplicationSink`]; this module provides the
//! network-backed sink. A [`Replicator`] owns one background worker thread
//! and a bounded queue:
//!
//! * [`Replicator::sink`] returns the queue's producer handle. `ship` is a
//!   `try_send` — when the queue is full the event is **dropped and
//!   counted** ([`ReplicatorStats::ships_dropped`]), never blocking the
//!   publishing thread. Dropping is safe because shipped state is a cache
//!   of the owner's disk: a peer that missed an event absorbs the next
//!   refit of the same key, and the owner's store remains authoritative.
//! * the worker drains events and pushes each one to **every other peer**
//!   as a `QCFP` ship frame ([`crate::wire::FRAME_SHIP_SNAPSHOT`] /
//!   [`crate::wire::FRAME_SHIP_MODEL`]), waiting for the peer's
//!   [`crate::wire::WireShipAck`] under a read timeout. Connections are
//!   cached and rebuilt on error.
//! * between events the worker heartbeats: every
//!   [`ReplicatorConfig::heartbeat`] it (re)connects to peers it has no
//!   healthy connection to. Probe outcomes drive the shared
//!   [`qcfe_serve::ReplicaSet`] liveness mask — a dead peer's keys
//!   rendezvous-place onto survivors, which is the whole failover story.
//!
//! Shipping alone has no history replay, so revival is anti-entropic
//! when the worker was started with a store ([`Replicator::with_store`]):
//! a heartbeat that finds a previously dead peer responsive again does
//! **not** flip it straight back into the alive mask. It parks the peer
//! in the [`ReplicaSet`]'s *reviving* state, interrogates it with a
//! `QCFP` [`crate::wire::WireManifestRequest`], diffs the peer's
//! [`crate::wire::WireManifestReply`] against the local store manifest
//! ([`qcfe_serve::SnapshotStore::manifest`]), re-ships every divergent or
//! missing key through the ordinary ship path, and only then promotes
//! the peer ([`qcfe_serve::ReplicaSet::promote_revived`]) — so owner
//! selection never routes traffic to a peer still serving state from
//! before its outage. Every survivor runs the same handshake from its
//! own store (replication converges all survivor stores, so each
//! survivor can repair the full diff), which means no survivor promotes
//! the peer before it has itself verified the peer's state. A worker
//! started without a store ([`Replicator::start`]) keeps the old
//! promote-on-probe behaviour and the staleness window that comes with
//! it.

use crate::wire::{
    self, Frame, WireManifestEntry, WireManifestReply, WireManifestRequest, WireShipModel,
    WireShipSnapshot,
};
use qcfe_serve::store::ManifestEntry;
use qcfe_serve::{ReplicaSet, ReplicationHealth, ReplicationSink, ShipEvent, SnapshotStore};
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for a [`Replicator`] worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicatorConfig {
    /// How often the worker probes peers it has no healthy connection to
    /// (default 1s). This bounds how stale the liveness mask can be.
    pub heartbeat: Duration,
    /// Per-probe TCP connect timeout (default 250ms).
    pub connect_timeout: Duration,
    /// How long to wait for a peer's ship-ack before declaring the peer
    /// dead for this round (default 2s).
    pub ack_timeout: Duration,
    /// Bounded queue depth between publishing threads and the worker
    /// (default 1024); events beyond it are dropped and counted.
    pub capacity: usize,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        ReplicatorConfig {
            heartbeat: Duration::from_secs(1),
            connect_timeout: Duration::from_millis(250),
            ack_timeout: Duration::from_secs(2),
            capacity: 1024,
        }
    }
}

/// Monotonic shipping counters (relaxed atomics; read any time via
/// [`Replicator::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicatorStats {
    /// Ship frames written to a peer socket.
    pub ships_sent: u64,
    /// Ship frames the peer validated and applied.
    pub ships_acked: u64,
    /// Ship frames the peer rejected (codec validation or store failure
    /// on the far side — the payload was delivered but not applied).
    pub ships_rejected: u64,
    /// Events dropped because the queue was full or a peer was
    /// unreachable for the whole round.
    pub ships_dropped: u64,
    /// Heartbeat probes that failed to connect (each marks the peer dead
    /// in the shared liveness mask).
    pub probe_failures: u64,
    /// Manifest replies received from revived peers (one per catch-up
    /// handshake round-trip).
    pub manifests_exchanged: u64,
    /// Divergent or missing keys re-shipped during revival catch-up.
    pub keys_reshipped: u64,
    /// Revivals completed: manifest diffed, divergent keys re-shipped and
    /// accepted, peer promoted back into the alive mask.
    pub revivals: u64,
}

#[derive(Debug, Default)]
struct Counters {
    ships_sent: AtomicU64,
    ships_acked: AtomicU64,
    ships_rejected: AtomicU64,
    ships_dropped: AtomicU64,
    probe_failures: AtomicU64,
    manifests_exchanged: AtomicU64,
    keys_reshipped: AtomicU64,
    revivals: AtomicU64,
}

enum Command {
    Ship(ShipEvent),
    Shutdown,
}

/// The queue producer handed to the gateway. Cloned freely; every clone
/// feeds the same worker.
struct Sink {
    tx: SyncSender<Command>,
    counters: Arc<Counters>,
}

impl ReplicationSink for Sink {
    fn ship(&self, event: ShipEvent) {
        match self.tx.try_send(Command::Ship(event)) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                // Fire-and-forget by contract: the publisher must never
                // block or fail because replication is behind (or down).
                self.counters.ships_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn health(&self) -> ReplicationHealth {
        ReplicationHealth {
            ships_dropped: self.counters.ships_dropped.load(Ordering::Relaxed),
            manifests_exchanged: self.counters.manifests_exchanged.load(Ordering::Relaxed),
            keys_reshipped: self.counters.keys_reshipped.load(Ordering::Relaxed),
            revivals: self.counters.revivals.load(Ordering::Relaxed),
        }
    }
}

/// The background shipping worker. Dropping it shuts the worker down and
/// joins the thread.
pub struct Replicator {
    tx: SyncSender<Command>,
    counters: Arc<Counters>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Replicator {
    /// Start a worker shipping on behalf of `replicas` (this process must
    /// be a member — built via [`ReplicaSet::new`], not
    /// [`ReplicaSet::client_view`]). The worker owns the outbound
    /// connections; share the same `Arc<ReplicaSet>` with the server so
    /// probe outcomes steer request ownership too.
    ///
    /// Without a store the worker cannot run the revival catch-up
    /// handshake: a peer seen dead→alive is promoted straight back and
    /// may serve stale state for keys re-published during its outage.
    /// Production servers should use [`Replicator::with_store`].
    pub fn start(replicas: Arc<ReplicaSet>, config: ReplicatorConfig) -> Self {
        Self::spawn(replicas, config, None)
    }

    /// Like [`Replicator::start`], but with access to this process's
    /// snapshot store so dead→alive transitions run the anti-entropy
    /// catch-up handshake (manifest exchange + divergent-key re-ship)
    /// before the peer re-enters the alive mask. `store` must be rooted
    /// at the same directory as the gateway's, so the manifest describes
    /// exactly the state the gateway serves and ships.
    pub fn with_store(
        replicas: Arc<ReplicaSet>,
        config: ReplicatorConfig,
        store: SnapshotStore,
    ) -> Self {
        Self::spawn(replicas, config, Some(store))
    }

    fn spawn(
        replicas: Arc<ReplicaSet>,
        config: ReplicatorConfig,
        store: Option<SnapshotStore>,
    ) -> Self {
        let (tx, rx) = sync_channel(config.capacity.max(1));
        let counters = Arc::new(Counters::default());
        let worker = Worker {
            replicas,
            config,
            counters: Arc::clone(&counters),
            conns: HashMap::new(),
            next_request_id: 1,
            store,
        };
        let thread = std::thread::Builder::new()
            .name("qcfe-replicator".into())
            .spawn(move || worker.run(rx))
            .expect("spawn replicator thread");
        Replicator {
            tx,
            counters,
            thread: Some(thread),
        }
    }

    /// The gateway-facing sink: hand it to
    /// [`qcfe_serve::GatewayBuilder::replication`].
    pub fn sink(&self) -> Arc<dyn ReplicationSink> {
        Arc::new(Sink {
            tx: self.tx.clone(),
            counters: Arc::clone(&self.counters),
        })
    }

    /// A point-in-time view of the shipping counters.
    pub fn stats(&self) -> ReplicatorStats {
        ReplicatorStats {
            ships_sent: self.counters.ships_sent.load(Ordering::Relaxed),
            ships_acked: self.counters.ships_acked.load(Ordering::Relaxed),
            ships_rejected: self.counters.ships_rejected.load(Ordering::Relaxed),
            ships_dropped: self.counters.ships_dropped.load(Ordering::Relaxed),
            probe_failures: self.counters.probe_failures.load(Ordering::Relaxed),
            manifests_exchanged: self.counters.manifests_exchanged.load(Ordering::Relaxed),
            keys_reshipped: self.counters.keys_reshipped.load(Ordering::Relaxed),
            revivals: self.counters.revivals.load(Ordering::Relaxed),
        }
    }

    /// Stop the worker and join it. Queued events are shipped best-effort
    /// before the shutdown command is reached in FIFO order.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let _ = self.tx.try_send(Command::Shutdown);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.stop();
    }
}

struct Worker {
    replicas: Arc<ReplicaSet>,
    config: ReplicatorConfig,
    counters: Arc<Counters>,
    /// Cached outbound connections, keyed by peer index. Dropped on any
    /// error and rebuilt by the next ship or heartbeat.
    conns: HashMap<usize, TcpStream>,
    next_request_id: u64,
    /// This process's snapshot store, when revival anti-entropy is
    /// enabled. `None` keeps the legacy promote-on-probe behaviour.
    store: Option<SnapshotStore>,
}

impl Worker {
    fn run(mut self, rx: Receiver<Command>) {
        loop {
            match rx.recv_timeout(self.config.heartbeat) {
                Ok(Command::Ship(event)) => self.ship_to_peers(&event),
                Ok(Command::Shutdown) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => self.heartbeat(),
            }
        }
    }

    /// Push one event to every peer but ourselves. A peer that cannot be
    /// reached (or whose ack never arrives) is marked dead and the event
    /// is dropped *for that peer only* — the owner's disk remains
    /// authoritative and a later refit repairs the gap.
    fn ship_to_peers(&mut self, event: &ShipEvent) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let Ok(bytes) = encode_event(event, request_id) else {
            // Oversized artifact (exceeds MAX_SHIP_BYTES): undeliverable
            // by protocol, count it once and move on.
            self.counters.ships_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        };
        let peers: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| Some(i) != self.replicas.self_index())
            .collect();
        for peer in peers {
            match self.ship_one(peer, &bytes, request_id) {
                Ok(accepted) => {
                    // With anti-entropy enabled, a successful ship must
                    // not resurrect a dead peer — only the heartbeat's
                    // catch-up handshake promotes, so the peer's other
                    // (possibly stale) keys never serve early. Without a
                    // store there is no handshake, so a working ship
                    // remains evidence enough. (mark_alive is a no-op for
                    // a peer that is already alive or mid-revival.)
                    if self.store.is_none() {
                        self.replicas.mark_alive(peer);
                    }
                    if accepted {
                        self.counters.ships_acked.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.counters.ships_rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    self.conns.remove(&peer);
                    self.replicas.mark_dead(peer);
                    self.counters.ships_dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Write one pre-encoded ship frame to a peer and wait for its ack.
    /// Returns whether the peer accepted the artifact.
    fn ship_one(&mut self, peer: usize, bytes: &[u8], request_id: u64) -> std::io::Result<bool> {
        if !self.conns.contains_key(&peer) {
            let stream = self.connect(peer)?;
            self.conns.insert(peer, stream);
        }
        let stream = self.conns.get_mut(&peer).expect("connection just cached");
        stream.set_read_timeout(Some(self.config.ack_timeout))?;
        stream.write_all(bytes)?;
        self.counters.ships_sent.fetch_add(1, Ordering::Relaxed);
        let stream = self.conns.get_mut(&peer).expect("connection just cached");
        read_ack(stream, request_id)
    }

    fn connect(&self, peer: usize) -> std::io::Result<TcpStream> {
        let addr_str = &self.replicas.peers()[peer];
        let addr = addr_str
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable peer {addr_str}")))?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }

    /// Probe every peer with a fresh connect, steering the shared
    /// liveness mask. Cached ship connections are *not* trusted as
    /// evidence of life — a peer that died after the last ship would
    /// otherwise look alive forever (its cached socket only fails on the
    /// next write) and its keys would never migrate to the survivors.
    ///
    /// A responsive peer that is currently *not* alive is the revival
    /// path: with a store configured it runs the catch-up handshake
    /// before promotion; without one it is promoted immediately (and may
    /// serve stale state — the documented degradation of store-less
    /// replicators).
    fn heartbeat(&mut self) {
        let peers: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| Some(i) != self.replicas.self_index())
            .collect();
        for peer in peers {
            match self.connect(peer) {
                Ok(stream) => {
                    // Keep the probe connection only when none is cached;
                    // a healthy cached one stays preferred (it may have a
                    // ship round-trip's worth of warmed state behind it).
                    self.conns.entry(peer).or_insert(stream);
                    if self.replicas.is_alive(peer) {
                        continue;
                    }
                    if self.store.is_none() {
                        self.replicas.mark_alive(peer);
                        continue;
                    }
                    // begin_revival claims the transition exactly once;
                    // losing the claim (peer already promoted or another
                    // actor mid-handshake) means nothing to do here.
                    if !self.replicas.begin_revival(peer) {
                        continue;
                    }
                    match self.catch_up(peer) {
                        Ok(()) => {
                            if self.replicas.promote_revived(peer) {
                                self.counters.revivals.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            // Handshake broke (peer died again, rejected
                            // a re-ship, or spoke garbage): cancel the
                            // revival so the next heartbeat retries from
                            // scratch.
                            self.conns.remove(&peer);
                            self.replicas.mark_dead(peer);
                            self.counters.probe_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => {
                    self.conns.remove(&peer);
                    self.replicas.mark_dead(peer);
                    self.counters.probe_failures.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// The revival catch-up handshake: request the reviving peer's store
    /// manifest, diff it against the local store, and re-ship every
    /// divergent or missing key through the ordinary ship path. Returns
    /// only once the whole diff has been shipped *and accepted* — a
    /// rejected re-ship is an error, because promoting a peer whose
    /// store is still divergent would serve stale estimates.
    fn catch_up(&mut self, peer: usize) -> std::io::Result<()> {
        let store = self
            .store
            .clone()
            .expect("catch_up only runs with a store configured");
        let local = store.manifest().map_err(std::io::Error::other)?;
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let request = wire::encode_manifest_request(&WireManifestRequest { request_id })
            .map_err(std::io::Error::other)?;
        if !self.conns.contains_key(&peer) {
            let stream = self.connect(peer)?;
            self.conns.insert(peer, stream);
        }
        let stream = self.conns.get_mut(&peer).expect("connection just cached");
        stream.set_read_timeout(Some(self.config.ack_timeout))?;
        stream.write_all(&request)?;
        let reply = read_manifest_reply(stream, request_id)?;
        self.counters
            .manifests_exchanged
            .fetch_add(1, Ordering::Relaxed);
        let theirs: HashSet<WireManifestEntry> = reply.entries.into_iter().collect();
        for entry in &local {
            if theirs.contains(&WireManifestEntry::from(*entry)) {
                continue;
            }
            // Divergent or missing on the peer: re-ship the verbatim
            // file bytes. An entry whose file vanished between manifest
            // and read (concurrent re-publish) is skipped — the ordinary
            // ship path already carried its replacement.
            let ship_id = self.next_request_id;
            self.next_request_id += 1;
            let bytes = match *entry {
                ManifestEntry::Snapshot {
                    benchmark,
                    fingerprint,
                    ..
                } => {
                    let Some(snapshot) = store
                        .snapshot_bytes(benchmark, fingerprint)
                        .map_err(std::io::Error::other)?
                    else {
                        continue;
                    };
                    let knobs = store
                        .load_vector(benchmark, fingerprint)
                        .unwrap_or_default()
                        .unwrap_or_default();
                    wire::encode_ship_snapshot(&WireShipSnapshot {
                        request_id: ship_id,
                        benchmark,
                        fingerprint: fingerprint.0,
                        knobs,
                        snapshot,
                    })
                    .map_err(std::io::Error::other)?
                }
                ManifestEntry::Model {
                    benchmark,
                    estimator,
                    fingerprint,
                    ..
                } => {
                    let Some(weights) = store
                        .model_bytes(benchmark, estimator, fingerprint)
                        .map_err(std::io::Error::other)?
                    else {
                        continue;
                    };
                    wire::encode_ship_model(&WireShipModel {
                        request_id: ship_id,
                        benchmark,
                        estimator,
                        fingerprint: fingerprint.0,
                        weights,
                    })
                    .map_err(std::io::Error::other)?
                }
            };
            if self.ship_one(peer, &bytes, ship_id)? {
                self.counters.keys_reshipped.fetch_add(1, Ordering::Relaxed);
            } else {
                self.counters.ships_rejected.fetch_add(1, Ordering::Relaxed);
                return Err(std::io::Error::other(
                    "peer rejected a catch-up re-ship; store still divergent",
                ));
            }
        }
        Ok(())
    }
}

/// Encode a [`ShipEvent`] as its `QCFP` ship frame.
fn encode_event(event: &ShipEvent, request_id: u64) -> Result<Vec<u8>, wire::WireError> {
    match event {
        ShipEvent::Snapshot {
            benchmark,
            fingerprint,
            snapshot,
            knobs,
        } => wire::encode_ship_snapshot(&WireShipSnapshot {
            request_id,
            benchmark: *benchmark,
            fingerprint: fingerprint.0,
            knobs: knobs.clone(),
            snapshot: snapshot.clone(),
        }),
        ShipEvent::Model { key, weights } => wire::encode_ship_model(&WireShipModel {
            request_id,
            benchmark: key.benchmark,
            estimator: key.estimator,
            fingerprint: key.fingerprint.0,
            weights: weights.clone(),
        }),
    }
}

/// Read frames until the ack for `request_id` arrives (acks for earlier,
/// timed-out rounds are skipped). Any wire-level breakage is an error —
/// the caller drops the connection.
fn read_ack(stream: &mut TcpStream, request_id: u64) -> std::io::Result<bool> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(len) = wire::frame_length(&buf).map_err(std::io::Error::other)? {
            let frame: Vec<u8> = buf.drain(..len).collect();
            match wire::decode_frame(&frame).map_err(std::io::Error::other)? {
                Frame::ShipAck(ack) if ack.request_id == request_id => return Ok(ack.accepted),
                Frame::ShipAck(_) => continue, // stale ack from a timed-out round
                _ => return Err(std::io::Error::other("unexpected frame while awaiting ack")),
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed before ack",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Read frames until the manifest reply for `request_id` arrives. Stale
/// ship acks and stale manifest replies (from earlier, timed-out rounds)
/// are skipped; anything else is an error and the caller drops the
/// connection.
fn read_manifest_reply(
    stream: &mut TcpStream,
    request_id: u64,
) -> std::io::Result<WireManifestReply> {
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(len) = wire::frame_length(&buf).map_err(std::io::Error::other)? {
            let frame: Vec<u8> = buf.drain(..len).collect();
            match wire::decode_frame(&frame).map_err(std::io::Error::other)? {
                Frame::ManifestReply(reply) if reply.request_id == request_id => return Ok(reply),
                Frame::ManifestReply(_) | Frame::ShipAck(_) => continue, // stale round
                _ => {
                    return Err(std::io::Error::other(
                        "unexpected frame while awaiting manifest reply",
                    ))
                }
            }
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed before manifest reply",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

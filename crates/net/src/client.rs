//! Blocking `QCFP` client.
//!
//! [`QcfeClient`] speaks the wire protocol over one TCP or Unix-domain
//! connection. It is deliberately simple — blocking sockets, one buffer —
//! because the concurrency lives on the server: a client **pipelines** by
//! calling [`QcfeClient::send`] N times before reaping N responses with
//! [`QcfeClient::recv`], correlating them by request id. The one-shot
//! [`QcfeClient::estimate`] wraps a single send/recv pair and converts
//! the typed wire fault into an error.
//!
//! [`QcfeClient::estimate_with_retry`] layers an opt-in [`RetryPolicy`] on
//! top: bounded exponential backoff when the server sheds the request with
//! [`WireFault::QueueFull`] (the one fault that *invites* a retry — the
//! server is telling the client it is momentarily saturated), plus at most
//! one transparent reconnect when the connection itself breaks mid
//! round-trip. Every other fault is permanent for the request and
//! surfaces immediately.

use crate::wire::{self, Frame, WireError, WireFault, WireRequest, WireResponse};
use qcfe_serve::request::{EstimateRequest, EstimateResponse};
use qcfe_serve::{ModelKey, ReplicaSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Any failure on the client side of a connection.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-frame).
    Io(io::Error),
    /// The server's bytes did not parse as `QCFP`.
    Wire(WireError),
    /// The server answered with a typed fault.
    Fault(WireFault),
    /// The server sent a non-response frame (requests, replication ship
    /// frames and manifest catch-up frames are only ever received by
    /// servers and the replicator, never by an estimate client).
    UnexpectedFrame,
    /// A response arrived for a different correlation id than the one
    /// [`QcfeClient::estimate`] was waiting on.
    IdMismatch {
        /// The id of the request just sent.
        expected: u64,
        /// The id the response carried.
        got: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            ClientError::UnexpectedFrame => write!(f, "server sent a request frame"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "expected response id {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// How and when [`QcfeClient::estimate_with_retry`] retries.
///
/// Only two failures are retried: a [`WireFault::QueueFull`] shed (the
/// server is saturated *now* but invites the client back) waits an
/// exponentially growing backoff, and a broken connection (an I/O error
/// mid round-trip) is given at most **one** transparent reconnect to the
/// original target per call. Everything else — deadline faults, missing
/// models, protocol errors — is permanent for the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a shed request is re-sent after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound the doubling backoff saturates at.
    pub max_backoff: Duration,
    /// Whether a broken connection may reconnect (once per call) instead
    /// of failing.
    pub reconnect: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            reconnect: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based): `base << retry`,
    /// saturating at `max_backoff`.
    ///
    /// Computed in 128-bit nanosecond arithmetic so no shift or multiply
    /// can overflow (or panic) however high the retry count climbs — the
    /// old `Duration::checked_mul(1 << retry)` path clamped the factor to
    /// `u32::MAX` past 32 retries, which under-backs-off whenever
    /// `base_backoff` is sub-microsecond and `max_backoff` is large.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u128.checked_shl(retry).unwrap_or(u128::MAX);
        let nanos = self.base_backoff.as_nanos().saturating_mul(factor);
        if nanos >= self.max_backoff.as_nanos() {
            return self.max_backoff;
        }
        u64::try_from(nanos)
            .map(Duration::from_nanos)
            .unwrap_or(self.max_backoff)
    }
}

/// Where a client connected to, kept so a broken connection can be
/// transparently re-established by [`QcfeClient::estimate_with_retry`].
enum ConnectTarget {
    Tcp(Vec<SocketAddr>),
    Uds(PathBuf),
}

enum Transport {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.write_all(buf),
            Transport::Uds(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to a `qcfe-net` server.
pub struct QcfeClient {
    transport: Transport,
    target: ConnectTarget,
    read_buf: Vec<u8>,
    next_id: u64,
}

impl QcfeClient {
    /// Connect over TCP. The resolved addresses are remembered so
    /// [`QcfeClient::estimate_with_retry`] can transparently reconnect.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        let _ = stream.set_nodelay(true);
        Ok(Self::over(
            Transport::Tcp(stream),
            ConnectTarget::Tcp(addrs),
        ))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        let path = path.as_ref().to_path_buf();
        let stream = UnixStream::connect(&path)?;
        Ok(Self::over(Transport::Uds(stream), ConnectTarget::Uds(path)))
    }

    fn over(transport: Transport, target: ConnectTarget) -> Self {
        QcfeClient {
            transport,
            target,
            read_buf: Vec::new(),
            next_id: 1,
        }
    }

    /// Re-establish the transport to the original connect target. Any
    /// half-read frame is discarded (it belonged to the dead connection);
    /// the correlation-id counter keeps advancing so ids stay unique
    /// across the reconnect.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.transport = match &self.target {
            ConnectTarget::Tcp(addrs) => {
                let stream = TcpStream::connect(&addrs[..])?;
                let _ = stream.set_nodelay(true);
                Transport::Tcp(stream)
            }
            ConnectTarget::Uds(path) => Transport::Uds(UnixStream::connect(path)?),
        };
        self.read_buf.clear();
        Ok(())
    }

    /// Bound how long a [`QcfeClient::recv`] blocks for server bytes.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(timeout)?,
            Transport::Uds(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    /// Encode and send one request without waiting for its response;
    /// returns the correlation id the response will echo. Call repeatedly
    /// to pipeline.
    pub fn send(&mut self, request: &EstimateRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let wire_request = WireRequest::from_estimate_request(id, request)?;
        self.transport
            .write_all(&wire::encode_request(&wire_request)?)?;
        Ok(id)
    }

    /// Block until the next response frame arrives (whatever its id — the
    /// server answers pipelined requests in completion order).
    pub fn recv(&mut self) -> Result<WireResponse, ClientError> {
        loop {
            match wire::frame_length(&self.read_buf)? {
                Some(len) => {
                    let frame: Vec<u8> = self.read_buf.drain(..len).collect();
                    return match wire::decode_frame(&frame)? {
                        Frame::Response(response) => Ok(response),
                        _ => Err(ClientError::UnexpectedFrame),
                    };
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.transport.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One blocking round trip: send, await the matching response (out-of-
    /// order frames from interleaved pipelining are an error here — use
    /// [`QcfeClient::send`]/[`QcfeClient::recv`] for pipelined traffic),
    /// convert a fault into [`ClientError::Fault`].
    pub fn estimate(&mut self, request: &EstimateRequest) -> Result<EstimateResponse, ClientError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        if response.request_id != id {
            return Err(ClientError::IdMismatch {
                expected: id,
                got: response.request_id,
            });
        }
        match response.outcome {
            Ok(estimate) => Ok(estimate.into_response()),
            Err(fault) => Err(ClientError::Fault(fault)),
        }
    }

    /// [`QcfeClient::estimate`] with a [`RetryPolicy`]: a
    /// [`WireFault::QueueFull`] shed backs off exponentially and re-sends
    /// up to `max_retries` times; a broken connection is transparently
    /// re-established at most once per call (when `policy.reconnect`) and
    /// the request re-sent. Every other failure — including any other
    /// typed fault — returns immediately, and the final shed fault is
    /// returned unchanged once retries are spent.
    pub fn estimate_with_retry(
        &mut self,
        request: &EstimateRequest,
        policy: RetryPolicy,
    ) -> Result<EstimateResponse, ClientError> {
        let mut sheds = 0u32;
        let mut reconnected = false;
        loop {
            match self.estimate(request) {
                Err(ClientError::Fault(WireFault::QueueFull { .. }))
                    if sheds < policy.max_retries =>
                {
                    std::thread::sleep(policy.backoff(sheds));
                    sheds += 1;
                }
                Err(ClientError::Io(_)) if policy.reconnect && !reconnected => {
                    reconnected = true;
                    self.reconnect()?;
                }
                outcome => return outcome,
            }
        }
    }
}

/// Lifetime counters of a [`ShardClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardClientStats {
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// `NotOwner` redirects followed (the local placement disagreed with
    /// the server's — usually a liveness view still converging).
    pub redirects: u64,
    /// Peers marked dead after a connect or I/O failure; each one reroutes
    /// the key onto the surviving peers.
    pub failovers: u64,
}

/// Shard-aware routing over a replica set of `qcfe-served` processes.
///
/// Each request's serving key `(benchmark, estimator, fingerprint)` is
/// rendezvous-placed on the client's own view of the peer set — the same
/// [`placement the servers use`](qcfe_serve::replica::owner_among), so in
/// the steady state the first hop is the owner. Two disagreements are
/// handled in a bounded loop (never a hang):
///
/// * the server answers [`WireFault::NotOwner`] — the client's liveness
///   view lags the servers'; the redirect hint names the owner and the
///   next attempt goes there directly;
/// * the connection fails — the peer is marked dead in the client's view,
///   rerouting the key onto the survivors (who absorb the dead peer's
///   shards from shipped state). A short pause between sweeps rides out
///   the window where the surviving servers' own heartbeats still think
///   the dead peer owns the key.
///
/// Any other fault is permanent for the request and surfaces as
/// [`ClientError::Fault`]. Per-connection read timeouts bound every
/// blocking wait, so a kill-mid-load run completes or fails typed.
pub struct ShardClient {
    replicas: Arc<ReplicaSet>,
    conns: Vec<Option<QcfeClient>>,
    retry: RetryPolicy,
    max_attempts: u32,
    attempt_backoff: Duration,
    read_timeout: Option<Duration>,
    stats: ShardClientStats,
}

impl ShardClient {
    /// A router over `replicas` (usually a [`ReplicaSet::client_view`] of
    /// the peers' TCP addresses). The default per-connection
    /// [`RetryPolicy`] handles shed backoff; routing retries are bounded
    /// by 16 attempts, 100ms apart, with 5s read timeouts.
    pub fn new(replicas: Arc<ReplicaSet>) -> Self {
        let conns = (0..replicas.len()).map(|_| None).collect();
        ShardClient {
            replicas,
            conns,
            retry: RetryPolicy::default(),
            max_attempts: 16,
            attempt_backoff: Duration::from_millis(100),
            read_timeout: Some(Duration::from_secs(5)),
            stats: ShardClientStats::default(),
        }
    }

    /// Replace the per-connection shed/reconnect policy.
    pub fn retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Bound the routing loop: how many owner attempts (redirects and
    /// failovers included) before the last error surfaces (minimum 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Pause between routing attempts (rides out the servers' heartbeat
    /// convergence window after a peer death).
    pub fn attempt_backoff(mut self, backoff: Duration) -> Self {
        self.attempt_backoff = backoff;
        self
    }

    /// Per-connection read timeout (`None` blocks indefinitely — not
    /// recommended when peers can die mid-load).
    pub fn read_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// The client's (shared) view of the replica set.
    pub fn replicas(&self) -> &Arc<ReplicaSet> {
        &self.replicas
    }

    /// Routing counters so far.
    pub fn stats(&self) -> ShardClientStats {
        self.stats
    }

    /// Estimate one plan through whichever peer owns its serving key,
    /// following redirects and failing over past dead peers. Returns the
    /// final error once `max_attempts` routing attempts are spent.
    pub fn estimate(&mut self, request: &EstimateRequest) -> Result<EstimateResponse, ClientError> {
        let key = ModelKey::new(
            request.benchmark,
            request.options.estimator,
            request.environment.fingerprint(),
        );
        // A redirect names the next hop explicitly; otherwise each attempt
        // re-places the key on the current liveness view.
        let mut redirect: Option<usize> = None;
        let mut last_error: Option<ClientError> = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                std::thread::sleep(self.attempt_backoff);
            }
            let target = redirect
                .take()
                .unwrap_or_else(|| self.replicas.owner_index(&key));
            let retry = self.retry;
            let conn = match self.connection(target) {
                Ok(conn) => conn,
                Err(error) => {
                    self.fail_peer(target);
                    last_error = Some(error);
                    continue;
                }
            };
            match conn.estimate_with_retry(request, retry) {
                Ok(response) => {
                    self.replicas.mark_alive(target);
                    self.stats.requests_ok += 1;
                    return Ok(response);
                }
                Err(ClientError::Fault(WireFault::NotOwner { owner })) => {
                    // The server is healthy, just not the owner under its
                    // own (fresher or staler) liveness view. Follow the
                    // hint when it names a known peer; otherwise re-place.
                    self.replicas.mark_alive(target);
                    self.stats.redirects += 1;
                    redirect = self.replicas.index_of(&owner);
                    last_error = Some(ClientError::Fault(WireFault::NotOwner { owner }));
                }
                Err(error @ (ClientError::Io(_) | ClientError::Wire(_))) => {
                    self.fail_peer(target);
                    last_error = Some(error);
                }
                Err(error) => return Err(error),
            }
        }
        Err(last_error.unwrap_or(ClientError::UnexpectedFrame))
    }

    /// The cached connection to a peer, (re)connecting as needed.
    fn connection(&mut self, peer: usize) -> Result<&mut QcfeClient, ClientError> {
        if self.conns[peer].is_none() {
            let mut client = QcfeClient::connect_tcp(self.replicas.peers()[peer].as_str())?;
            client.set_read_timeout(self.read_timeout)?;
            self.conns[peer] = Some(client);
        }
        Ok(self.conns[peer].as_mut().expect("connection just cached"))
    }

    fn fail_peer(&mut self, peer: usize) {
        self.conns[peer] = None;
        self.replicas.mark_dead(peer);
        self.stats.failovers += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_saturates_at_max() {
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            reconnect: false,
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(10));
        assert_eq!(policy.backoff(1), Duration::from_millis(20));
        assert_eq!(policy.backoff(2), Duration::from_millis(40));
        assert_eq!(policy.backoff(5), Duration::from_millis(320));
        // 10ms << 6 = 640ms clamps.
        assert_eq!(policy.backoff(6), Duration::from_millis(500));
        assert_eq!(policy.backoff(63), Duration::from_millis(500));
    }

    #[test]
    fn backoff_never_panics_or_regresses_at_high_retry_counts() {
        // Shift counts past the 32-, 64- and 128-bit widths, with bases
        // from 0 through seconds: always monotone, always ≤ max.
        for base in [
            Duration::ZERO,
            Duration::from_nanos(1),
            Duration::from_micros(3),
            Duration::from_millis(10),
            Duration::from_secs(2),
        ] {
            let policy = RetryPolicy {
                max_retries: u32::MAX,
                base_backoff: base,
                max_backoff: Duration::from_secs(30),
                reconnect: false,
            };
            let mut last = Duration::ZERO;
            for retry in [0, 1, 31, 32, 33, 63, 64, 65, 127, 128, 129, 1_000, u32::MAX] {
                let b = policy.backoff(retry);
                assert!(b <= policy.max_backoff, "retry {retry} base {base:?}");
                assert!(
                    b >= last,
                    "backoff regressed at retry {retry} base {base:?}"
                );
                last = b;
            }
            if base > Duration::ZERO {
                assert_eq!(
                    policy.backoff(u32::MAX),
                    policy.max_backoff,
                    "a nonzero base must reach the cap, base {base:?}"
                );
            } else {
                assert_eq!(policy.backoff(u32::MAX), Duration::ZERO);
            }
        }

        // Regression: a sub-microsecond base with a large cap used to
        // clamp the factor at 2^32 and stall far below max_backoff.
        let tiny = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_nanos(1),
            max_backoff: Duration::from_secs(60),
            reconnect: false,
        };
        assert_eq!(tiny.backoff(40), tiny.max_backoff);
    }
}

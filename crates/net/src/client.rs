//! Blocking `QCFP` client.
//!
//! [`QcfeClient`] speaks the wire protocol over one TCP or Unix-domain
//! connection. It is deliberately simple — blocking sockets, one buffer —
//! because the concurrency lives on the server: a client **pipelines** by
//! calling [`QcfeClient::send`] N times before reaping N responses with
//! [`QcfeClient::recv`], correlating them by request id. The one-shot
//! [`QcfeClient::estimate`] wraps a single send/recv pair and converts
//! the typed wire fault into an error.

use crate::wire::{self, Frame, WireError, WireFault, WireRequest, WireResponse};
use qcfe_serve::request::{EstimateRequest, EstimateResponse};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Any failure on the client side of a connection.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-frame).
    Io(io::Error),
    /// The server's bytes did not parse as `QCFP`.
    Wire(WireError),
    /// The server answered with a typed fault.
    Fault(WireFault),
    /// The server sent a request frame (only servers receive requests).
    UnexpectedFrame,
    /// A response arrived for a different correlation id than the one
    /// [`QcfeClient::estimate`] was waiting on.
    IdMismatch {
        /// The id of the request just sent.
        expected: u64,
        /// The id the response carried.
        got: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            ClientError::UnexpectedFrame => write!(f, "server sent a request frame"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "expected response id {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

enum Transport {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.write_all(buf),
            Transport::Uds(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to a `qcfe-net` server.
pub struct QcfeClient {
    transport: Transport,
    read_buf: Vec<u8>,
    next_id: u64,
}

impl QcfeClient {
    /// Connect over TCP.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self::over(Transport::Tcp(stream)))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        Ok(Self::over(Transport::Uds(UnixStream::connect(path)?)))
    }

    fn over(transport: Transport) -> Self {
        QcfeClient {
            transport,
            read_buf: Vec::new(),
            next_id: 1,
        }
    }

    /// Bound how long a [`QcfeClient::recv`] blocks for server bytes.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(timeout)?,
            Transport::Uds(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    /// Encode and send one request without waiting for its response;
    /// returns the correlation id the response will echo. Call repeatedly
    /// to pipeline.
    pub fn send(&mut self, request: &EstimateRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let wire_request = WireRequest::from_estimate_request(id, request)?;
        self.transport
            .write_all(&wire::encode_request(&wire_request)?)?;
        Ok(id)
    }

    /// Block until the next response frame arrives (whatever its id — the
    /// server answers pipelined requests in completion order).
    pub fn recv(&mut self) -> Result<WireResponse, ClientError> {
        loop {
            match wire::frame_length(&self.read_buf)? {
                Some(len) => {
                    let frame: Vec<u8> = self.read_buf.drain(..len).collect();
                    return match wire::decode_frame(&frame)? {
                        Frame::Response(response) => Ok(response),
                        Frame::Request(_) => Err(ClientError::UnexpectedFrame),
                    };
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.transport.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One blocking round trip: send, await the matching response (out-of-
    /// order frames from interleaved pipelining are an error here — use
    /// [`QcfeClient::send`]/[`QcfeClient::recv`] for pipelined traffic),
    /// convert a fault into [`ClientError::Fault`].
    pub fn estimate(&mut self, request: &EstimateRequest) -> Result<EstimateResponse, ClientError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        if response.request_id != id {
            return Err(ClientError::IdMismatch {
                expected: id,
                got: response.request_id,
            });
        }
        match response.outcome {
            Ok(estimate) => Ok(estimate.into_response()),
            Err(fault) => Err(ClientError::Fault(fault)),
        }
    }
}

//! Blocking `QCFP` client.
//!
//! [`QcfeClient`] speaks the wire protocol over one TCP or Unix-domain
//! connection. It is deliberately simple — blocking sockets, one buffer —
//! because the concurrency lives on the server: a client **pipelines** by
//! calling [`QcfeClient::send`] N times before reaping N responses with
//! [`QcfeClient::recv`], correlating them by request id. The one-shot
//! [`QcfeClient::estimate`] wraps a single send/recv pair and converts
//! the typed wire fault into an error.
//!
//! [`QcfeClient::estimate_with_retry`] layers an opt-in [`RetryPolicy`] on
//! top: bounded exponential backoff when the server sheds the request with
//! [`WireFault::QueueFull`] (the one fault that *invites* a retry — the
//! server is telling the client it is momentarily saturated), plus at most
//! one transparent reconnect when the connection itself breaks mid
//! round-trip. Every other fault is permanent for the request and
//! surfaces immediately.

use crate::wire::{self, Frame, WireError, WireFault, WireRequest, WireResponse};
use qcfe_serve::request::{EstimateRequest, EstimateResponse};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Any failure on the client side of a connection.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes the server closing mid-frame).
    Io(io::Error),
    /// The server's bytes did not parse as `QCFP`.
    Wire(WireError),
    /// The server answered with a typed fault.
    Fault(WireFault),
    /// The server sent a request frame (only servers receive requests).
    UnexpectedFrame,
    /// A response arrived for a different correlation id than the one
    /// [`QcfeClient::estimate`] was waiting on.
    IdMismatch {
        /// The id of the request just sent.
        expected: u64,
        /// The id the response carried.
        got: u64,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Wire(e) => write!(f, "wire error: {e}"),
            ClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            ClientError::UnexpectedFrame => write!(f, "server sent a request frame"),
            ClientError::IdMismatch { expected, got } => {
                write!(f, "expected response id {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// How and when [`QcfeClient::estimate_with_retry`] retries.
///
/// Only two failures are retried: a [`WireFault::QueueFull`] shed (the
/// server is saturated *now* but invites the client back) waits an
/// exponentially growing backoff, and a broken connection (an I/O error
/// mid round-trip) is given at most **one** transparent reconnect to the
/// original target per call. Everything else — deadline faults, missing
/// models, protocol errors — is permanent for the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How many times a shed request is re-sent after the first attempt.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub base_backoff: Duration,
    /// Upper bound the doubling backoff saturates at.
    pub max_backoff: Duration,
    /// Whether a broken connection may reconnect (once per call) instead
    /// of failing.
    pub reconnect: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
            reconnect: true,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (0-based): `base << retry`,
    /// saturating at `max_backoff`.
    fn backoff(&self, retry: u32) -> Duration {
        let doubled = self
            .base_backoff
            .checked_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        doubled.min(self.max_backoff)
    }
}

/// Where a client connected to, kept so a broken connection can be
/// transparently re-established by [`QcfeClient::estimate_with_retry`].
enum ConnectTarget {
    Tcp(Vec<SocketAddr>),
    Uds(PathBuf),
}

enum Transport {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Transport {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Uds(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Transport::Tcp(s) => s.write_all(buf),
            Transport::Uds(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to a `qcfe-net` server.
pub struct QcfeClient {
    transport: Transport,
    target: ConnectTarget,
    read_buf: Vec<u8>,
    next_id: u64,
}

impl QcfeClient {
    /// Connect over TCP. The resolved addresses are remembered so
    /// [`QcfeClient::estimate_with_retry`] can transparently reconnect.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let stream = TcpStream::connect(&addrs[..])?;
        let _ = stream.set_nodelay(true);
        Ok(Self::over(
            Transport::Tcp(stream),
            ConnectTarget::Tcp(addrs),
        ))
    }

    /// Connect over a Unix-domain socket.
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self, ClientError> {
        let path = path.as_ref().to_path_buf();
        let stream = UnixStream::connect(&path)?;
        Ok(Self::over(Transport::Uds(stream), ConnectTarget::Uds(path)))
    }

    fn over(transport: Transport, target: ConnectTarget) -> Self {
        QcfeClient {
            transport,
            target,
            read_buf: Vec::new(),
            next_id: 1,
        }
    }

    /// Re-establish the transport to the original connect target. Any
    /// half-read frame is discarded (it belonged to the dead connection);
    /// the correlation-id counter keeps advancing so ids stay unique
    /// across the reconnect.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        self.transport = match &self.target {
            ConnectTarget::Tcp(addrs) => {
                let stream = TcpStream::connect(&addrs[..])?;
                let _ = stream.set_nodelay(true);
                Transport::Tcp(stream)
            }
            ConnectTarget::Uds(path) => Transport::Uds(UnixStream::connect(path)?),
        };
        self.read_buf.clear();
        Ok(())
    }

    /// Bound how long a [`QcfeClient::recv`] blocks for server bytes.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        match &self.transport {
            Transport::Tcp(s) => s.set_read_timeout(timeout)?,
            Transport::Uds(s) => s.set_read_timeout(timeout)?,
        }
        Ok(())
    }

    /// Encode and send one request without waiting for its response;
    /// returns the correlation id the response will echo. Call repeatedly
    /// to pipeline.
    pub fn send(&mut self, request: &EstimateRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let wire_request = WireRequest::from_estimate_request(id, request)?;
        self.transport
            .write_all(&wire::encode_request(&wire_request)?)?;
        Ok(id)
    }

    /// Block until the next response frame arrives (whatever its id — the
    /// server answers pipelined requests in completion order).
    pub fn recv(&mut self) -> Result<WireResponse, ClientError> {
        loop {
            match wire::frame_length(&self.read_buf)? {
                Some(len) => {
                    let frame: Vec<u8> = self.read_buf.drain(..len).collect();
                    return match wire::decode_frame(&frame)? {
                        Frame::Response(response) => Ok(response),
                        Frame::Request(_) => Err(ClientError::UnexpectedFrame),
                    };
                }
                None => {
                    let mut chunk = [0u8; 16 * 1024];
                    let n = self.transport.read(&mut chunk)?;
                    if n == 0 {
                        return Err(ClientError::Io(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "server closed the connection",
                        )));
                    }
                    self.read_buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One blocking round trip: send, await the matching response (out-of-
    /// order frames from interleaved pipelining are an error here — use
    /// [`QcfeClient::send`]/[`QcfeClient::recv`] for pipelined traffic),
    /// convert a fault into [`ClientError::Fault`].
    pub fn estimate(&mut self, request: &EstimateRequest) -> Result<EstimateResponse, ClientError> {
        let id = self.send(request)?;
        let response = self.recv()?;
        if response.request_id != id {
            return Err(ClientError::IdMismatch {
                expected: id,
                got: response.request_id,
            });
        }
        match response.outcome {
            Ok(estimate) => Ok(estimate.into_response()),
            Err(fault) => Err(ClientError::Fault(fault)),
        }
    }

    /// [`QcfeClient::estimate`] with a [`RetryPolicy`]: a
    /// [`WireFault::QueueFull`] shed backs off exponentially and re-sends
    /// up to `max_retries` times; a broken connection is transparently
    /// re-established at most once per call (when `policy.reconnect`) and
    /// the request re-sent. Every other failure — including any other
    /// typed fault — returns immediately, and the final shed fault is
    /// returned unchanged once retries are spent.
    pub fn estimate_with_retry(
        &mut self,
        request: &EstimateRequest,
        policy: RetryPolicy,
    ) -> Result<EstimateResponse, ClientError> {
        let mut sheds = 0u32;
        let mut reconnected = false;
        loop {
            match self.estimate(request) {
                Err(ClientError::Fault(WireFault::QueueFull { .. }))
                    if sheds < policy.max_retries =>
                {
                    std::thread::sleep(policy.backoff(sheds));
                    sheds += 1;
                }
                Err(ClientError::Io(_)) if policy.reconnect && !reconnected => {
                    reconnected = true;
                    self.reconnect()?;
                }
                outcome => return outcome,
            }
        }
    }
}

//! Single-threaded reactor serving `QCFP` over TCP and Unix-domain
//! sockets.
//!
//! One thread owns every connection. Sockets are nonblocking and
//! level-polled through [`crate::sys::Poller`]; decoded requests enter the
//! gateway through its asynchronous
//! [`QcfeGateway::submit_with_notify`] path, so an in-flight estimate
//! costs one map entry — not a parked thread — and thousands can be
//! outstanding at once. Completion hooks (running on the shard worker
//! threads) push the finished sequence number onto a queue and kick the
//! reactor's [`crate::sys::Waker`]; the reactor reaps each ticket with the
//! non-blocking [`PendingResponse::try_wait`] and ships the response frame
//! on the owning connection.
//!
//! ## Backpressure
//!
//! The reactor never blocks on admission: every gateway submission sheds
//! load. When a shard queue is full, the client's own `shed_load` flag
//! picks the policy — `true` gets a typed
//! [`WireFault::QueueFull`](crate::wire::WireFault) response immediately;
//! `false` parks the decoded request on its connection and *pauses
//! reading from that connection* (the paper's closed-loop client simply
//! stops being read from, and TCP flow control propagates the stall to
//! it) until a completion frees queue capacity.
//!
//! ## Malformed input
//!
//! A frame whose *envelope* is broken — bad magic, unknown version,
//! oversized length, checksum mismatch — leaves the stream unparseable,
//! so the reactor ships a best-effort error response (request id 0) and
//! closes the connection. A frame whose envelope verified but whose
//! *payload* is invalid (unknown tag, out-of-range deadline, …) is
//! answered with a typed `BadRequest` carrying the authentic request id,
//! and the connection lives on.

use crate::sys::{Event, Interest, Poller, Waker, WakerHandle};
use crate::wire::{
    self, Frame, WireError, WireEstimate, WireFault, WireManifestReply, WireRequest, WireResponse,
    WireShipAck, MAX_STRING_LEN,
};
use qcfe_db::EnvFingerprint;
use qcfe_serve::{ModelKey, PendingResponse, QcfeError, QcfeGateway, ReplicaSet};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token of the reactor's waker registration.
const WAKER_TOKEN: usize = usize::MAX;
/// First token handed to connections; listeners use `0..CONN_BASE`.
const CONN_BASE: usize = 64;
/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;
/// Poll timeout when nothing sooner (deadline/idle sweep) is due.
const TICK: Duration = Duration::from_millis(100);

/// Counters the reactor returns from [`ServerHandle::join`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: u64,
    /// Connections refused because the connection cap was reached.
    pub connections_refused: u64,
    /// Successful estimates shipped.
    pub responses_ok: u64,
    /// Typed fault responses shipped (including `BadRequest`).
    pub responses_fault: u64,
    /// Connections dropped for an unparseable stream (bad envelope).
    pub protocol_errors: u64,
    /// Peer-shipped snapshots/models validated and absorbed into the
    /// gateway (each answered with an accepting ship-ack).
    pub ships_applied: u64,
    /// Peer-shipped payloads that failed codec validation or the local
    /// store write (answered with a rejecting ship-ack; nothing applied).
    pub ships_rejected: u64,
    /// Requests refused with [`WireFault::NotOwner`] because rendezvous
    /// placement assigns their serving key to another peer.
    pub not_owner_redirects: u64,
    /// Store manifests served to interrogating peers (one per revival
    /// catch-up handshake this process answered).
    pub manifests_served: u64,
}

/// Configures and starts a [`ServerHandle`]. Build one via
/// [`NetServerBuilder::new`], add at least one listener, then
/// [`NetServerBuilder::start`].
pub struct NetServerBuilder {
    gateway: Arc<QcfeGateway>,
    tcp: Vec<String>,
    uds: Vec<PathBuf>,
    max_connections: usize,
    idle_timeout: Duration,
    drain_timeout: Duration,
    replicas: Option<Arc<ReplicaSet>>,
}

impl NetServerBuilder {
    /// A builder serving the given gateway.
    pub fn new(gateway: Arc<QcfeGateway>) -> Self {
        NetServerBuilder {
            gateway,
            tcp: Vec::new(),
            uds: Vec::new(),
            max_connections: 1024,
            idle_timeout: Duration::from_secs(300),
            drain_timeout: Duration::from_secs(10),
            replicas: None,
        }
    }

    /// Add a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral port —
    /// read the bound address back from [`ServerHandle::tcp_addrs`]).
    pub fn tcp(mut self, addr: impl Into<String>) -> Self {
        self.tcp.push(addr.into());
        self
    }

    /// Add a Unix-domain listener at `path`. A stale socket file from a
    /// previous run is removed first.
    pub fn uds(mut self, path: impl Into<PathBuf>) -> Self {
        self.uds.push(path.into());
        self
    }

    /// Cap concurrent connections; excess accepts are closed immediately
    /// (default 1024).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.max_connections = max.max(1);
        self
    }

    /// Close connections with no traffic and no in-flight requests after
    /// this long (default 5 minutes).
    pub fn idle_timeout(mut self, timeout: Duration) -> Self {
        self.idle_timeout = timeout;
        self
    }

    /// How long a graceful shutdown waits for in-flight requests to
    /// complete and responses to flush before forcing the exit
    /// (default 10 seconds).
    pub fn drain_timeout(mut self, timeout: Duration) -> Self {
        self.drain_timeout = timeout;
        self
    }

    /// Serve as one member of a replica set: requests whose serving key
    /// rendezvous-places on another *alive* peer are refused with the
    /// typed [`WireFault::NotOwner`] carrying the owner's address (the
    /// client's redirect hint), and peer-shipped snapshot/model frames
    /// are validated, absorbed into the gateway and acked. Without this,
    /// the server owns every key and ship frames are protocol errors.
    pub fn replica(mut self, replicas: Arc<ReplicaSet>) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// Bind every listener, then spawn the reactor thread. Binding happens
    /// on the caller's thread so ephemeral ports are resolved — and bind
    /// failures surface — before this returns.
    pub fn start(self) -> io::Result<ServerHandle> {
        // Listener tokens occupy `0..CONN_BASE`; one more would collide
        // with connection slot 0 and misdispatch its readiness events.
        if self.tcp.len() + self.uds.len() > CONN_BASE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("at most {CONN_BASE} listeners are supported"),
            ));
        }
        let mut listeners = Vec::new();
        let mut tcp_addrs = Vec::new();
        for addr in &self.tcp {
            let listener = TcpListener::bind(addr.as_str())?;
            listener.set_nonblocking(true)?;
            tcp_addrs.push(listener.local_addr()?);
            listeners.push(Listener::Tcp(listener));
        }
        for path in &self.uds {
            if path.exists() {
                std::fs::remove_file(path)?;
            }
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            listeners.push(Listener::Uds(listener));
        }
        if listeners.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "server needs at least one listener",
            ));
        }

        let mut poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(waker.fd(), WAKER_TOKEN, Interest::READ)?;
        for (i, listener) in listeners.iter().enumerate() {
            poller.register(listener.fd(), i, Interest::READ)?;
        }
        let wake_handle = waker.handle()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let reactor = Reactor {
            gateway: self.gateway,
            poller,
            waker,
            wake_handle: wake_handle.clone(),
            listeners,
            conns: Vec::new(),
            pending: HashMap::new(),
            completions: Arc::new(Mutex::new(Vec::new())),
            next_seq: 0,
            shutdown: shutdown.clone(),
            max_connections: self.max_connections,
            idle_timeout: self.idle_timeout,
            drain_timeout: self.drain_timeout,
            replicas: self.replicas,
            stats: ServerStats::default(),
        };
        let thread = std::thread::Builder::new()
            .name("qcfe-net-reactor".into())
            .spawn(move || reactor.run())?;
        Ok(ServerHandle {
            shutdown,
            waker: wake_handle,
            thread: Some(thread),
            tcp_addrs,
            uds_paths: self.uds,
        })
    }
}

/// A running reactor. Dropping the handle shuts the server down
/// gracefully and joins the reactor thread.
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
    waker: WakerHandle,
    thread: Option<std::thread::JoinHandle<io::Result<ServerStats>>>,
    tcp_addrs: Vec<SocketAddr>,
    uds_paths: Vec<PathBuf>,
}

impl ServerHandle {
    /// Bound TCP addresses, in the order the builder's `tcp` calls added
    /// them (ephemeral ports resolved).
    pub fn tcp_addrs(&self) -> &[SocketAddr] {
        &self.tcp_addrs
    }

    /// Unix-domain socket paths being listened on.
    pub fn uds_paths(&self) -> &[PathBuf] {
        &self.uds_paths
    }

    /// Begin a graceful shutdown: stop accepting, let in-flight requests
    /// complete (bounded by the drain timeout), flush and close. Safe to
    /// call more than once.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Shut down (if not already requested) and wait for the reactor to
    /// exit, returning its lifetime counters.
    pub fn join(mut self) -> io::Result<ServerStats> {
        self.shutdown();
        let result = match self.thread.take() {
            Some(thread) => thread
                .join()
                .unwrap_or_else(|_| Err(io::Error::other("reactor thread panicked"))),
            None => Ok(ServerStats::default()),
        };
        self.cleanup_uds();
        result
    }

    fn cleanup_uds(&self) {
        for path in &self.uds_paths {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.cleanup_uds();
    }
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Listener {
    fn fd(&self) -> RawFd {
        match self {
            Listener::Tcp(l) => l.as_raw_fd(),
            Listener::Uds(l) => l.as_raw_fd(),
        }
    }

    fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
            Listener::Uds(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(true)?;
                Ok(Stream::Uds(stream))
            }
        }
    }
}

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn fd(&self) -> RawFd {
        match self {
            Stream::Tcp(s) => s.as_raw_fd(),
            Stream::Uds(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }
}

struct Conn {
    stream: Stream,
    /// Generation of this slot; stamps in-flight requests so a completion
    /// for a closed connection cannot reach the slot's next tenant.
    generation: u64,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    last_activity: Instant,
    in_flight: usize,
    /// A decoded request waiting for shard queue capacity. While set, the
    /// connection is not read from (frames behind the stalled one must not
    /// overtake it).
    stalled: Option<WireRequest>,
    /// Peer half-closed (or shutdown draining): stop reading.
    read_closed: bool,
    /// Close as soon as the write buffer drains.
    close_after_flush: bool,
    interest: Interest,
}

impl Conn {
    fn wants_read(&self, shutting_down: bool) -> bool {
        !self.read_closed && self.stalled.is_none() && !self.close_after_flush && !shutting_down
    }

    fn has_backlog(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }
}

struct Pending {
    slot: usize,
    generation: u64,
    request_id: u64,
    response: PendingResponse,
    submitted_at: Instant,
    deadline_us: Option<u64>,
    expires: Option<Instant>,
}

struct Reactor {
    gateway: Arc<QcfeGateway>,
    poller: Poller,
    waker: Waker,
    wake_handle: WakerHandle,
    listeners: Vec<Listener>,
    conns: Vec<Option<Conn>>,
    pending: HashMap<u64, Pending>,
    completions: Arc<Mutex<Vec<u64>>>,
    next_seq: u64,
    shutdown: Arc<AtomicBool>,
    max_connections: usize,
    idle_timeout: Duration,
    drain_timeout: Duration,
    replicas: Option<Arc<ReplicaSet>>,
    stats: ServerStats,
}

impl Reactor {
    fn run(mut self) -> io::Result<ServerStats> {
        let mut events: Vec<Event> = Vec::new();
        let mut accepting = true;
        let mut drain_until: Option<Instant> = None;

        loop {
            let shutting_down = self.shutdown.load(Ordering::SeqCst);
            if shutting_down {
                if accepting {
                    // Stop accepting: deregister and drop the listeners so
                    // new connects fail fast instead of queueing.
                    for listener in self.listeners.drain(..) {
                        let _ = self.poller.deregister(listener.fd());
                    }
                    accepting = false;
                    drain_until = Some(Instant::now() + self.drain_timeout);
                    for slot in 0..self.conns.len() {
                        if self.conns[slot].is_some() {
                            self.update_interest(slot, true);
                        }
                    }
                }
                let drained = self.pending.is_empty()
                    && self
                        .conns
                        .iter()
                        .flatten()
                        .all(|c| !c.has_backlog() && c.stalled.is_none());
                let expired = drain_until.is_some_and(|t| Instant::now() >= t);
                if drained || expired {
                    break;
                }
            }

            let timeout = self.poll_timeout(shutting_down);
            self.poller.wait(&mut events, Some(timeout))?;

            for event in events.drain(..) {
                if event.token == WAKER_TOKEN {
                    self.waker.drain();
                } else if event.token < CONN_BASE {
                    if accepting {
                        self.accept_all(event.token);
                    }
                } else {
                    let slot = event.token - CONN_BASE;
                    if event.writable || event.error {
                        self.flush(slot, shutting_down);
                    }
                    if event.readable {
                        self.readable(slot, shutting_down);
                    }
                }
            }

            self.drain_completions(shutting_down);
            self.sweep_deadlines(shutting_down);
            if !shutting_down {
                self.sweep_idle();
            }
        }
        Ok(self.stats)
    }

    /// Sleep until the next thing that needs the reactor: the nearest
    /// in-flight deadline, else the housekeeping tick.
    fn poll_timeout(&self, shutting_down: bool) -> Duration {
        let mut timeout = TICK;
        let now = Instant::now();
        for pending in self.pending.values() {
            if let Some(expires) = pending.expires {
                timeout = timeout.min(expires.saturating_duration_since(now));
            }
        }
        if shutting_down {
            timeout = timeout.min(Duration::from_millis(10));
        }
        timeout
    }

    fn accept_all(&mut self, listener: usize) {
        loop {
            match self.listeners[listener].accept() {
                Ok(stream) => {
                    let active = self.conns.iter().flatten().count();
                    if active >= self.max_connections {
                        self.stats.connections_refused += 1;
                        continue; // drop the socket: connection refused
                    }
                    self.stats.connections_accepted += 1;
                    let slot = self
                        .conns
                        .iter()
                        .position(Option::is_none)
                        .unwrap_or_else(|| {
                            self.conns.push(None);
                            self.conns.len() - 1
                        });
                    let generation = self.next_seq; // any unique stamp
                    self.next_seq += 1;
                    let fd = stream.fd();
                    let conn = Conn {
                        stream,
                        generation,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        last_activity: Instant::now(),
                        in_flight: 0,
                        stalled: None,
                        read_closed: false,
                        close_after_flush: false,
                        interest: Interest::READ,
                    };
                    if self
                        .poller
                        .register(fd, CONN_BASE + slot, Interest::READ)
                        .is_err()
                    {
                        continue; // conn dropped; slot stays free
                    }
                    self.conns[slot] = Some(conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn readable(&mut self, slot: usize, shutting_down: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if !conn.wants_read(shutting_down) {
            return;
        }
        conn.last_activity = Instant::now();
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.parse_frames(slot, shutting_down);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.read_closed && conn.in_flight == 0 && !conn.has_backlog() {
            self.close(slot);
        } else {
            self.update_interest(slot, shutting_down);
        }
    }

    /// Consume every complete frame in the connection's read buffer.
    /// Stops early when the connection stalls on backpressure or the
    /// stream desyncs.
    fn parse_frames(&mut self, slot: usize, shutting_down: bool) {
        let mut offset = 0;
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if conn.stalled.is_some() || conn.close_after_flush {
                break;
            }
            let buf = &conn.read_buf[offset..];
            match wire::frame_length(buf) {
                Ok(None) => break,
                Ok(Some(len)) => {
                    // Take the frame bytes out so `self` is free for the
                    // handlers below.
                    let frame: Vec<u8> = buf[..len].to_vec();
                    offset += len;
                    self.handle_frame(slot, &frame, shutting_down);
                }
                Err(error) => {
                    // The stream cannot be re-synchronised: answer with a
                    // best-effort error frame and close.
                    self.stats.protocol_errors += 1;
                    self.protocol_error(slot, 0, &error);
                    if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                        conn.read_buf.clear();
                    }
                    return;
                }
            }
        }
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.read_buf.drain(..offset);
        }
    }

    fn handle_frame(&mut self, slot: usize, frame: &[u8], shutting_down: bool) {
        match wire::decode_frame(frame) {
            Ok(Frame::Request(request)) => self.submit(slot, *request, shutting_down),
            Ok(Frame::Response(response)) => {
                // Clients must not send response frames; the stream is
                // syntactically fine but semantically broken — reject and
                // close.
                self.stats.protocol_errors += 1;
                self.protocol_error(
                    slot,
                    response.request_id,
                    &WireError::UnknownFrameKind(wire::FRAME_RESPONSE),
                );
            }
            Ok(Frame::ShipSnapshot(ship)) => {
                if self.reject_ship_when_solo(slot, ship.request_id) {
                    return;
                }
                let outcome = self.gateway.apply_shipped_snapshot(
                    ship.benchmark,
                    EnvFingerprint(ship.fingerprint),
                    &ship.snapshot,
                    &ship.knobs,
                );
                self.ship_ack(slot, ship.request_id, outcome, shutting_down);
            }
            Ok(Frame::ShipModel(ship)) => {
                if self.reject_ship_when_solo(slot, ship.request_id) {
                    return;
                }
                let key = ModelKey::new(
                    ship.benchmark,
                    ship.estimator,
                    EnvFingerprint(ship.fingerprint),
                );
                let outcome = self.gateway.apply_shipped_model(key, &ship.weights);
                self.ship_ack(slot, ship.request_id, outcome, shutting_down);
            }
            Ok(Frame::ShipAck(ack)) => {
                // Only *senders* of ship frames ever receive acks; an
                // inbound one means the peer has its roles confused.
                self.stats.protocol_errors += 1;
                self.protocol_error(
                    slot,
                    ack.request_id,
                    &WireError::UnknownFrameKind(wire::FRAME_SHIP_ACK),
                );
            }
            Ok(Frame::ManifestRequest(request)) => {
                // A reviving-peer interrogation: answer with this store's
                // full manifest so the surviving peer can diff and
                // re-ship. Solo servers treat it as role confusion, like
                // a ship frame.
                if self.reject_ship_when_solo(slot, request.request_id) {
                    return;
                }
                match self.gateway.store().manifest() {
                    Ok(entries) => {
                        let reply = WireManifestReply {
                            request_id: request.request_id,
                            entries: entries.into_iter().map(Into::into).collect(),
                        };
                        let Ok(bytes) = wire::encode_manifest_reply(&reply) else {
                            // A store beyond the wire caps cannot answer
                            // the handshake; close and let the peer retry.
                            self.close(slot);
                            return;
                        };
                        self.stats.manifests_served += 1;
                        self.enqueue_bytes(slot, &bytes, shutting_down);
                    }
                    Err(error) => {
                        self.send_fault(
                            slot,
                            request.request_id,
                            WireFault::Store {
                                message: clip(&error.to_string()),
                            },
                            shutting_down,
                        );
                    }
                }
            }
            Ok(Frame::ManifestReply(reply)) => {
                // Only interrogating *requesters* ever receive manifest
                // replies; an inbound one is role confusion.
                self.stats.protocol_errors += 1;
                self.protocol_error(
                    slot,
                    reply.request_id,
                    &WireError::UnknownFrameKind(wire::FRAME_MANIFEST_REPLY),
                );
            }
            Err(error) => match wire::peek_request_id(frame) {
                // Envelope verified, payload invalid: typed rejection with
                // the authentic id, connection survives.
                Some(request_id) => {
                    self.send_fault(
                        slot,
                        request_id,
                        WireFault::BadRequest {
                            message: clip(&error.to_string()),
                        },
                        shutting_down,
                    );
                }
                // Checksum failure inside a well-delimited frame.
                None => {
                    self.stats.protocol_errors += 1;
                    self.protocol_error(slot, 0, &error);
                }
            },
        }
    }

    fn submit(&mut self, slot: usize, request: WireRequest, shutting_down: bool) {
        if shutting_down {
            self.send_fault(
                slot,
                request.request_id,
                WireFault::ServiceClosed,
                shutting_down,
            );
            return;
        }
        let Some(conn) = self.conns.get(slot).and_then(Option::as_ref) else {
            return;
        };
        let generation = conn.generation;
        let request_id = request.request_id;
        let client_sheds = request.shed_load;
        let deadline_us = request.deadline_us;

        let seq = self.next_seq;
        self.next_seq += 1;
        let completions = Arc::clone(&self.completions);
        let wake = self.wake_handle.clone();
        let notify: qcfe_serve::CompletionNotify = Arc::new(move || {
            completions.lock().expect("completion queue").push(seq);
            wake.wake();
        });

        // The reactor itself always sheds: a full shard queue must never
        // block the event loop. The client's own flag picks what happens
        // next.
        let mut estimate_request = request.clone().into_estimate_request();
        estimate_request.options.shed_load = true;

        // Replicated serving: a key placed on another alive peer is
        // refused with a redirect hint instead of served here — every
        // replica answers the same way, so clients converge on one owner
        // per key and shipped state stays single-writer.
        if let Some(replicas) = &self.replicas {
            let key = ModelKey::new(
                estimate_request.benchmark,
                estimate_request.options.estimator,
                estimate_request.environment.fingerprint(),
            );
            if !replicas.owns(&key) {
                self.stats.not_owner_redirects += 1;
                let owner = replicas.owner_addr(&key).to_string();
                self.send_fault(
                    slot,
                    request_id,
                    WireFault::NotOwner { owner },
                    shutting_down,
                );
                return;
            }
        }

        match self
            .gateway
            .submit_with_notify(estimate_request, Some(notify))
        {
            Ok(response) => {
                let submitted_at = Instant::now();
                self.pending.insert(
                    seq,
                    Pending {
                        slot,
                        generation,
                        request_id,
                        response,
                        submitted_at,
                        deadline_us,
                        expires: deadline_us.map(|us| submitted_at + Duration::from_micros(us)),
                    },
                );
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    conn.in_flight += 1;
                }
            }
            Err(QcfeError::Service(qcfe_serve::ServiceError::QueueFull { .. }))
                if !client_sheds =>
            {
                // Park the request and stop reading this connection until
                // a completion frees capacity.
                if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                    conn.stalled = Some(request);
                }
                self.update_interest(slot, shutting_down);
            }
            Err(error) => {
                self.send_fault(slot, request_id, WireFault::from(&error), shutting_down);
            }
        }
    }

    /// Reap every completed submission the workers have signalled, then
    /// retry stalled connections against the freed queue capacity.
    fn drain_completions(&mut self, shutting_down: bool) {
        loop {
            let seqs: Vec<u64> = {
                let mut queue = self.completions.lock().expect("completion queue");
                std::mem::take(&mut *queue)
            };
            if seqs.is_empty() {
                break;
            }
            for seq in seqs {
                let Some(pending) = self.pending.remove(&seq) else {
                    continue; // already answered by the deadline sweep
                };
                self.finish(pending, shutting_down);
            }
        }
        self.retry_stalled(shutting_down);
    }

    /// Answer every in-flight request whose deadline has passed without a
    /// completion; the eventual completion finds nothing and is dropped.
    fn sweep_deadlines(&mut self, shutting_down: bool) {
        let now = Instant::now();
        let expired: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| p.expires.is_some_and(|t| now >= t))
            .map(|(seq, _)| *seq)
            .collect();
        for seq in expired {
            if let Some(pending) = self.pending.remove(&seq) {
                self.finish(pending, shutting_down);
            }
        }
    }

    /// Turn one reaped submission into a response frame on its connection
    /// (if that connection is still the same one that submitted it).
    fn finish(&mut self, pending: Pending, shutting_down: bool) {
        let Pending {
            slot,
            generation,
            request_id,
            response,
            submitted_at,
            deadline_us,
            ..
        } = pending;
        let live = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.generation == generation);
        if live {
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                conn.in_flight = conn.in_flight.saturating_sub(1);
            }
        }
        let outcome = match response.try_wait() {
            Ok(Some(estimate)) => Ok(WireEstimate::from_response(&estimate)),
            // Reply not yet consumable: only the deadline sweep lands here,
            // reaping a request whose budget lapsed before the worker was
            // done (completion hooks fire strictly after the reply becomes
            // consumable). Answer with the actual deadline fault.
            Ok(None) => Err(WireFault::DeadlineExceeded {
                elapsed_us: submitted_at.elapsed().as_micros().min(u64::MAX as u128) as u64,
                deadline_us: deadline_us.unwrap_or(0),
            }),
            Err(error) => Err(WireFault::from(&error)),
        };
        // The estimate was produced either way — drop it silently if the
        // submitting connection is gone.
        if !live {
            return;
        }
        match outcome {
            Ok(estimate) => {
                self.stats.responses_ok += 1;
                self.enqueue(
                    slot,
                    WireResponse {
                        request_id,
                        outcome: Ok(estimate),
                    },
                    shutting_down,
                );
            }
            Err(fault) => self.send_fault(slot, request_id, fault, shutting_down),
        }
        let idle_close = self
            .conns
            .get(slot)
            .and_then(Option::as_ref)
            .is_some_and(|c| c.read_closed && c.in_flight == 0 && !c.has_backlog());
        if idle_close {
            self.close(slot);
        }
    }

    /// Re-submit parked requests now that completions may have freed
    /// shard queue capacity; resuming reads happens via `submit` →
    /// `update_interest` when the stall clears.
    fn retry_stalled(&mut self, shutting_down: bool) {
        for slot in 0..self.conns.len() {
            let Some(request) = self
                .conns
                .get_mut(slot)
                .and_then(Option::as_mut)
                .and_then(|c| c.stalled.take())
            else {
                continue;
            };
            self.submit(slot, request, shutting_down);
            // If it stalled again, submit() re-parked it; otherwise the
            // connection is readable again and buffered frames resume.
            let unstalled = self
                .conns
                .get(slot)
                .and_then(Option::as_ref)
                .is_some_and(|c| c.stalled.is_none());
            if unstalled {
                self.parse_frames(slot, shutting_down);
                self.update_interest(slot, shutting_down);
            }
        }
    }

    fn sweep_idle(&mut self) {
        let now = Instant::now();
        let idle: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(slot, conn)| {
                let conn = conn.as_ref()?;
                let quiet = conn.in_flight == 0 && !conn.has_backlog();
                // A stalled connection is not read from (its parked request
                // must not be overtaken), so a peer that disconnects while
                // parked is invisible to the reactor. Bound the park: the
                // idle timeout doubles as the longest a request may wait
                // for shard queue capacity before the connection — and its
                // parked request — is reclaimed.
                let sweepable = quiet || conn.stalled.is_some();
                (sweepable && now.duration_since(conn.last_activity) > self.idle_timeout)
                    .then_some(slot)
            })
            .collect();
        for slot in idle {
            self.close(slot);
        }
    }

    /// Ship frames are only meaningful between replica-set members; a
    /// solo server treats them as a role confusion and closes, exactly
    /// like an inbound response frame. Returns whether the frame was
    /// rejected.
    fn reject_ship_when_solo(&mut self, slot: usize, request_id: u64) -> bool {
        if self.replicas.is_some() {
            return false;
        }
        self.stats.protocol_errors += 1;
        self.protocol_error(
            slot,
            request_id,
            &WireError::UnknownFrameKind(wire::FRAME_SHIP_SNAPSHOT),
        );
        true
    }

    /// Answer a ship frame: accepted on `Ok`, else a rejection carrying
    /// the rendered reason. The connection survives either way — a peer
    /// with one corrupt artifact can still ship the rest.
    fn ship_ack(
        &mut self,
        slot: usize,
        request_id: u64,
        outcome: Result<(), QcfeError>,
        shutting_down: bool,
    ) {
        let ack = match outcome {
            Ok(()) => {
                self.stats.ships_applied += 1;
                WireShipAck {
                    request_id,
                    accepted: true,
                    message: String::new(),
                }
            }
            Err(error) => {
                self.stats.ships_rejected += 1;
                WireShipAck {
                    request_id,
                    accepted: false,
                    message: clip(&error.to_string()),
                }
            }
        };
        let Ok(bytes) = wire::encode_ship_ack(&ack) else {
            self.close(slot);
            return;
        };
        self.enqueue_bytes(slot, &bytes, shutting_down);
    }

    fn send_fault(&mut self, slot: usize, request_id: u64, fault: WireFault, down: bool) {
        self.stats.responses_fault += 1;
        self.enqueue(
            slot,
            WireResponse {
                request_id,
                outcome: Err(fault),
            },
            down,
        );
    }

    /// Best-effort error frame for an unparseable stream, then close once
    /// it flushes.
    fn protocol_error(&mut self, slot: usize, request_id: u64, error: &WireError) {
        self.send_fault(
            slot,
            request_id,
            WireFault::BadRequest {
                message: clip(&error.to_string()),
            },
            false,
        );
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.close_after_flush = true;
        }
        self.flush(slot, false);
    }

    fn enqueue(&mut self, slot: usize, response: WireResponse, shutting_down: bool) {
        let Ok(bytes) = wire::encode_response(&response) else {
            // Unencodable response (cannot happen with clipped messages):
            // nothing sane to send.
            self.close(slot);
            return;
        };
        self.enqueue_bytes(slot, &bytes, shutting_down);
    }

    fn enqueue_bytes(&mut self, slot: usize, bytes: &[u8], shutting_down: bool) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
            conn.write_buf.extend_from_slice(bytes);
            self.flush(slot, shutting_down);
        }
    }

    fn flush(&mut self, slot: usize, shutting_down: bool) {
        let must_close = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let mut close = false;
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.write_pos += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        close = true;
                        break;
                    }
                }
            }
            if !close && conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_after_flush || (conn.read_closed && conn.in_flight == 0) {
                    close = true;
                }
            }
            close
        };
        if must_close {
            self.close(slot);
        } else {
            self.update_interest(slot, shutting_down);
        }
    }

    fn update_interest(&mut self, slot: usize, shutting_down: bool) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let desired = Interest {
            readable: conn.wants_read(shutting_down),
            writable: conn.has_backlog(),
        };
        if desired != conn.interest {
            conn.interest = desired;
            let fd = conn.stream.fd();
            let _ = self.poller.rearm(fd, CONN_BASE + slot, desired);
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) {
            let _ = self.poller.deregister(conn.stream.fd());
            // In-flight submissions keep their Pending entries; `finish`
            // sees the generation mismatch and drops the responses.
        }
    }
}

/// Bound a fault message so it always fits the wire's string cap.
fn clip(message: &str) -> String {
    if message.len() <= MAX_STRING_LEN {
        return message.to_string();
    }
    let mut end = 1024;
    while !message.is_char_boundary(end) {
        end -= 1;
    }
    message[..end].to_string()
}

//! `qcfe-served` — serve a snapshot store's estimators over the network.
//!
//! ```text
//! qcfe-served STORE_DIR [--tcp ADDR]... [--uds PATH]... [--max-conns N] [--idle-secs N]
//! ```
//!
//! Opens the gateway over `STORE_DIR` (persisted `QCFS` snapshots and
//! `QCFW` model weights are loaded on demand — a pre-populated store
//! serves without retraining) and listens on every `--tcp`/`--uds`
//! endpoint. With no listener flags it serves on `127.0.0.1:7433`.
//!
//! The process runs until stdin reaches EOF (or `SIGINT`/`SIGTERM` kills
//! it); EOF triggers a graceful shutdown that drains in-flight requests —
//! scriptable as `qcfe-served store < /dev/null` for a bind-check, or
//! driven by closing the pipe a supervisor holds open.

use qcfe_net::server::NetServerBuilder;
use qcfe_serve::QcfeGateway;
use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qcfe-served STORE_DIR [--tcp ADDR]... [--uds PATH]... \
         [--max-conns N] [--idle-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut store_dir: Option<String> = None;
    let mut tcp: Vec<String> = Vec::new();
    let mut uds: Vec<String> = Vec::new();
    let mut max_conns = 1024usize;
    let mut idle_secs = 300u64;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp.push(args.next().unwrap_or_else(|| usage())),
            "--uds" => uds.push(args.next().unwrap_or_else(|| usage())),
            "--max-conns" => {
                max_conns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--idle-secs" => {
                idle_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ if store_dir.is_none() && !arg.starts_with('-') => store_dir = Some(arg),
            _ => usage(),
        }
    }
    let Some(store_dir) = store_dir else { usage() };
    if tcp.is_empty() && uds.is_empty() {
        tcp.push("127.0.0.1:7433".to_string());
    }

    let gateway = match QcfeGateway::builder(&store_dir).build() {
        Ok(gateway) => Arc::new(gateway),
        Err(e) => {
            eprintln!("qcfe-served: cannot open store {store_dir}: {e}");
            std::process::exit(1);
        }
    };

    let mut builder = NetServerBuilder::new(gateway)
        .max_connections(max_conns)
        .idle_timeout(Duration::from_secs(idle_secs));
    for addr in tcp {
        builder = builder.tcp(addr);
    }
    for path in &uds {
        builder = builder.uds(path);
    }
    let handle = match builder.start() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qcfe-served: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    for addr in handle.tcp_addrs() {
        println!("listening tcp {addr}");
    }
    for path in handle.uds_paths() {
        println!("listening uds {}", path.display());
    }

    // Serve until stdin closes, then drain and exit.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    match handle.join() {
        Ok(stats) => println!(
            "served {} ok / {} fault over {} connections",
            stats.responses_ok, stats.responses_fault, stats.connections_accepted
        ),
        Err(e) => {
            eprintln!("qcfe-served: reactor failed: {e}");
            std::process::exit(1);
        }
    }
}

//! `qcfe-served` — serve a snapshot store's estimators over the network.
//!
//! ```text
//! qcfe-served STORE_DIR [--tcp ADDR]... [--uds PATH]... [--max-conns N] [--idle-secs N]
//!             [--peer ADDR]... [--self-index I] [--heartbeat-ms N]
//! ```
//!
//! Opens the gateway over `STORE_DIR` (persisted `QCFS` snapshots and
//! `QCFW` model weights are loaded on demand — a pre-populated store
//! serves without retraining) and listens on every `--tcp`/`--uds`
//! endpoint. With no listener flags it serves on `127.0.0.1:7433`.
//!
//! ## Replicated serving
//!
//! N processes started with the **same ordered `--peer` list** (each
//! naming every member's client-facing TCP address, its own included) and
//! a distinct `--self-index` form a static replica set: serving keys are
//! rendezvous-placed across the peers, requests for another alive peer's
//! key are refused with a `NotOwner` redirect, and every published or
//! refined snapshot/model is shipped to the other members as verbatim
//! `QCFS`/`QCFW` codec bytes, so survivors absorb a dead member's shards
//! bit-identically. `--heartbeat-ms` tunes the liveness probe cadence.
//! Revival is anti-entropic: when a heartbeat finds a dead peer answering
//! again, the replicator first exchanges store manifests with it, re-ships
//! any keys that diverged while it was down (for example re-publishes
//! absorbed by survivors), and only then routes traffic back to it.
//!
//! The process runs until stdin reaches EOF (or `SIGINT`/`SIGTERM` kills
//! it); EOF triggers a graceful shutdown that drains in-flight requests —
//! scriptable as `qcfe-served store < /dev/null` for a bind-check, or
//! driven by closing the pipe a supervisor holds open.

use qcfe_net::replicator::{Replicator, ReplicatorConfig};
use qcfe_net::server::NetServerBuilder;
use qcfe_serve::{QcfeGateway, ReplicaSet, SnapshotStore};
use std::io::Read;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: qcfe-served STORE_DIR [--tcp ADDR]... [--uds PATH]... \
         [--max-conns N] [--idle-secs N] \
         [--peer ADDR]... [--self-index I] [--heartbeat-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut store_dir: Option<String> = None;
    let mut tcp: Vec<String> = Vec::new();
    let mut uds: Vec<String> = Vec::new();
    let mut max_conns = 1024usize;
    let mut idle_secs = 300u64;
    let mut peers: Vec<String> = Vec::new();
    let mut self_index: Option<usize> = None;
    let mut heartbeat_ms = 1000u64;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tcp" => tcp.push(args.next().unwrap_or_else(|| usage())),
            "--uds" => uds.push(args.next().unwrap_or_else(|| usage())),
            "--max-conns" => {
                max_conns = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--idle-secs" => {
                idle_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--peer" => peers.push(args.next().unwrap_or_else(|| usage())),
            "--self-index" => {
                self_index = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--heartbeat-ms" => {
                heartbeat_ms = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            _ if store_dir.is_none() && !arg.starts_with('-') => store_dir = Some(arg),
            _ => usage(),
        }
    }
    let Some(store_dir) = store_dir else { usage() };
    if tcp.is_empty() && uds.is_empty() {
        tcp.push("127.0.0.1:7433".to_string());
    }
    if peers.is_empty() != self_index.is_none() {
        eprintln!("qcfe-served: --peer and --self-index must be given together");
        std::process::exit(2);
    }

    let replicas = match self_index {
        Some(index) => match ReplicaSet::new(peers, index) {
            Ok(set) => Some(Arc::new(set)),
            Err(e) => {
                eprintln!("qcfe-served: invalid replica set: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let replicator = replicas.as_ref().map(|set| {
        let config = ReplicatorConfig {
            heartbeat: Duration::from_millis(heartbeat_ms.max(1)),
            ..ReplicatorConfig::default()
        };
        // Hand the replicator its own store handle so a peer seen coming
        // back from the dead is caught up (manifest diff + re-ship) before
        // traffic is routed back to it.
        match SnapshotStore::open(&store_dir) {
            Ok(store) => Replicator::with_store(Arc::clone(set), config, store),
            Err(e) => {
                eprintln!("qcfe-served: cannot open store {store_dir}: {e}");
                std::process::exit(1);
            }
        }
    });

    let mut gateway_builder = QcfeGateway::builder(&store_dir);
    if let (Some(set), Some(replicator)) = (&replicas, &replicator) {
        gateway_builder = gateway_builder.replication(Arc::clone(set), replicator.sink());
    }
    let gateway = match gateway_builder.build() {
        Ok(gateway) => Arc::new(gateway),
        Err(e) => {
            eprintln!("qcfe-served: cannot open store {store_dir}: {e}");
            std::process::exit(1);
        }
    };

    let mut builder = NetServerBuilder::new(gateway)
        .max_connections(max_conns)
        .idle_timeout(Duration::from_secs(idle_secs));
    if let Some(set) = &replicas {
        builder = builder.replica(Arc::clone(set));
    }
    for addr in tcp {
        builder = builder.tcp(addr);
    }
    for path in &uds {
        builder = builder.uds(path);
    }
    let handle = match builder.start() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("qcfe-served: cannot start server: {e}");
            std::process::exit(1);
        }
    };
    for addr in handle.tcp_addrs() {
        println!("listening tcp {addr}");
    }
    for path in handle.uds_paths() {
        println!("listening uds {}", path.display());
    }
    if let Some(set) = &replicas {
        println!(
            "replica {}/{} of [{}]",
            set.self_index().unwrap_or(0),
            set.len(),
            set.peers().join(", ")
        );
    }

    // Serve until stdin closes, then drain and exit.
    let mut sink = [0u8; 4096];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    drop(replicator); // stop shipping before the listeners go away
    match handle.join() {
        Ok(stats) => println!(
            "served {} ok / {} fault over {} connections",
            stats.responses_ok, stats.responses_fault, stats.connections_accepted
        ),
        Err(e) => {
            eprintln!("qcfe-served: reactor failed: {e}");
            std::process::exit(1);
        }
    }
}

//! The `QCFP` wire protocol: length-framed, versioned, CRC-checked
//! request/response records for remote cost estimation.
//!
//! `QCFP` is the fourth member of the workspace's binary codec family
//! (`QCFS` snapshots, `QVEC` knob vectors, `QCFW` model weights — see the
//! format table in [`qcfe_core::snapshot`]) and follows the same rules:
//! a 4-byte ASCII magic, an explicit little-endian version, raw `f64` bit
//! patterns for lossless round-trips, **strict** rejection of unknown
//! versions/flags/tags, and no-panic bounds-checked decoding — a hostile
//! or corrupt frame produces a typed [`WireError`], never a crash or an
//! unbounded allocation.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       4     magic "QCFP"
//! 4       4     u32 LE codec version (currently 1)
//! 8       4     u32 LE body length
//! 12      4     u32 LE CRC-32 over the body
//! 16      n     body
//! ```
//!
//! The body starts with its own fixed header — `kind: u8` (1 = request,
//! 2 = response, 3 = ship-snapshot, 4 = ship-model, 5 = ship-ack,
//! 6 = manifest-request, 7 = manifest-reply),
//! `flags: u8` (must be zero in v1), `request id: u64 LE`
//! (echoed verbatim in the response, correlating pipelined replies) —
//! followed by the kind-specific payload. Putting the length and checksum
//! *before* the body keeps the CRC contiguous and lets a stream reader
//! find the frame boundary ([`frame_length`]) from the first 16 bytes,
//! rejecting garbage (bad magic, wrong version, oversized length) before
//! buffering a payload for it.
//!
//! # Decode hardening
//!
//! Every variable-length field is bounded *before* allocation: strings at
//! [`MAX_STRING_LEN`], lists at [`MAX_LIST_LEN`], plan trees at
//! [`MAX_PLAN_NODES`] nodes / [`MAX_PLAN_DEPTH`] depth, whole frames at
//! [`MAX_BODY_LEN`]. Deadline budgets are clamp-validated on **both**
//! ends ([`MAX_DEADLINE_US`]): a corrupt or hostile frame cannot smuggle
//! an unbounded budget into the gateway — it fails typed with
//! [`WireError::DeadlineOutOfRange`].
//!
//! # Tenant tag
//!
//! Request frames may carry a tenant id for the gateway's multi-tenant
//! scheduler ([`qcfe_serve::sched`]). The tag spends one of the reserved
//! option bits (`1 << 2`): when set, a `u32 LE` tenant id follows the
//! deadline field; when clear, no tenant bytes are emitted and the frame
//! is byte-identical to a pre-tenant v1 frame, so old and new peers
//! interoperate for the anonymous tenant. The strict-rejection rule
//! applies unchanged: any *other* unknown option bit still fails decoding
//! with [`WireError::UnknownTag`], and a set tenant bit carrying the
//! reserved anonymous id `0` is rejected the same way (a compliant
//! encoder never emits it).
//!
//! # Replication frames
//!
//! Frame kinds 3–5 extend `QCFP` into the replication plane of a peer
//! set of `qcfe-served` processes: [`WireShipSnapshot`] and
//! [`WireShipModel`] carry the **verbatim persisted codec bytes** — the
//! CRC-checked `QCFS` v2 snapshot / `QCFW` v2 weight payloads the origin
//! just wrote to its own store — to every peer, which answers each with a
//! [`WireShipAck`]. Reusing the durable codecs as the replication format
//! means shipped state is bit-identical to persisted state by
//! construction, and corruption is rejected typed twice: once by the
//! frame CRC here, once by the codec's own magic/version/checksum when
//! the receiver re-validates the payload before applying it. The version
//! stays 1 — pre-replication decoders already reject the new kinds typed
//! with [`WireError::UnknownFrameKind`], which is exactly the strict
//! behaviour the family mandates. Blobs are bounded by
//! [`MAX_SHIP_BYTES`] before allocation, like every other field.
//!
//! # Manifest frames
//!
//! Frame kinds 6–7 close the anti-entropy gap the fire-and-forget ship
//! frames leave open: when a survivor's heartbeat sees a peer transition
//! dead→alive, it sends a [`WireManifestRequest`] (empty payload) and the
//! revived peer answers with a [`WireManifestReply`] — a deterministic
//! listing of every persisted artifact as `(key, CRC-32 of the verbatim
//! file bytes)` [`WireManifestEntry`] records. The survivor diffs the
//! reply against its own store manifest and re-ships divergent or missing
//! keys through the ordinary kind-3/4 path before routing traffic back.
//! Like kinds 3–5, the version stays 1 and pre-manifest decoders reject
//! the new kinds typed with [`WireError::UnknownFrameKind`]. Entry counts
//! are bounded by [`MAX_MANIFEST_ENTRIES`] before allocation.

use qcfe_core::pipeline::EstimatorKind;
use qcfe_db::env::EnvFingerprint;
use qcfe_db::expr::{ColumnRef, CompareOp, JoinCondition, Predicate};
use qcfe_db::plan::{PhysicalOp, PlanNode};
use qcfe_db::query::Aggregate;
use qcfe_db::types::Value;
use qcfe_db::{DbEnvironment, HardwareProfile, KnobConfig};
use qcfe_nn::codec::crc32;
use qcfe_serve::registry::ModelKey;
use qcfe_serve::request::{
    EstimateRequest, EstimateResponse, Provenance, RequestOptions, SnapshotOrigin,
};
use qcfe_serve::sched::TenantId;
use qcfe_serve::service::ServiceError;
use qcfe_serve::QcfeError;
use qcfe_storage::{DiskKind, StorageFormat};
use qcfe_workloads::BenchmarkKind;
use std::sync::Arc;
use std::time::Duration;

/// Frame magic: `QCFP` in ASCII.
pub const WIRE_MAGIC: [u8; 4] = *b"QCFP";
/// Current wire version. Decoders reject anything else.
pub const WIRE_VERSION: u32 = 1;
/// Bytes before the body: magic + version + body length + CRC-32.
pub const PRELUDE_LEN: usize = 16;
/// Fixed body header: kind (1) + flags (1) + request id (8).
pub const BODY_HEADER_LEN: usize = 10;
/// Body kind of a request frame.
pub const FRAME_REQUEST: u8 = 1;
/// Body kind of a response frame.
pub const FRAME_RESPONSE: u8 = 2;
/// Body kind of a snapshot-shipping frame (peer replication).
pub const FRAME_SHIP_SNAPSHOT: u8 = 3;
/// Body kind of a model-shipping frame (peer replication).
pub const FRAME_SHIP_MODEL: u8 = 4;
/// Body kind of a shipping acknowledgement (peer replication).
pub const FRAME_SHIP_ACK: u8 = 5;
/// Body kind of a store-manifest request (revival anti-entropy).
pub const FRAME_MANIFEST_REQUEST: u8 = 6;
/// Body kind of a store-manifest reply (revival anti-entropy).
pub const FRAME_MANIFEST_REPLY: u8 = 7;
/// Upper bound on one frame's body, bounding what a reader buffers for a
/// single length prefix.
pub const MAX_BODY_LEN: usize = 1 << 20;
/// Upper bound on any string field (table/column/environment names).
pub const MAX_STRING_LEN: usize = 4096;
/// Upper bound on any list field (predicates, sort keys, IN-list values,
/// aggregate functions, children of one node).
pub const MAX_LIST_LEN: usize = 1024;
/// Upper bound on plan-tree size.
pub const MAX_PLAN_NODES: usize = 4096;
/// Upper bound on plan-tree depth (bounds decoder recursion).
pub const MAX_PLAN_DEPTH: usize = 64;
/// Largest admissible deadline budget: one minute, in microseconds.
/// Anything above is a corrupt or hostile frame, not a plausible
/// per-query estimation budget.
pub const MAX_DEADLINE_US: u64 = 60_000_000;
/// Upper bound on a shipped `QCFS`/`QCFW` blob, leaving headroom inside
/// [`MAX_BODY_LEN`] for the ship frame's own header and knob vector.
pub const MAX_SHIP_BYTES: usize = MAX_BODY_LEN - 16 * 1024;
/// Upper bound on the entries of one manifest reply. Entries are at most
/// 15 bytes each, so a full reply stays well inside [`MAX_BODY_LEN`];
/// the cap is far above [`MAX_LIST_LEN`] because a manifest enumerates a
/// whole store, not one frame's fields.
pub const MAX_MANIFEST_ENTRIES: usize = 32 * 1024;

/// Any failure to encode or decode a `QCFP` frame. Decoding is total:
/// every byte sequence maps to a value or to one of these, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame does not start with `QCFP`.
    BadMagic([u8; 4]),
    /// The frame's version is not [`WIRE_VERSION`].
    UnsupportedVersion(u32),
    /// Reserved flag bits were set (v1 defines none).
    UnknownFlags(u8),
    /// The body kind is neither request nor response.
    UnknownFrameKind(u8),
    /// The declared body length exceeds [`MAX_BODY_LEN`].
    FrameTooLarge {
        /// Declared body length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The declared body length cannot even hold the body header.
    BodyTooShort(usize),
    /// The body's CRC-32 does not match the prelude's.
    Checksum {
        /// CRC the prelude declared.
        expected: u32,
        /// CRC of the received body.
        actual: u32,
    },
    /// Fewer bytes than a field (or the declared frame) requires.
    Truncated,
    /// Bytes left over after a complete decode.
    TrailingBytes(usize),
    /// An enum tag outside the type's range.
    UnknownTag {
        /// Which wire type carried the tag.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A string field was not valid UTF-8.
    BadString,
    /// A string field exceeded [`MAX_STRING_LEN`].
    StringTooLong {
        /// Declared length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A list field exceeded [`MAX_LIST_LEN`].
    ListTooLong {
        /// Which list.
        what: &'static str,
        /// Declared length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A plan tree exceeded [`MAX_PLAN_NODES`].
    PlanTooLarge {
        /// The cap it exceeded.
        max: usize,
    },
    /// A plan tree exceeded [`MAX_PLAN_DEPTH`].
    PlanTooDeep {
        /// The cap it exceeded.
        max: usize,
    },
    /// A deadline budget above [`MAX_DEADLINE_US`] — rejected on both the
    /// encode and the decode side, so neither a buggy client nor a corrupt
    /// frame can request an effectively unbounded budget.
    DeadlineOutOfRange {
        /// The offending budget in microseconds.
        micros: u64,
        /// The cap it exceeded.
        max: u64,
    },
    /// A shipped codec blob exceeded [`MAX_SHIP_BYTES`] — rejected on
    /// both ends, before the decoder allocates for it.
    ShipTooLarge {
        /// Declared blob length.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad QCFP magic {m:?}"),
            WireError::UnsupportedVersion(v) => {
                write!(f, "unsupported QCFP version {v} (expected {WIRE_VERSION})")
            }
            WireError::UnknownFlags(bits) => write!(f, "unknown QCFP flag bits {bits:#04x}"),
            WireError::UnknownFrameKind(kind) => write!(f, "unknown QCFP frame kind {kind}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "QCFP body of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::BodyTooShort(len) => {
                write!(f, "QCFP body of {len} bytes cannot hold its header")
            }
            WireError::Checksum { expected, actual } => write!(
                f,
                "QCFP checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            WireError::Truncated => write!(f, "truncated QCFP frame"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after QCFP frame"),
            WireError::UnknownTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadString => write!(f, "QCFP string is not valid UTF-8"),
            WireError::StringTooLong { len, max } => {
                write!(f, "QCFP string of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::ListTooLong { what, len, max } => {
                write!(f, "QCFP {what} list of {len} entries exceeds the {max} cap")
            }
            WireError::PlanTooLarge { max } => {
                write!(f, "QCFP plan tree exceeds {max} nodes")
            }
            WireError::PlanTooDeep { max } => {
                write!(f, "QCFP plan tree exceeds depth {max}")
            }
            WireError::DeadlineOutOfRange { micros, max } => {
                write!(f, "deadline budget of {micros} us exceeds the {max} us cap")
            }
            WireError::ShipTooLarge { len, max } => {
                write!(f, "shipped blob of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------------
// Wire-level request/response types.
// ---------------------------------------------------------------------------

/// One decoded request frame: an [`EstimateRequest`] plus the wire-only
/// correlation id. The deadline is carried in microseconds and validated
/// against [`MAX_DEADLINE_US`] at both ends.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response. Pipelined
    /// requests on one connection are answered in completion order; the id
    /// is how the client reassociates them.
    pub request_id: u64,
    /// The benchmark/schema the plan belongs to.
    pub benchmark: BenchmarkKind,
    /// The estimator family to serve the request.
    pub estimator: EstimatorKind,
    /// Whether an unseen environment may warm-start from the nearest
    /// persisted fingerprint.
    pub allow_transfer: bool,
    /// Whether a full shard queue fails the request instead of queueing it
    /// behind the reactor's backpressure.
    pub shed_load: bool,
    /// Optional deadline budget in microseconds (≤ [`MAX_DEADLINE_US`]).
    pub deadline_us: Option<u64>,
    /// The tenant the request is accounted to (`0` = anonymous). Nonzero
    /// ids travel behind the tenant option bit; `0` emits no tenant bytes,
    /// keeping anonymous frames byte-identical to pre-tenant `QCFP`.
    pub tenant: u32,
    /// The complete environment the client runs under.
    pub environment: DbEnvironment,
    /// The physical plan to estimate.
    pub plan: PlanNode,
}

impl WireRequest {
    /// Build a wire request from a gateway request, validating the
    /// deadline budget. The encode-side half of the clamp: a buggy caller
    /// fails here instead of emitting a frame every compliant decoder
    /// rejects.
    pub fn from_estimate_request(
        request_id: u64,
        request: &EstimateRequest,
    ) -> Result<Self, WireError> {
        let deadline_us = match request.deadline {
            None => None,
            Some(deadline) => {
                let micros = deadline.as_micros();
                if micros > MAX_DEADLINE_US as u128 {
                    return Err(WireError::DeadlineOutOfRange {
                        micros: micros.min(u64::MAX as u128) as u64,
                        max: MAX_DEADLINE_US,
                    });
                }
                Some(micros as u64)
            }
        };
        Ok(WireRequest {
            request_id,
            benchmark: request.benchmark,
            estimator: request.options.estimator,
            allow_transfer: request.options.allow_transfer,
            shed_load: request.options.shed_load,
            deadline_us,
            tenant: request.options.tenant.0,
            environment: (*request.environment).clone(),
            plan: request.plan.clone(),
        })
    }

    /// Convert into the gateway's request type.
    pub fn into_estimate_request(self) -> EstimateRequest {
        EstimateRequest {
            benchmark: self.benchmark,
            environment: Arc::new(self.environment),
            plan: self.plan,
            deadline: self.deadline_us.map(Duration::from_micros),
            options: RequestOptions {
                estimator: self.estimator,
                allow_transfer: self.allow_transfer,
                shed_load: self.shed_load,
                tenant: TenantId(self.tenant),
            },
        }
    }
}

/// The success payload of a response frame: a bit-exact wire projection
/// of [`EstimateResponse`] (the `f64` travels as raw bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireEstimate {
    /// Predicted query latency in milliseconds.
    pub cost_ms: f64,
    /// Size of the micro-batch the request was served in.
    pub batch_size: u32,
    /// Whether the plan encoding came from the shard's encoding cache.
    pub encoding_cache_hit: bool,
    /// Whether the shard's model weights were restored from disk.
    pub model_from_disk: bool,
    /// Whether the serving snapshot has been refined online.
    pub refined: bool,
    /// Whether this request cold-started the shard.
    pub cold_start: bool,
    /// Serving key: benchmark.
    pub benchmark: BenchmarkKind,
    /// Serving key: estimator family.
    pub estimator: EstimatorKind,
    /// Serving key: environment fingerprint.
    pub fingerprint: u64,
    /// Where the serving snapshot came from.
    pub origin: SnapshotOrigin,
    /// Microseconds from shard submission until the reply was consumed.
    pub service_us: u64,
    /// Microseconds end-to-end inside the gateway.
    pub total_us: u64,
}

impl WireEstimate {
    /// Project a gateway response onto the wire.
    pub fn from_response(response: &EstimateResponse) -> Self {
        let p = &response.provenance;
        WireEstimate {
            cost_ms: response.cost_ms,
            batch_size: u32::try_from(response.batch_size).unwrap_or(u32::MAX),
            encoding_cache_hit: response.encoding_cache_hit,
            model_from_disk: p.model_from_disk,
            refined: p.refined,
            cold_start: p.cold_start,
            benchmark: p.model_key.benchmark,
            estimator: p.model_key.estimator,
            fingerprint: p.model_key.fingerprint.0,
            origin: p.snapshot_origin,
            service_us: p.service_us,
            total_us: p.total_us,
        }
    }

    /// Reassemble the gateway response type.
    pub fn into_response(self) -> EstimateResponse {
        EstimateResponse {
            cost_ms: self.cost_ms,
            batch_size: self.batch_size as usize,
            encoding_cache_hit: self.encoding_cache_hit,
            provenance: Provenance {
                model_key: ModelKey::new(
                    self.benchmark,
                    self.estimator,
                    EnvFingerprint(self.fingerprint),
                ),
                snapshot_origin: self.origin,
                model_from_disk: self.model_from_disk,
                refined: self.refined,
                cold_start: self.cold_start,
                service_us: self.service_us,
                total_us: self.total_us,
            },
        }
    }
}

/// The failure payload of a response frame: the [`QcfeError`] taxonomy
/// projected onto the wire, plus [`WireFault::BadRequest`] for requests
/// the server could frame-correlate but not honour (body decode failures,
/// out-of-range deadlines).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireFault {
    /// The shard's estimation service is closed.
    ServiceClosed,
    /// The shard's queue (or the tenant's admission quota) was full and
    /// the request shed load. Carries the observed depth and the limit it
    /// hit, so a client can distinguish "the whole shard is saturated"
    /// from "my tenant's share is spent" and size its backoff.
    QueueFull {
        /// Entries queued (or admitted for the tenant) when the request
        /// was shed.
        depth: u64,
        /// The configured bound the request ran into.
        limit: u64,
    },
    /// No snapshot was resolvable for the environment.
    SnapshotMissing {
        /// The benchmark the request targeted.
        benchmark: BenchmarkKind,
        /// The fingerprint no snapshot could be resolved for.
        fingerprint: u64,
    },
    /// No model was resolvable under the serving key.
    ModelMissing {
        /// Serving key: benchmark.
        benchmark: BenchmarkKind,
        /// Serving key: estimator family.
        estimator: EstimatorKind,
        /// Serving key: environment fingerprint.
        fingerprint: u64,
    },
    /// The request's deadline elapsed before an estimate was produced.
    DeadlineExceeded {
        /// Time spent when the deadline fired, microseconds.
        elapsed_us: u64,
        /// The deadline the request carried, microseconds.
        deadline_us: u64,
    },
    /// The gateway's snapshot store failed.
    Store {
        /// Rendered store error.
        message: String,
    },
    /// The server rejected the request itself (malformed body, invalid
    /// deadline) — a protocol-level failure, not an estimation one.
    BadRequest {
        /// Rendered wire error.
        message: String,
    },
    /// This replica does not own the request's shard under the peer set's
    /// rendezvous placement. Carries the owning peer's address so a
    /// shard-aware client can follow the redirect instead of guessing.
    NotOwner {
        /// The address of the peer that owns the shard.
        owner: String,
    },
}

impl From<&QcfeError> for WireFault {
    fn from(error: &QcfeError) -> Self {
        match error {
            QcfeError::Service(ServiceError::Closed) => WireFault::ServiceClosed,
            QcfeError::Service(ServiceError::QueueFull { depth, limit }) => WireFault::QueueFull {
                depth: *depth as u64,
                limit: *limit as u64,
            },
            // The gateway's From<ServiceError> already folds scheduler
            // deadline drops into QcfeError::DeadlineExceeded; map a raw
            // one the same way rather than leaving a hole.
            QcfeError::Service(ServiceError::DeadlineExpired { waited, deadline }) => {
                WireFault::DeadlineExceeded {
                    elapsed_us: waited.as_micros().min(u64::MAX as u128) as u64,
                    deadline_us: deadline.as_micros().min(u64::MAX as u128) as u64,
                }
            }
            QcfeError::SnapshotMissing {
                benchmark,
                fingerprint,
            } => WireFault::SnapshotMissing {
                benchmark: *benchmark,
                fingerprint: fingerprint.0,
            },
            QcfeError::ModelMissing { key } => WireFault::ModelMissing {
                benchmark: key.benchmark,
                estimator: key.estimator,
                fingerprint: key.fingerprint.0,
            },
            QcfeError::DeadlineExceeded { elapsed, deadline } => WireFault::DeadlineExceeded {
                elapsed_us: elapsed.as_micros().min(u64::MAX as u128) as u64,
                deadline_us: deadline.as_micros().min(u64::MAX as u128) as u64,
            },
            QcfeError::Store(e) => WireFault::Store {
                message: e.to_string(),
            },
        }
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireFault::ServiceClosed => write!(f, "estimation service is closed"),
            WireFault::QueueFull { depth, limit } => {
                write!(
                    f,
                    "estimation queue is full ({depth} queued, limit {limit})"
                )
            }
            WireFault::SnapshotMissing {
                benchmark,
                fingerprint,
            } => write!(
                f,
                "no feature snapshot resolvable for {} environment {fingerprint:016x}",
                benchmark.name()
            ),
            WireFault::ModelMissing {
                benchmark,
                estimator,
                fingerprint,
            } => write!(
                f,
                "no {} model for {} environment {fingerprint:016x}",
                estimator.name(),
                benchmark.name()
            ),
            WireFault::DeadlineExceeded {
                elapsed_us,
                deadline_us,
            } => write!(
                f,
                "deadline of {deadline_us} us exceeded after {elapsed_us} us"
            ),
            WireFault::Store { message } => write!(f, "store error: {message}"),
            WireFault::BadRequest { message } => write!(f, "bad request: {message}"),
            WireFault::NotOwner { owner } => {
                write!(f, "shard not owned by this replica; owner is {owner}")
            }
        }
    }
}

impl std::error::Error for WireFault {}

/// One decoded response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WireResponse {
    /// The correlation id echoed from the request (0 when the server could
    /// not trust the request's id, e.g. on a checksum failure).
    pub request_id: u64,
    /// The estimate, or the typed failure.
    pub outcome: Result<WireEstimate, WireFault>,
}

/// A shipped feature snapshot: the verbatim persisted `QCFS` v2 bytes of
/// one `(benchmark, fingerprint)` environment, plus its knob vector (the
/// `QVEC` sidecar content, so the receiver can serve nearest-fingerprint
/// transfer for the environment too).
#[derive(Debug, Clone, PartialEq)]
pub struct WireShipSnapshot {
    /// Sender-chosen correlation id, echoed in the [`WireShipAck`].
    pub request_id: u64,
    /// The benchmark the snapshot belongs to.
    pub benchmark: BenchmarkKind,
    /// The environment fingerprint it is keyed under.
    pub fingerprint: u64,
    /// The environment's knob vector (may be empty when unknown).
    pub knobs: Vec<f64>,
    /// The verbatim `QCFS` v2 codec bytes (≤ [`MAX_SHIP_BYTES`]).
    pub snapshot: Vec<u8>,
}

/// Shipped model weights: the verbatim persisted `QCFW` v2 bytes of one
/// serving key.
#[derive(Debug, Clone, PartialEq)]
pub struct WireShipModel {
    /// Sender-chosen correlation id, echoed in the [`WireShipAck`].
    pub request_id: u64,
    /// Serving key: benchmark.
    pub benchmark: BenchmarkKind,
    /// Serving key: estimator family.
    pub estimator: EstimatorKind,
    /// Serving key: environment fingerprint.
    pub fingerprint: u64,
    /// The verbatim `QCFW` v2 codec bytes (≤ [`MAX_SHIP_BYTES`]).
    pub weights: Vec<u8>,
}

/// The receiver's answer to a ship frame. `accepted = false` means the
/// payload failed the receiver's codec validation or store write — the
/// artifact is *not* applied and `message` carries the rendered reason;
/// the sender's connection stays healthy either way.
#[derive(Debug, Clone, PartialEq)]
pub struct WireShipAck {
    /// The correlation id echoed from the ship frame.
    pub request_id: u64,
    /// Whether the shipped artifact was validated and applied.
    pub accepted: bool,
    /// Rendered rejection reason (empty when accepted).
    pub message: String,
}

/// A request for a peer's store manifest, sent by a survivor when its
/// heartbeat sees the peer transition dead→alive. The payload is empty —
/// the correlation id is the whole message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireManifestRequest {
    /// Sender-chosen correlation id, echoed in the [`WireManifestReply`].
    pub request_id: u64,
}

/// One record of a manifest reply: the identity of a persisted artifact
/// plus a CRC-32 over its verbatim `QCFS`/`QCFW` file bytes. Mirrors
/// `qcfe_serve`'s store-level manifest entry with the wire's raw-`u64`
/// fingerprint convention (same as the ship frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireManifestEntry {
    /// A persisted feature snapshot.
    Snapshot {
        /// The benchmark the snapshot belongs to.
        benchmark: BenchmarkKind,
        /// The environment fingerprint it is keyed under.
        fingerprint: u64,
        /// CRC-32 over the verbatim `QCFS` file bytes.
        crc: u32,
    },
    /// Persisted model weights.
    Model {
        /// Serving key: benchmark.
        benchmark: BenchmarkKind,
        /// Serving key: estimator family.
        estimator: EstimatorKind,
        /// Serving key: environment fingerprint.
        fingerprint: u64,
        /// CRC-32 over the verbatim `QCFW` file bytes.
        crc: u32,
    },
}

impl From<qcfe_serve::store::ManifestEntry> for WireManifestEntry {
    fn from(entry: qcfe_serve::store::ManifestEntry) -> Self {
        match entry {
            qcfe_serve::store::ManifestEntry::Snapshot {
                benchmark,
                fingerprint,
                crc,
            } => WireManifestEntry::Snapshot {
                benchmark,
                fingerprint: fingerprint.0,
                crc,
            },
            qcfe_serve::store::ManifestEntry::Model {
                benchmark,
                estimator,
                fingerprint,
                crc,
            } => WireManifestEntry::Model {
                benchmark,
                estimator,
                fingerprint: fingerprint.0,
                crc,
            },
        }
    }
}

/// A peer's answer to a [`WireManifestRequest`]: its complete store
/// manifest, in the store's deterministic order. The requester diffs this
/// against its own manifest and re-ships anything divergent or missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireManifestReply {
    /// The correlation id echoed from the manifest request.
    pub request_id: u64,
    /// Every persisted artifact (≤ [`MAX_MANIFEST_ENTRIES`]).
    pub entries: Vec<WireManifestEntry>,
}

/// Any decoded `QCFP` frame.
///
/// The request side is boxed: a [`WireRequest`] carries a full
/// [`DbEnvironment`] and plan tree inline, far larger than a response, and
/// the enum would otherwise cost every response that padding. Ship frames
/// are boxed for the same reason — they carry whole codec blobs.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A client-to-server request.
    Request(Box<WireRequest>),
    /// A server-to-client response.
    Response(WireResponse),
    /// A peer-to-peer shipped snapshot.
    ShipSnapshot(Box<WireShipSnapshot>),
    /// A peer-to-peer shipped model.
    ShipModel(Box<WireShipModel>),
    /// A peer's answer to a ship frame.
    ShipAck(WireShipAck),
    /// A survivor's request for a revived peer's store manifest.
    ManifestRequest(WireManifestRequest),
    /// The revived peer's store manifest.
    ManifestReply(WireManifestReply),
}

// ---------------------------------------------------------------------------
// Little-endian writer/reader.
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn string(&mut self, s: &str) -> Result<(), WireError> {
        if s.len() > MAX_STRING_LEN {
            return Err(WireError::StringTooLong {
                len: s.len(),
                max: MAX_STRING_LEN,
            });
        }
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
        Ok(())
    }

    fn list_len(&mut self, what: &'static str, len: usize) -> Result<(), WireError> {
        if len > MAX_LIST_LEN {
            return Err(WireError::ListTooLong {
                what,
                len,
                max: MAX_LIST_LEN,
            });
        }
        self.u32(len as u32);
        Ok(())
    }

    fn blob(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if bytes.len() > MAX_SHIP_BYTES {
            return Err(WireError::ShipTooLarge {
                len: bytes.len(),
                max: MAX_SHIP_BYTES,
            });
        }
        self.u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
        Ok(())
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_STRING_LEN {
            return Err(WireError::StringTooLong {
                len,
                max: MAX_STRING_LEN,
            });
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadString)
    }

    fn list_len(&mut self, what: &'static str) -> Result<usize, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_LIST_LEN {
            return Err(WireError::ListTooLong {
                what,
                len,
                max: MAX_LIST_LEN,
            });
        }
        Ok(len)
    }

    fn blob(&mut self) -> Result<Vec<u8>, WireError> {
        let len = self.u32()? as usize;
        if len > MAX_SHIP_BYTES {
            return Err(WireError::ShipTooLarge {
                len,
                max: MAX_SHIP_BYTES,
            });
        }
        Ok(self.take(len)?.to_vec())
    }

    fn finish(self) -> Result<(), WireError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(WireError::TrailingBytes(n)),
        }
    }
}

// ---------------------------------------------------------------------------
// Enum tags: the wire tag of every closed enum is its index in the type's
// canonical `ALL` order, so the wire order is pinned to the same constant
// the encoders one-hot against.
// ---------------------------------------------------------------------------

fn tag_in<T: Copy + PartialEq>(all: &[T], value: T) -> u8 {
    all.iter()
        .position(|v| *v == value)
        .expect("value present in ALL") as u8
}

fn tag_out<T: Copy>(all: &[T], tag: u8, what: &'static str) -> Result<T, WireError> {
    all.get(tag as usize)
        .copied()
        .ok_or(WireError::UnknownTag { what, tag })
}

// ---------------------------------------------------------------------------
// Payload encoders/decoders.
// ---------------------------------------------------------------------------

fn write_column(w: &mut Writer, column: &ColumnRef) -> Result<(), WireError> {
    w.string(&column.table)?;
    w.string(&column.column)
}

fn read_column(r: &mut Reader<'_>) -> Result<ColumnRef, WireError> {
    Ok(ColumnRef {
        table: r.string()?,
        column: r.string()?,
    })
}

fn write_join(w: &mut Writer, condition: &JoinCondition) -> Result<(), WireError> {
    write_column(w, &condition.left)?;
    write_column(w, &condition.right)
}

fn read_join(r: &mut Reader<'_>) -> Result<JoinCondition, WireError> {
    Ok(JoinCondition {
        left: read_column(r)?,
        right: read_column(r)?,
    })
}

fn write_value(w: &mut Writer, value: &Value) -> Result<(), WireError> {
    match value {
        Value::Int(v) => {
            w.u8(0);
            w.i64(*v);
        }
        Value::Float(v) => {
            w.u8(1);
            w.f64(*v);
        }
        Value::Text(s) => {
            w.u8(2);
            w.string(s)?;
        }
        Value::Date(v) => {
            w.u8(3);
            w.i64(*v);
        }
        Value::Bool(v) => {
            w.u8(4);
            w.u8(*v as u8);
        }
        Value::Null => w.u8(5),
    }
    Ok(())
}

fn read_value(r: &mut Reader<'_>) -> Result<Value, WireError> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Float(r.f64()?)),
        2 => Ok(Value::Text(r.string()?)),
        3 => Ok(Value::Date(r.i64()?)),
        4 => match r.u8()? {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            tag => Err(WireError::UnknownTag { what: "bool", tag }),
        },
        5 => Ok(Value::Null),
        tag => Err(WireError::UnknownTag { what: "value", tag }),
    }
}

fn write_predicate(w: &mut Writer, predicate: &Predicate) -> Result<(), WireError> {
    match predicate {
        Predicate::Compare { column, op, value } => {
            w.u8(0);
            write_column(w, column)?;
            w.u8(tag_in(&CompareOp::ALL, *op));
            write_value(w, value)
        }
        Predicate::Between { column, low, high } => {
            w.u8(1);
            write_column(w, column)?;
            write_value(w, low)?;
            write_value(w, high)
        }
        Predicate::InList { column, values } => {
            w.u8(2);
            write_column(w, column)?;
            w.list_len("in-list", values.len())?;
            for value in values {
                write_value(w, value)?;
            }
            Ok(())
        }
        Predicate::Like { column, pattern } => {
            w.u8(3);
            write_column(w, column)?;
            w.string(pattern)
        }
    }
}

fn read_predicate(r: &mut Reader<'_>) -> Result<Predicate, WireError> {
    match r.u8()? {
        0 => Ok(Predicate::Compare {
            column: read_column(r)?,
            op: tag_out(&CompareOp::ALL, r.u8()?, "compare-op")?,
            value: read_value(r)?,
        }),
        1 => Ok(Predicate::Between {
            column: read_column(r)?,
            low: read_value(r)?,
            high: read_value(r)?,
        }),
        2 => {
            let column = read_column(r)?;
            let len = r.list_len("in-list")?;
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                values.push(read_value(r)?);
            }
            Ok(Predicate::InList { column, values })
        }
        3 => Ok(Predicate::Like {
            column: read_column(r)?,
            pattern: r.string()?,
        }),
        tag => Err(WireError::UnknownTag {
            what: "predicate",
            tag,
        }),
    }
}

fn write_aggregate(w: &mut Writer, aggregate: &Aggregate) -> Result<(), WireError> {
    match aggregate {
        Aggregate::CountStar => {
            w.u8(0);
            Ok(())
        }
        Aggregate::Sum(c) => {
            w.u8(1);
            write_column(w, c)
        }
        Aggregate::Avg(c) => {
            w.u8(2);
            write_column(w, c)
        }
        Aggregate::Min(c) => {
            w.u8(3);
            write_column(w, c)
        }
        Aggregate::Max(c) => {
            w.u8(4);
            write_column(w, c)
        }
    }
}

fn read_aggregate(r: &mut Reader<'_>) -> Result<Aggregate, WireError> {
    match r.u8()? {
        0 => Ok(Aggregate::CountStar),
        1 => Ok(Aggregate::Sum(read_column(r)?)),
        2 => Ok(Aggregate::Avg(read_column(r)?)),
        3 => Ok(Aggregate::Min(read_column(r)?)),
        4 => Ok(Aggregate::Max(read_column(r)?)),
        tag => Err(WireError::UnknownTag {
            what: "aggregate",
            tag,
        }),
    }
}

fn write_op(w: &mut Writer, op: &PhysicalOp) -> Result<(), WireError> {
    match op {
        PhysicalOp::SeqScan { table } => {
            w.u8(0);
            w.string(table)
        }
        PhysicalOp::IndexScan { table, column } => {
            w.u8(1);
            w.string(table)?;
            w.string(column)
        }
        PhysicalOp::Sort { keys } => {
            w.u8(2);
            w.list_len("sort-keys", keys.len())?;
            for key in keys {
                write_column(w, key)?;
            }
            Ok(())
        }
        PhysicalOp::Aggregate {
            group_by,
            functions,
        } => {
            w.u8(3);
            w.list_len("group-by", group_by.len())?;
            for column in group_by {
                write_column(w, column)?;
            }
            w.list_len("aggregates", functions.len())?;
            for function in functions {
                write_aggregate(w, function)?;
            }
            Ok(())
        }
        PhysicalOp::HashJoin { condition } => {
            w.u8(4);
            write_join(w, condition)
        }
        PhysicalOp::MergeJoin { condition } => {
            w.u8(5);
            write_join(w, condition)
        }
        PhysicalOp::NestedLoop { condition } => {
            w.u8(6);
            match condition {
                None => {
                    w.u8(0);
                    Ok(())
                }
                Some(condition) => {
                    w.u8(1);
                    write_join(w, condition)
                }
            }
        }
        PhysicalOp::Materialize => {
            w.u8(7);
            Ok(())
        }
        PhysicalOp::Limit { count } => {
            w.u8(8);
            w.u64(*count);
            Ok(())
        }
    }
}

fn read_op(r: &mut Reader<'_>) -> Result<PhysicalOp, WireError> {
    match r.u8()? {
        0 => Ok(PhysicalOp::SeqScan { table: r.string()? }),
        1 => Ok(PhysicalOp::IndexScan {
            table: r.string()?,
            column: r.string()?,
        }),
        2 => {
            let len = r.list_len("sort-keys")?;
            let mut keys = Vec::with_capacity(len);
            for _ in 0..len {
                keys.push(read_column(r)?);
            }
            Ok(PhysicalOp::Sort { keys })
        }
        3 => {
            let len = r.list_len("group-by")?;
            let mut group_by = Vec::with_capacity(len);
            for _ in 0..len {
                group_by.push(read_column(r)?);
            }
            let len = r.list_len("aggregates")?;
            let mut functions = Vec::with_capacity(len);
            for _ in 0..len {
                functions.push(read_aggregate(r)?);
            }
            Ok(PhysicalOp::Aggregate {
                group_by,
                functions,
            })
        }
        4 => Ok(PhysicalOp::HashJoin {
            condition: read_join(r)?,
        }),
        5 => Ok(PhysicalOp::MergeJoin {
            condition: read_join(r)?,
        }),
        6 => match r.u8()? {
            0 => Ok(PhysicalOp::NestedLoop { condition: None }),
            1 => Ok(PhysicalOp::NestedLoop {
                condition: Some(read_join(r)?),
            }),
            tag => Err(WireError::UnknownTag {
                what: "nested-loop-condition",
                tag,
            }),
        },
        7 => Ok(PhysicalOp::Materialize),
        8 => Ok(PhysicalOp::Limit { count: r.u64()? }),
        tag => Err(WireError::UnknownTag {
            what: "physical-op",
            tag,
        }),
    }
}

fn write_plan(w: &mut Writer, root: &PlanNode) -> Result<(), WireError> {
    fn walk(
        w: &mut Writer,
        node: &PlanNode,
        budget: &mut usize,
        depth: usize,
    ) -> Result<(), WireError> {
        if *budget == 0 {
            return Err(WireError::PlanTooLarge {
                max: MAX_PLAN_NODES,
            });
        }
        if depth > MAX_PLAN_DEPTH {
            return Err(WireError::PlanTooDeep {
                max: MAX_PLAN_DEPTH,
            });
        }
        *budget -= 1;
        write_op(w, &node.op)?;
        w.list_len("predicates", node.predicates.len())?;
        for predicate in &node.predicates {
            write_predicate(w, predicate)?;
        }
        w.f64(node.est_rows);
        w.f64(node.est_width);
        w.f64(node.est_cost);
        w.f64(node.actual_rows);
        w.f64(node.actual_self_ms);
        w.f64(node.actual_total_ms);
        w.list_len("children", node.children.len())?;
        for child in &node.children {
            walk(w, child, budget, depth + 1)?;
        }
        Ok(())
    }
    let mut budget = MAX_PLAN_NODES;
    walk(w, root, &mut budget, 0)
}

fn read_plan(r: &mut Reader<'_>) -> Result<PlanNode, WireError> {
    fn walk(r: &mut Reader<'_>, budget: &mut usize, depth: usize) -> Result<PlanNode, WireError> {
        if *budget == 0 {
            return Err(WireError::PlanTooLarge {
                max: MAX_PLAN_NODES,
            });
        }
        if depth > MAX_PLAN_DEPTH {
            return Err(WireError::PlanTooDeep {
                max: MAX_PLAN_DEPTH,
            });
        }
        *budget -= 1;
        let op = read_op(r)?;
        let len = r.list_len("predicates")?;
        let mut predicates = Vec::with_capacity(len);
        for _ in 0..len {
            predicates.push(read_predicate(r)?);
        }
        let est_rows = r.f64()?;
        let est_width = r.f64()?;
        let est_cost = r.f64()?;
        let actual_rows = r.f64()?;
        let actual_self_ms = r.f64()?;
        let actual_total_ms = r.f64()?;
        let len = r.list_len("children")?;
        let mut children = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            children.push(walk(r, budget, depth + 1)?);
        }
        let mut node = PlanNode::new(op, children);
        node.predicates = predicates;
        node.est_rows = est_rows;
        node.est_width = est_width;
        node.est_cost = est_cost;
        node.actual_rows = actual_rows;
        node.actual_self_ms = actual_self_ms;
        node.actual_total_ms = actual_total_ms;
        Ok(node)
    }
    let mut budget = MAX_PLAN_NODES;
    walk(r, &mut budget, 0)
}

/// Bit layout of the knob booleans (must stay append-only).
const KNOB_BITS: usize = 5;

fn write_environment(w: &mut Writer, env: &DbEnvironment) -> Result<(), WireError> {
    w.string(&env.name)?;
    let k = &env.knobs;
    w.f64(k.seq_page_cost);
    w.f64(k.random_page_cost);
    w.f64(k.cpu_tuple_cost);
    w.f64(k.cpu_index_tuple_cost);
    w.f64(k.cpu_operator_cost);
    w.u64(k.work_mem_kb);
    w.u64(k.shared_buffers_mb);
    w.u64(k.effective_cache_size_mb);
    let mut bits = 0u8;
    for (i, flag) in [
        k.enable_seqscan,
        k.enable_indexscan,
        k.enable_hashjoin,
        k.enable_mergejoin,
        k.enable_nestloop,
    ]
    .into_iter()
    .enumerate()
    {
        bits |= (flag as u8) << i;
    }
    w.u8(bits);
    w.u32(k.max_parallel_workers);
    let h = &env.hardware;
    w.string(&h.name)?;
    w.f64(h.cpu_speed);
    w.u32(h.cores);
    w.u32(h.memory_gb);
    w.u8(tag_in(&DiskKind::ALL, h.disk));
    w.u8(tag_in(&StorageFormat::ALL, env.storage_format));
    w.f64(env.os_overhead);
    Ok(())
}

fn read_environment(r: &mut Reader<'_>) -> Result<DbEnvironment, WireError> {
    let name = r.string()?;
    let seq_page_cost = r.f64()?;
    let random_page_cost = r.f64()?;
    let cpu_tuple_cost = r.f64()?;
    let cpu_index_tuple_cost = r.f64()?;
    let cpu_operator_cost = r.f64()?;
    let work_mem_kb = r.u64()?;
    let shared_buffers_mb = r.u64()?;
    let effective_cache_size_mb = r.u64()?;
    let bits = r.u8()?;
    if bits >> KNOB_BITS != 0 {
        return Err(WireError::UnknownTag {
            what: "knob-bits",
            tag: bits,
        });
    }
    let max_parallel_workers = r.u32()?;
    let knobs = KnobConfig {
        seq_page_cost,
        random_page_cost,
        cpu_tuple_cost,
        cpu_index_tuple_cost,
        cpu_operator_cost,
        work_mem_kb,
        shared_buffers_mb,
        effective_cache_size_mb,
        enable_seqscan: bits & 1 != 0,
        enable_indexscan: bits & 2 != 0,
        enable_hashjoin: bits & 4 != 0,
        enable_mergejoin: bits & 8 != 0,
        enable_nestloop: bits & 16 != 0,
        max_parallel_workers,
    };
    let hardware = HardwareProfile {
        name: r.string()?,
        cpu_speed: r.f64()?,
        cores: r.u32()?,
        memory_gb: r.u32()?,
        disk: tag_out(&DiskKind::ALL, r.u8()?, "disk-kind")?,
    };
    let storage_format = tag_out(&StorageFormat::ALL, r.u8()?, "storage-format")?;
    let os_overhead = r.f64()?;
    Ok(DbEnvironment {
        name,
        knobs,
        hardware,
        storage_format,
        os_overhead,
    })
}

const OPTION_ALLOW_TRANSFER: u8 = 1;
const OPTION_SHED_LOAD: u8 = 1 << 1;
const OPTION_HAS_TENANT: u8 = 1 << 2;
const OPTION_BITS: usize = 3;

fn write_request_payload(w: &mut Writer, request: &WireRequest) -> Result<(), WireError> {
    w.u8(tag_in(&BenchmarkKind::ALL, request.benchmark));
    w.u8(tag_in(&EstimatorKind::ALL, request.estimator));
    let mut bits = 0u8;
    if request.allow_transfer {
        bits |= OPTION_ALLOW_TRANSFER;
    }
    if request.shed_load {
        bits |= OPTION_SHED_LOAD;
    }
    if request.tenant != 0 {
        bits |= OPTION_HAS_TENANT;
    }
    w.u8(bits);
    match request.deadline_us {
        None => {
            w.u8(0);
            w.u64(0);
        }
        Some(micros) => {
            if micros > MAX_DEADLINE_US {
                return Err(WireError::DeadlineOutOfRange {
                    micros,
                    max: MAX_DEADLINE_US,
                });
            }
            w.u8(1);
            w.u64(micros);
        }
    }
    // The tenant id rides behind its option bit, *after* the fixed
    // deadline field: anonymous frames stay byte-identical to pre-tenant
    // QCFP, and the deadline keeps its fixed body offset either way.
    if request.tenant != 0 {
        w.u32(request.tenant);
    }
    write_environment(w, &request.environment)?;
    write_plan(w, &request.plan)
}

fn read_request_payload(r: &mut Reader<'_>, request_id: u64) -> Result<WireRequest, WireError> {
    let benchmark = tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?;
    let estimator = tag_out(&EstimatorKind::ALL, r.u8()?, "estimator")?;
    let bits = r.u8()?;
    if bits >> OPTION_BITS != 0 {
        return Err(WireError::UnknownTag {
            what: "option-bits",
            tag: bits,
        });
    }
    let has_deadline = r.u8()?;
    let micros = r.u64()?;
    let deadline_us = match has_deadline {
        0 => {
            if micros != 0 {
                return Err(WireError::UnknownTag {
                    what: "deadline-presence",
                    tag: has_deadline,
                });
            }
            None
        }
        1 => {
            // The decode-side deadline clamp: a corrupt or hostile frame
            // cannot request an unbounded budget.
            if micros > MAX_DEADLINE_US {
                return Err(WireError::DeadlineOutOfRange {
                    micros,
                    max: MAX_DEADLINE_US,
                });
            }
            Some(micros)
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "deadline-presence",
                tag,
            })
        }
    };
    let tenant = if bits & OPTION_HAS_TENANT != 0 {
        let tenant = r.u32()?;
        if tenant == 0 {
            // The anonymous id never travels behind the tenant bit: a
            // compliant encoder omits the field entirely, so a set bit
            // carrying 0 is a corrupt or hostile frame.
            return Err(WireError::UnknownTag {
                what: "tenant-tag",
                tag: 0,
            });
        }
        tenant
    } else {
        0
    };
    let environment = read_environment(r)?;
    let plan = read_plan(r)?;
    Ok(WireRequest {
        request_id,
        benchmark,
        estimator,
        allow_transfer: bits & OPTION_ALLOW_TRANSFER != 0,
        shed_load: bits & OPTION_SHED_LOAD != 0,
        deadline_us,
        tenant,
        environment,
        plan,
    })
}

const ESTIMATE_CACHE_HIT: u8 = 1;
const ESTIMATE_FROM_DISK: u8 = 1 << 1;
const ESTIMATE_REFINED: u8 = 1 << 2;
const ESTIMATE_COLD_START: u8 = 1 << 3;
const ESTIMATE_BITS: usize = 4;

const STATUS_OK: u8 = 0;
const STATUS_SERVICE_CLOSED: u8 = 1;
const STATUS_QUEUE_FULL: u8 = 2;
const STATUS_SNAPSHOT_MISSING: u8 = 3;
const STATUS_MODEL_MISSING: u8 = 4;
const STATUS_DEADLINE_EXCEEDED: u8 = 5;
const STATUS_STORE: u8 = 6;
const STATUS_BAD_REQUEST: u8 = 7;
const STATUS_NOT_OWNER: u8 = 8;

const ORIGIN_TRAINED_HERE: u8 = 0;
const ORIGIN_TRANSFERRED: u8 = 1;
const ORIGIN_FROM_DISK: u8 = 2;
const ORIGIN_NONE: u8 = 3;

fn write_response_payload(w: &mut Writer, response: &WireResponse) -> Result<(), WireError> {
    match &response.outcome {
        Ok(estimate) => {
            w.u8(STATUS_OK);
            w.f64(estimate.cost_ms);
            w.u32(estimate.batch_size);
            let mut bits = 0u8;
            if estimate.encoding_cache_hit {
                bits |= ESTIMATE_CACHE_HIT;
            }
            if estimate.model_from_disk {
                bits |= ESTIMATE_FROM_DISK;
            }
            if estimate.refined {
                bits |= ESTIMATE_REFINED;
            }
            if estimate.cold_start {
                bits |= ESTIMATE_COLD_START;
            }
            w.u8(bits);
            w.u8(tag_in(&BenchmarkKind::ALL, estimate.benchmark));
            w.u8(tag_in(&EstimatorKind::ALL, estimate.estimator));
            w.u64(estimate.fingerprint);
            match estimate.origin {
                SnapshotOrigin::TrainedHere => w.u8(ORIGIN_TRAINED_HERE),
                SnapshotOrigin::Transferred { source, distance } => {
                    w.u8(ORIGIN_TRANSFERRED);
                    w.u64(source.0);
                    w.f64(distance);
                }
                SnapshotOrigin::LoadedFromDisk => w.u8(ORIGIN_FROM_DISK),
                SnapshotOrigin::None => w.u8(ORIGIN_NONE),
            }
            w.u64(estimate.service_us);
            w.u64(estimate.total_us);
            Ok(())
        }
        Err(fault) => {
            match fault {
                WireFault::ServiceClosed => w.u8(STATUS_SERVICE_CLOSED),
                WireFault::QueueFull { depth, limit } => {
                    w.u8(STATUS_QUEUE_FULL);
                    w.u64(*depth);
                    w.u64(*limit);
                }
                WireFault::SnapshotMissing {
                    benchmark,
                    fingerprint,
                } => {
                    w.u8(STATUS_SNAPSHOT_MISSING);
                    w.u8(tag_in(&BenchmarkKind::ALL, *benchmark));
                    w.u64(*fingerprint);
                }
                WireFault::ModelMissing {
                    benchmark,
                    estimator,
                    fingerprint,
                } => {
                    w.u8(STATUS_MODEL_MISSING);
                    w.u8(tag_in(&BenchmarkKind::ALL, *benchmark));
                    w.u8(tag_in(&EstimatorKind::ALL, *estimator));
                    w.u64(*fingerprint);
                }
                WireFault::DeadlineExceeded {
                    elapsed_us,
                    deadline_us,
                } => {
                    w.u8(STATUS_DEADLINE_EXCEEDED);
                    w.u64(*elapsed_us);
                    w.u64(*deadline_us);
                }
                WireFault::Store { message } => {
                    w.u8(STATUS_STORE);
                    w.string(message)?;
                }
                WireFault::BadRequest { message } => {
                    w.u8(STATUS_BAD_REQUEST);
                    w.string(message)?;
                }
                WireFault::NotOwner { owner } => {
                    w.u8(STATUS_NOT_OWNER);
                    w.string(owner)?;
                }
            }
            Ok(())
        }
    }
}

fn read_response_payload(r: &mut Reader<'_>, request_id: u64) -> Result<WireResponse, WireError> {
    let status = r.u8()?;
    let outcome = match status {
        STATUS_OK => {
            let cost_ms = r.f64()?;
            let batch_size = r.u32()?;
            let bits = r.u8()?;
            if bits >> ESTIMATE_BITS != 0 {
                return Err(WireError::UnknownTag {
                    what: "estimate-bits",
                    tag: bits,
                });
            }
            let benchmark = tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?;
            let estimator = tag_out(&EstimatorKind::ALL, r.u8()?, "estimator")?;
            let fingerprint = r.u64()?;
            let origin = match r.u8()? {
                ORIGIN_TRAINED_HERE => SnapshotOrigin::TrainedHere,
                ORIGIN_TRANSFERRED => SnapshotOrigin::Transferred {
                    source: EnvFingerprint(r.u64()?),
                    distance: r.f64()?,
                },
                ORIGIN_FROM_DISK => SnapshotOrigin::LoadedFromDisk,
                ORIGIN_NONE => SnapshotOrigin::None,
                tag => {
                    return Err(WireError::UnknownTag {
                        what: "snapshot-origin",
                        tag,
                    })
                }
            };
            Ok(WireEstimate {
                cost_ms,
                batch_size,
                encoding_cache_hit: bits & ESTIMATE_CACHE_HIT != 0,
                model_from_disk: bits & ESTIMATE_FROM_DISK != 0,
                refined: bits & ESTIMATE_REFINED != 0,
                cold_start: bits & ESTIMATE_COLD_START != 0,
                benchmark,
                estimator,
                fingerprint,
                origin,
                service_us: r.u64()?,
                total_us: r.u64()?,
            })
        }
        STATUS_SERVICE_CLOSED => Err(WireFault::ServiceClosed),
        STATUS_QUEUE_FULL => Err(WireFault::QueueFull {
            depth: r.u64()?,
            limit: r.u64()?,
        }),
        STATUS_SNAPSHOT_MISSING => Err(WireFault::SnapshotMissing {
            benchmark: tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?,
            fingerprint: r.u64()?,
        }),
        STATUS_MODEL_MISSING => Err(WireFault::ModelMissing {
            benchmark: tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?,
            estimator: tag_out(&EstimatorKind::ALL, r.u8()?, "estimator")?,
            fingerprint: r.u64()?,
        }),
        STATUS_DEADLINE_EXCEEDED => Err(WireFault::DeadlineExceeded {
            elapsed_us: r.u64()?,
            deadline_us: r.u64()?,
        }),
        STATUS_STORE => Err(WireFault::Store {
            message: r.string()?,
        }),
        STATUS_BAD_REQUEST => Err(WireFault::BadRequest {
            message: r.string()?,
        }),
        STATUS_NOT_OWNER => Err(WireFault::NotOwner { owner: r.string()? }),
        tag => {
            return Err(WireError::UnknownTag {
                what: "response-status",
                tag,
            })
        }
    };
    Ok(WireResponse {
        request_id,
        outcome,
    })
}

// ---------------------------------------------------------------------------
// Replication (ship) payloads.
// ---------------------------------------------------------------------------

fn write_ship_snapshot_payload(w: &mut Writer, ship: &WireShipSnapshot) -> Result<(), WireError> {
    w.u8(tag_in(&BenchmarkKind::ALL, ship.benchmark));
    w.u64(ship.fingerprint);
    w.list_len("knob-vector", ship.knobs.len())?;
    for &knob in &ship.knobs {
        w.f64(knob);
    }
    w.blob(&ship.snapshot)
}

fn read_ship_snapshot_payload(
    r: &mut Reader<'_>,
    request_id: u64,
) -> Result<WireShipSnapshot, WireError> {
    let benchmark = tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?;
    let fingerprint = r.u64()?;
    let knob_count = r.list_len("knob-vector")?;
    let mut knobs = Vec::with_capacity(knob_count);
    for _ in 0..knob_count {
        knobs.push(r.f64()?);
    }
    let snapshot = r.blob()?;
    Ok(WireShipSnapshot {
        request_id,
        benchmark,
        fingerprint,
        knobs,
        snapshot,
    })
}

fn write_ship_model_payload(w: &mut Writer, ship: &WireShipModel) -> Result<(), WireError> {
    w.u8(tag_in(&BenchmarkKind::ALL, ship.benchmark));
    w.u8(tag_in(&EstimatorKind::ALL, ship.estimator));
    w.u64(ship.fingerprint);
    w.blob(&ship.weights)
}

fn read_ship_model_payload(
    r: &mut Reader<'_>,
    request_id: u64,
) -> Result<WireShipModel, WireError> {
    Ok(WireShipModel {
        request_id,
        benchmark: tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?,
        estimator: tag_out(&EstimatorKind::ALL, r.u8()?, "estimator")?,
        fingerprint: r.u64()?,
        weights: r.blob()?,
    })
}

fn write_ship_ack_payload(w: &mut Writer, ack: &WireShipAck) -> Result<(), WireError> {
    w.u8(ack.accepted as u8);
    w.string(&ack.message)
}

fn read_ship_ack_payload(r: &mut Reader<'_>, request_id: u64) -> Result<WireShipAck, WireError> {
    let accepted = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(WireError::UnknownTag {
                what: "ship-ack-accepted",
                tag,
            })
        }
    };
    Ok(WireShipAck {
        request_id,
        accepted,
        message: r.string()?,
    })
}

// ---------------------------------------------------------------------------
// Manifest (anti-entropy) payloads.
// ---------------------------------------------------------------------------

/// Wire tag of a snapshot manifest entry.
const MANIFEST_ENTRY_SNAPSHOT: u8 = 1;
/// Wire tag of a model manifest entry.
const MANIFEST_ENTRY_MODEL: u8 = 2;

fn write_manifest_entry(w: &mut Writer, entry: &WireManifestEntry) {
    match *entry {
        WireManifestEntry::Snapshot {
            benchmark,
            fingerprint,
            crc,
        } => {
            w.u8(MANIFEST_ENTRY_SNAPSHOT);
            w.u8(tag_in(&BenchmarkKind::ALL, benchmark));
            w.u64(fingerprint);
            w.u32(crc);
        }
        WireManifestEntry::Model {
            benchmark,
            estimator,
            fingerprint,
            crc,
        } => {
            w.u8(MANIFEST_ENTRY_MODEL);
            w.u8(tag_in(&BenchmarkKind::ALL, benchmark));
            w.u8(tag_in(&EstimatorKind::ALL, estimator));
            w.u64(fingerprint);
            w.u32(crc);
        }
    }
}

fn read_manifest_entry(r: &mut Reader<'_>) -> Result<WireManifestEntry, WireError> {
    match r.u8()? {
        MANIFEST_ENTRY_SNAPSHOT => Ok(WireManifestEntry::Snapshot {
            benchmark: tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?,
            fingerprint: r.u64()?,
            crc: r.u32()?,
        }),
        MANIFEST_ENTRY_MODEL => Ok(WireManifestEntry::Model {
            benchmark: tag_out(&BenchmarkKind::ALL, r.u8()?, "benchmark")?,
            estimator: tag_out(&EstimatorKind::ALL, r.u8()?, "estimator")?,
            fingerprint: r.u64()?,
            crc: r.u32()?,
        }),
        tag => Err(WireError::UnknownTag {
            what: "manifest-entry-kind",
            tag,
        }),
    }
}

fn write_manifest_reply_payload(
    w: &mut Writer,
    reply: &WireManifestReply,
) -> Result<(), WireError> {
    // Manifests enumerate a whole store, so their count carries its own
    // cap rather than the per-field MAX_LIST_LEN the generic helper
    // enforces.
    if reply.entries.len() > MAX_MANIFEST_ENTRIES {
        return Err(WireError::ListTooLong {
            what: "manifest-entries",
            len: reply.entries.len(),
            max: MAX_MANIFEST_ENTRIES,
        });
    }
    w.u32(reply.entries.len() as u32);
    for entry in &reply.entries {
        write_manifest_entry(w, entry);
    }
    Ok(())
}

fn read_manifest_reply_payload(
    r: &mut Reader<'_>,
    request_id: u64,
) -> Result<WireManifestReply, WireError> {
    let count = r.u32()? as usize;
    if count > MAX_MANIFEST_ENTRIES {
        return Err(WireError::ListTooLong {
            what: "manifest-entries",
            len: count,
            max: MAX_MANIFEST_ENTRIES,
        });
    }
    // Each entry is at least 14 bytes; a count the remaining bytes cannot
    // possibly hold is truncation, caught before the allocation.
    if r.remaining() < count * 14 {
        return Err(WireError::Truncated);
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        entries.push(read_manifest_entry(r)?);
    }
    Ok(WireManifestReply {
        request_id,
        entries,
    })
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

fn frame(kind: u8, request_id: u64, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    let body_len = BODY_HEADER_LEN + payload.len();
    if body_len > MAX_BODY_LEN {
        return Err(WireError::FrameTooLarge {
            len: body_len,
            max: MAX_BODY_LEN,
        });
    }
    let mut out = Vec::with_capacity(PRELUDE_LEN + body_len);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0, 0, 0, 0]); // CRC placeholder
    out.push(kind);
    out.push(0); // flags (v1: none)
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[PRELUDE_LEN..]);
    out[12..16].copy_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Encode one request frame.
pub fn encode_request(request: &WireRequest) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_request_payload(&mut w, request)?;
    frame(FRAME_REQUEST, request.request_id, &w.buf)
}

/// Encode one response frame.
pub fn encode_response(response: &WireResponse) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_response_payload(&mut w, response)?;
    frame(FRAME_RESPONSE, response.request_id, &w.buf)
}

/// Encode one ship-snapshot frame.
pub fn encode_ship_snapshot(ship: &WireShipSnapshot) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_ship_snapshot_payload(&mut w, ship)?;
    frame(FRAME_SHIP_SNAPSHOT, ship.request_id, &w.buf)
}

/// Encode one ship-model frame.
pub fn encode_ship_model(ship: &WireShipModel) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_ship_model_payload(&mut w, ship)?;
    frame(FRAME_SHIP_MODEL, ship.request_id, &w.buf)
}

/// Encode one ship-acknowledgement frame.
pub fn encode_ship_ack(ack: &WireShipAck) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_ship_ack_payload(&mut w, ack)?;
    frame(FRAME_SHIP_ACK, ack.request_id, &w.buf)
}

/// Encode one manifest-request frame (empty payload).
pub fn encode_manifest_request(request: &WireManifestRequest) -> Result<Vec<u8>, WireError> {
    frame(FRAME_MANIFEST_REQUEST, request.request_id, &[])
}

/// Encode one manifest-reply frame.
pub fn encode_manifest_reply(reply: &WireManifestReply) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    write_manifest_reply_payload(&mut w, reply)?;
    frame(FRAME_MANIFEST_REPLY, reply.request_id, &w.buf)
}

/// Incremental frame delimiting for stream readers: given the bytes
/// buffered so far (starting at a frame boundary), return the total frame
/// length once the prelude declares it, `None` while more bytes are
/// needed, or the typed error as soon as the prefix is provably invalid —
/// bad magic, wrong version and oversized bodies are rejected from the
/// first bytes, before any payload is buffered for them.
pub fn frame_length(buf: &[u8]) -> Result<Option<usize>, WireError> {
    let seen = buf.len().min(4);
    if buf[..seen] != WIRE_MAGIC[..seen] {
        let mut magic = [0u8; 4];
        magic[..seen].copy_from_slice(&buf[..seen]);
        return Err(WireError::BadMagic(magic));
    }
    if buf.len() < 8 {
        return Ok(None);
    }
    let version = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    if buf.len() < PRELUDE_LEN {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]) as usize;
    if body_len > MAX_BODY_LEN {
        return Err(WireError::FrameTooLarge {
            len: body_len,
            max: MAX_BODY_LEN,
        });
    }
    if body_len < BODY_HEADER_LEN {
        return Err(WireError::BodyTooShort(body_len));
    }
    if buf.len() < PRELUDE_LEN + body_len {
        return Ok(None);
    }
    Ok(Some(PRELUDE_LEN + body_len))
}

/// Decode one complete frame (exactly one: trailing bytes are an error).
/// Verifies magic, version, length, CRC and flags, then decodes the
/// kind-specific payload with full bounds checking.
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let total = frame_length(bytes)?.ok_or(WireError::Truncated)?;
    if bytes.len() > total {
        return Err(WireError::TrailingBytes(bytes.len() - total));
    }
    let body = &bytes[PRELUDE_LEN..total];
    let expected = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    let actual = crc32(body);
    if expected != actual {
        return Err(WireError::Checksum { expected, actual });
    }
    let mut r = Reader::new(body);
    let kind = r.u8()?;
    let flags = r.u8()?;
    if flags != 0 {
        return Err(WireError::UnknownFlags(flags));
    }
    let request_id = r.u64()?;
    let frame = match kind {
        FRAME_REQUEST => Frame::Request(Box::new(read_request_payload(&mut r, request_id)?)),
        FRAME_RESPONSE => Frame::Response(read_response_payload(&mut r, request_id)?),
        FRAME_SHIP_SNAPSHOT => {
            Frame::ShipSnapshot(Box::new(read_ship_snapshot_payload(&mut r, request_id)?))
        }
        FRAME_SHIP_MODEL => {
            Frame::ShipModel(Box::new(read_ship_model_payload(&mut r, request_id)?))
        }
        FRAME_SHIP_ACK => Frame::ShipAck(read_ship_ack_payload(&mut r, request_id)?),
        FRAME_MANIFEST_REQUEST => Frame::ManifestRequest(WireManifestRequest { request_id }),
        FRAME_MANIFEST_REPLY => {
            Frame::ManifestReply(read_manifest_reply_payload(&mut r, request_id)?)
        }
        kind => return Err(WireError::UnknownFrameKind(kind)),
    };
    r.finish()?;
    Ok(frame)
}

/// Best-effort peek at a frame's request id without validating the body:
/// used to correlate an error response to a frame whose payload failed to
/// decode. Returns `None` when even the body header is missing or the
/// checksum fails (an untrustworthy id is worse than none).
pub fn peek_request_id(bytes: &[u8]) -> Option<u64> {
    let total = frame_length(bytes).ok().flatten()?;
    let body = &bytes[PRELUDE_LEN..total];
    let expected = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
    if crc32(body) != expected {
        return None;
    }
    Some(u64::from_le_bytes([
        body[2], body[3], body[4], body[5], body[6], body[7], body[8], body[9],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::plan::PhysicalOp;

    fn request(id: u64) -> WireRequest {
        let mut plan = PlanNode::new(
            PhysicalOp::HashJoin {
                condition: JoinCondition {
                    left: ColumnRef {
                        table: "a".into(),
                        column: "id".into(),
                    },
                    right: ColumnRef {
                        table: "b".into(),
                        column: "a_id".into(),
                    },
                },
            },
            vec![
                PlanNode::new(PhysicalOp::SeqScan { table: "a".into() }, vec![]),
                PlanNode::new(
                    PhysicalOp::IndexScan {
                        table: "b".into(),
                        column: "a_id".into(),
                    },
                    vec![],
                ),
            ],
        );
        plan.est_rows = 123.5;
        plan.est_cost = 77.25;
        plan.predicates = vec![Predicate::Compare {
            column: ColumnRef {
                table: "a".into(),
                column: "v".into(),
            },
            op: CompareOp::Le,
            value: Value::Float(0.5),
        }];
        WireRequest {
            request_id: id,
            benchmark: BenchmarkKind::Sysbench,
            estimator: EstimatorKind::QcfeMscn,
            allow_transfer: true,
            shed_load: false,
            deadline_us: Some(250_000),
            tenant: 0,
            environment: DbEnvironment::reference(),
            plan,
        }
    }

    #[test]
    fn request_round_trips_exactly() {
        let original = request(42);
        let bytes = encode_request(&original).unwrap();
        assert_eq!(frame_length(&bytes).unwrap(), Some(bytes.len()));
        match decode_frame(&bytes).unwrap() {
            Frame::Request(decoded) => assert_eq!(*decoded, original),
            other => panic!("wrong frame kind: {other:?}"),
        }
    }

    #[test]
    fn response_round_trips_exactly() {
        let response = WireResponse {
            request_id: 7,
            outcome: Ok(WireEstimate {
                cost_ms: 1.25e-3,
                batch_size: 9,
                encoding_cache_hit: true,
                model_from_disk: true,
                refined: false,
                cold_start: true,
                benchmark: BenchmarkKind::Tpch,
                estimator: EstimatorKind::QcfeQpp,
                fingerprint: 0xdead_beef_f00d_cafe,
                origin: SnapshotOrigin::Transferred {
                    source: EnvFingerprint(99),
                    distance: 0.125,
                },
                service_us: 1500,
                total_us: 1800,
            }),
        };
        let bytes = encode_response(&response).unwrap();
        match decode_frame(&bytes).unwrap() {
            Frame::Response(decoded) => assert_eq!(decoded, response),
            other => panic!("wrong frame kind: {other:?}"),
        }
    }

    #[test]
    fn every_fault_variant_round_trips() {
        let faults = [
            WireFault::ServiceClosed,
            WireFault::QueueFull {
                depth: 256,
                limit: 256,
            },
            WireFault::SnapshotMissing {
                benchmark: BenchmarkKind::JobLight,
                fingerprint: 3,
            },
            WireFault::ModelMissing {
                benchmark: BenchmarkKind::Tpch,
                estimator: EstimatorKind::Pgsql,
                fingerprint: 4,
            },
            WireFault::DeadlineExceeded {
                elapsed_us: 1500,
                deadline_us: 1000,
            },
            WireFault::Store {
                message: "disk gone".into(),
            },
            WireFault::BadRequest {
                message: "unknown benchmark tag 9".into(),
            },
        ];
        for fault in faults {
            let response = WireResponse {
                request_id: 11,
                outcome: Err(fault.clone()),
            };
            let bytes = encode_response(&response).unwrap();
            match decode_frame(&bytes).unwrap() {
                Frame::Response(decoded) => assert_eq!(decoded.outcome, Err(fault)),
                other => panic!("wrong frame kind: {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_reject_from_the_first_bytes() {
        let bytes = encode_request(&request(1)).unwrap();
        let mut flipped = bytes.clone();
        flipped[0] ^= 0xff;
        assert!(matches!(
            frame_length(&flipped[..2]),
            Err(WireError::BadMagic(_))
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xfe;
        assert!(matches!(
            frame_length(&wrong_version[..8]),
            Err(WireError::UnsupportedVersion(_))
        ));
        let mut oversized = bytes;
        oversized[8..12].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            frame_length(&oversized),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn nonzero_flags_reject() {
        let mut bytes = encode_request(&request(1)).unwrap();
        bytes[PRELUDE_LEN + 1] = 0x80;
        // Re-seal the CRC so the flags check (not the checksum) fires.
        let crc = crc32(&bytes[PRELUDE_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::UnknownFlags(0x80)));
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let mut bytes = encode_request(&request(1)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Checksum { .. })
        ));
    }

    #[test]
    fn truncation_is_incomplete_not_an_error() {
        let bytes = encode_request(&request(1)).unwrap();
        for cut in [0, 3, 8, PRELUDE_LEN, bytes.len() - 1] {
            assert_eq!(
                frame_length(&bytes[..cut]).unwrap(),
                None,
                "cut at {cut} must read as incomplete"
            );
        }
        assert_eq!(
            decode_frame(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn oversized_deadlines_reject_on_both_ends() {
        let mut hostile = request(1);
        hostile.deadline_us = Some(MAX_DEADLINE_US + 1);
        assert!(matches!(
            encode_request(&hostile),
            Err(WireError::DeadlineOutOfRange { .. })
        ));
        // Hand-craft the frame a compliant encoder refuses to build: patch
        // the deadline field post-encode and re-seal the CRC, simulating a
        // hostile client.
        let mut legit = request(1);
        legit.deadline_us = Some(1);
        let mut bytes = encode_request(&legit).unwrap();
        // deadline micros live right after kind+flags+id+benchmark+
        // estimator+options+presence in the body
        let offset = PRELUDE_LEN + BODY_HEADER_LEN + 4;
        bytes[offset..offset + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let crc = crc32(&bytes[PRELUDE_LEN..]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::DeadlineOutOfRange {
                micros: u64::MAX,
                max: MAX_DEADLINE_US
            })
        );
    }

    #[test]
    fn tenant_tag_round_trips_and_anonymous_frames_stay_pre_tenant() {
        // A tenanted request spends the option bit, carries the u32 id and
        // round-trips exactly.
        let mut tenanted = request(7);
        tenanted.tenant = 42;
        let bytes = encode_request(&tenanted).unwrap();
        match decode_frame(&bytes).unwrap() {
            Frame::Request(decoded) => assert_eq!(*decoded, tenanted),
            other => panic!("wrong frame kind: {other:?}"),
        }

        // The anonymous tenant emits no tenant bytes at all: the frame is
        // byte-identical to one built before the tag existed, so old
        // decoders keep accepting anonymous traffic.
        let anonymous = request(7);
        let anon_bytes = encode_request(&anonymous).unwrap();
        assert_eq!(anon_bytes.len() + 4, bytes.len(), "tenant costs 4 bytes");
        let options_offset = PRELUDE_LEN + BODY_HEADER_LEN + 2;
        assert_eq!(anon_bytes[options_offset] & (1 << 2), 0);
        assert_eq!(bytes[options_offset] & (1 << 2), 1 << 2);

        // Strict rejection: the tenant bit set while carrying the reserved
        // anonymous id 0 is a frame no compliant encoder builds.
        let mut hostile = anon_bytes.clone();
        hostile[options_offset] |= 1 << 2;
        // Splice four zero bytes in after the deadline field and re-seal
        // length + CRC, simulating a hostile encoder.
        let tenant_offset = PRELUDE_LEN + BODY_HEADER_LEN + 4 + 8;
        hostile.splice(tenant_offset..tenant_offset, [0u8; 4]);
        let body_len = (hostile.len() - PRELUDE_LEN) as u32;
        hostile[8..12].copy_from_slice(&body_len.to_le_bytes());
        let crc = crc32(&hostile[PRELUDE_LEN..]);
        hostile[12..16].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            decode_frame(&hostile),
            Err(WireError::UnknownTag {
                what: "tenant-tag",
                tag: 0
            })
        );
    }

    #[test]
    fn estimate_request_conversion_round_trips() {
        let env = DbEnvironment::reference();
        let original = EstimateRequest::new(
            BenchmarkKind::Tpch,
            env,
            PlanNode::new(PhysicalOp::Materialize, vec![]),
        )
        .with_deadline(Duration::from_millis(30))
        .with_tenant(TenantId(9));
        let wire = WireRequest::from_estimate_request(5, &original).unwrap();
        let back = wire.clone().into_estimate_request();
        assert_eq!(back.benchmark, original.benchmark);
        assert_eq!(back.deadline, original.deadline);
        assert_eq!(back.options, original.options);
        assert_eq!(back.plan, original.plan);
        assert_eq!(*back.environment, *original.environment);
        assert_eq!(
            back.environment.fingerprint(),
            original.environment.fingerprint(),
            "the decoded environment must route to the same shard"
        );
    }

    #[test]
    fn peek_request_id_reads_sealed_frames_only() {
        let bytes = encode_request(&request(0x0102_0304_0506_0708)).unwrap();
        assert_eq!(peek_request_id(&bytes), Some(0x0102_0304_0506_0708));
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xff;
        assert_eq!(peek_request_id(&corrupt), None, "untrusted id is withheld");
        assert_eq!(peek_request_id(&bytes[..10]), None);
    }

    #[test]
    fn manifest_frames_round_trip_exactly() {
        let request = WireManifestRequest { request_id: 42 };
        let bytes = encode_manifest_request(&request).unwrap();
        assert_eq!(
            decode_frame(&bytes).unwrap(),
            Frame::ManifestRequest(request)
        );

        let reply = WireManifestReply {
            request_id: 43,
            entries: vec![
                WireManifestEntry::Snapshot {
                    benchmark: BenchmarkKind::Sysbench,
                    fingerprint: 0xdead_beef_cafe_f00d,
                    crc: 0x1234_5678,
                },
                WireManifestEntry::Model {
                    benchmark: BenchmarkKind::Tpch,
                    estimator: EstimatorKind::QcfeMscn,
                    fingerprint: 7,
                    crc: 0,
                },
            ],
        };
        let bytes = encode_manifest_reply(&reply).unwrap();
        match decode_frame(&bytes).unwrap() {
            Frame::ManifestReply(decoded) => assert_eq!(decoded, reply),
            other => panic!("expected manifest reply, got {other:?}"),
        }
        // Empty manifests (a freshly revived peer with a wiped store) are
        // legal, not an error.
        let empty = WireManifestReply {
            request_id: 44,
            entries: Vec::new(),
        };
        let bytes = encode_manifest_reply(&empty).unwrap();
        match decode_frame(&bytes).unwrap() {
            Frame::ManifestReply(decoded) => assert_eq!(decoded, empty),
            other => panic!("expected manifest reply, got {other:?}"),
        }
    }

    #[test]
    fn manifest_corruption_rejects_typed() {
        // A manifest request carries trailing garbage: rejected.
        let sealed = frame(FRAME_MANIFEST_REQUEST, 9, &[0xAA]).unwrap();
        assert_eq!(
            decode_frame(&sealed),
            Err(WireError::TrailingBytes(1)),
            "a manifest request's payload must be empty"
        );
        // An unknown entry-kind tag rejects typed. The body is padded to
        // one full entry width so the pre-allocation truncation guard
        // passes and the tag itself is what gets judged.
        let mut w = Writer::new();
        w.u32(1);
        w.u8(9); // neither snapshot (1) nor model (2)
        w.buf.extend_from_slice(&[0u8; 13]);
        let sealed = frame(FRAME_MANIFEST_REPLY, 9, &w.buf).unwrap();
        assert_eq!(
            decode_frame(&sealed),
            Err(WireError::UnknownTag {
                what: "manifest-entry-kind",
                tag: 9
            })
        );
        // A count the body cannot hold is truncation, before allocation.
        let mut w = Writer::new();
        w.u32(1000);
        let sealed = frame(FRAME_MANIFEST_REPLY, 9, &w.buf).unwrap();
        assert_eq!(decode_frame(&sealed), Err(WireError::Truncated));
        // A count above the cap rejects typed on both ends.
        let mut w = Writer::new();
        w.u32((MAX_MANIFEST_ENTRIES + 1) as u32);
        let sealed = frame(FRAME_MANIFEST_REPLY, 9, &w.buf).unwrap();
        assert_eq!(
            decode_frame(&sealed),
            Err(WireError::ListTooLong {
                what: "manifest-entries",
                len: MAX_MANIFEST_ENTRIES + 1,
                max: MAX_MANIFEST_ENTRIES,
            })
        );
        let oversized = WireManifestReply {
            request_id: 9,
            entries: vec![
                WireManifestEntry::Snapshot {
                    benchmark: BenchmarkKind::Sysbench,
                    fingerprint: 0,
                    crc: 0,
                };
                MAX_MANIFEST_ENTRIES + 1
            ],
        };
        assert_eq!(
            encode_manifest_reply(&oversized),
            Err(WireError::ListTooLong {
                what: "manifest-entries",
                len: MAX_MANIFEST_ENTRIES + 1,
                max: MAX_MANIFEST_ENTRIES,
            })
        );
    }
}

//! Feature reduction (Section IV of the paper).
//!
//! Three methods are implemented against the same interface (a trained MLP
//! cost model plus its labeled operator dataset):
//!
//! * [`greedy_reduction`] — Algorithm 2: repeatedly drop the single feature
//!   whose removal lowers the mean q-error, until no drop helps (O(n²)
//!   model evaluations, and blind to feature co-relationships);
//! * [`gradient_reduction`] — the GD baseline: keep features whose average
//!   absolute input gradient is non-zero; suffers from one-hot dimensions
//!   and ReLU gradient vanishing exactly as the paper describes;
//! * [`diffprop_reduction`] — Algorithm 3 + Equation 1: the
//!   difference-propagation importance score computed against a sampled
//!   reference set, which handles discrete inputs and dead ReLUs.

use crate::metrics;
use qcfe_nn::{Dataset, Mlp};
use rand::Rng;
use std::time::Instant;

/// Which feature-reduction strategy to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReductionMethod {
    /// Keep every feature.
    None,
    /// Approximate greedy search (Algorithm 2).
    Greedy,
    /// Gradient-based importance (the GD baseline).
    Gradient,
    /// Difference propagation (Algorithm 3, the paper's FR).
    DiffProp,
}

impl ReductionMethod {
    /// All methods, in the order used by the ablation figures.
    pub const ALL: [ReductionMethod; 4] = [
        ReductionMethod::None,
        ReductionMethod::Greedy,
        ReductionMethod::Gradient,
        ReductionMethod::DiffProp,
    ];

    /// Display name matching the paper's figure legends.
    pub fn name(&self) -> &'static str {
        match self {
            ReductionMethod::None => "none",
            ReductionMethod::Greedy => "Greedy",
            ReductionMethod::Gradient => "GD",
            ReductionMethod::DiffProp => "FR",
        }
    }
}

/// Outcome of running one reduction method.
#[derive(Debug, Clone, PartialEq)]
pub struct ReductionOutcome {
    /// Indices of the features to keep, in ascending order.
    pub kept: Vec<usize>,
    /// Importance score per original feature (semantics depend on the
    /// method; for Greedy it is 1.0 for kept features and 0.0 for dropped).
    pub scores: Vec<f64>,
    /// Wall-clock runtime of the reduction, in milliseconds.
    pub runtime_ms: f64,
    /// Total number of original features.
    pub original_dim: usize,
}

impl ReductionOutcome {
    /// Fraction of features removed.
    pub fn reduction_ratio(&self) -> f64 {
        if self.original_dim == 0 {
            return 0.0;
        }
        1.0 - self.kept.len() as f64 / self.original_dim as f64
    }

    /// Number of features removed.
    pub fn removed_count(&self) -> usize {
        self.original_dim - self.kept.len()
    }
}

/// An outcome that keeps everything (the `None` method).
pub fn keep_all(dim: usize) -> ReductionOutcome {
    ReductionOutcome {
        kept: (0..dim).collect(),
        scores: vec![1.0; dim],
        runtime_ms: 0.0,
        original_dim: dim,
    }
}

/// Dispatch a reduction method.
pub fn reduce<R: Rng + ?Sized>(
    method: ReductionMethod,
    model: &Mlp,
    data: &Dataset,
    reference_count: usize,
    rng: &mut R,
) -> ReductionOutcome {
    match method {
        ReductionMethod::None => keep_all(data.dim()),
        ReductionMethod::Greedy => greedy_reduction(model, data),
        ReductionMethod::Gradient => gradient_reduction(model, data),
        ReductionMethod::DiffProp => diffprop_reduction(model, data, reference_count, rng),
    }
}

/// Mean q-error of the model on the dataset with the features listed in
/// `zeroed` masked to zero (the "D.X.reduce(f)" of Algorithm 2).
fn masked_q_error(model: &Mlp, data: &Dataset, zeroed: &[usize]) -> f64 {
    let mut qs = Vec::with_capacity(data.len());
    let mut buffer = vec![0.0; data.dim()];
    for (x, y) in data.features().iter().zip(data.targets()) {
        buffer.copy_from_slice(x);
        for &z in zeroed {
            buffer[z] = 0.0;
        }
        let pred = model.predict_one(&buffer).max(1e-6);
        qs.push(metrics::q_error(*y, pred));
    }
    metrics::mean(&qs)
}

/// Algorithm 2: the approximate greedy feature reduction.
pub fn greedy_reduction(model: &Mlp, data: &Dataset) -> ReductionOutcome {
    let start = Instant::now();
    let dim = data.dim();
    let mut dropped: Vec<usize> = Vec::new();
    let mut best = masked_q_error(model, data, &dropped);

    loop {
        let mut best_candidate: Option<(usize, f64)> = None;
        for f in 0..dim {
            if dropped.contains(&f) {
                continue;
            }
            let mut trial = dropped.clone();
            trial.push(f);
            let q = masked_q_error(model, data, &trial);
            if q < best && best_candidate.map(|(_, bq)| q < bq).unwrap_or(true) {
                best_candidate = Some((f, q));
            }
        }
        match best_candidate {
            Some((f, q)) => {
                dropped.push(f);
                best = q;
            }
            None => break,
        }
    }

    let kept: Vec<usize> = (0..dim).filter(|f| !dropped.contains(f)).collect();
    let scores = (0..dim)
        .map(|f| if dropped.contains(&f) { 0.0 } else { 1.0 })
        .collect();
    ReductionOutcome {
        kept,
        scores,
        runtime_ms: start.elapsed().as_secs_f64() * 1000.0,
        original_dim: dim,
    }
}

/// The gradient (GD) baseline: average absolute input gradient per feature.
pub fn gradient_reduction(model: &Mlp, data: &Dataset) -> ReductionOutcome {
    let start = Instant::now();
    let dim = data.dim();
    let mut scores = vec![0.0; dim];
    for x in data.features() {
        let g = model.input_gradient(x);
        for (s, gi) in scores.iter_mut().zip(&g) {
            *s += gi.abs();
        }
    }
    let n = data.len().max(1) as f64;
    for s in &mut scores {
        *s /= n;
    }
    let max_score = scores.iter().cloned().fold(0.0_f64, f64::max);
    let threshold = max_score * 1e-6;
    let kept: Vec<usize> = (0..dim).filter(|&f| scores[f] > threshold).collect();
    let kept = if kept.is_empty() {
        (0..dim).collect()
    } else {
        kept
    };
    ReductionOutcome {
        kept,
        scores,
        runtime_ms: start.elapsed().as_secs_f64() * 1000.0,
        original_dim: dim,
    }
}

/// Algorithm 3: difference-propagation feature reduction.
///
/// For each labelled point `x_i` and reference point `x_j`, Equation 1
/// scores dimension `k` as the summed per-hidden-unit product
/// `(ΔM/Δh) · (Δh/Δx_k)`; units whose activation does not change contribute
/// nothing (which is what rescues dead-ReLU and one-hot dimensions). The
/// expectation over pairs is the importance score, and features with a
/// (relatively) non-zero score are kept.
pub fn diffprop_reduction<R: Rng + ?Sized>(
    model: &Mlp,
    data: &Dataset,
    reference_count: usize,
    rng: &mut R,
) -> ReductionOutcome {
    let start = Instant::now();
    let dim = data.dim();
    let reference = data.subsample(reference_count.max(1), rng);

    // Pre-compute outputs and first-hidden activations for both sets.
    let d_out: Vec<f64> = data
        .features()
        .iter()
        .map(|x| model.predict_one(x))
        .collect();
    let d_hidden: Vec<Vec<f64>> = data
        .features()
        .iter()
        .map(|x| model.first_hidden_activations(x))
        .collect();
    let r_out: Vec<f64> = reference
        .features()
        .iter()
        .map(|x| model.predict_one(x))
        .collect();
    let r_hidden: Vec<Vec<f64>> = reference
        .features()
        .iter()
        .map(|x| model.first_hidden_activations(x))
        .collect();

    let mut scores = vec![0.0; dim];
    let mut pair_count = 0u64;
    for (i, xi) in data.features().iter().enumerate() {
        for (j, xj) in reference.features().iter().enumerate() {
            let delta_m = d_out[i] - r_out[j];
            // Number of first-hidden units whose activation differs between
            // the two points; each contributes one (ΔM/Δh)·(Δh/Δx_k) term,
            // and the terms telescope to ΔM/Δx_k per active unit.
            let active_units = d_hidden[i]
                .iter()
                .zip(&r_hidden[j])
                .filter(|(a, b)| (*a - *b).abs() > 1e-12)
                .count() as f64;
            if active_units == 0.0 {
                pair_count += 1;
                continue;
            }
            for k in 0..dim {
                let dx = xi[k] - xj[k];
                if dx.abs() > 1e-12 {
                    scores[k] += (active_units * delta_m / dx).abs();
                }
            }
            pair_count += 1;
        }
    }
    if pair_count > 0 {
        for s in &mut scores {
            *s /= pair_count as f64;
        }
    }

    let max_score = scores.iter().cloned().fold(0.0_f64, f64::max);
    let threshold = max_score * 1e-6;
    let kept: Vec<usize> = (0..dim).filter(|&f| scores[f] > threshold).collect();
    let kept = if kept.is_empty() {
        (0..dim).collect()
    } else {
        kept
    };
    ReductionOutcome {
        kept,
        scores,
        runtime_ms: start.elapsed().as_secs_f64() * 1000.0,
        original_dim: dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_nn::{Activation, Loss, Optimizer, TrainConfig};
    use rand::SeedableRng;

    /// Dataset where the target depends only on features 0 and 1; features
    /// 2 and 3 are pure noise / constant.
    fn synthetic() -> (Mlp, Dataset, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 20) % 20) as f64 / 20.0;
            let noise = if i % 2 == 0 { 1.0 } else { 0.0 };
            let constant = 0.5;
            xs.push(vec![a, b, noise, constant]);
            ys.push(3.0 * a + 7.0 * b + 0.5);
        }
        let data = Dataset::new(xs, ys).unwrap();
        let mut mlp = Mlp::new(&[4, 16, 1], Activation::Relu, &mut rng);
        let cfg = TrainConfig {
            epochs: 300,
            batch_size: 32,
            optimizer: Optimizer::adam(0.01),
            loss: Loss::Mse,
            shuffle: true,
        };
        mlp.train(&data, &cfg, &mut rng);
        (mlp, data, rng)
    }

    #[test]
    fn keep_all_keeps_everything() {
        let out = keep_all(5);
        assert_eq!(out.kept, vec![0, 1, 2, 3, 4]);
        assert_eq!(out.reduction_ratio(), 0.0);
        assert_eq!(out.removed_count(), 0);
    }

    #[test]
    fn diffprop_keeps_informative_features_and_drops_constant_ones() {
        let (mlp, data, mut rng) = synthetic();
        let out = diffprop_reduction(&mlp, &data, 50, &mut rng);
        assert!(out.kept.contains(&0), "feature 0 is informative");
        assert!(out.kept.contains(&1), "feature 1 is informative");
        assert!(!out.kept.contains(&3), "constant feature must be dropped");
        assert!(out.runtime_ms >= 0.0);
        assert!(out.reduction_ratio() > 0.0);
        // informative features should score higher than the noise feature
        assert!(out.scores[0] > out.scores[2] * 0.5);
    }

    #[test]
    fn gradient_reduction_drops_constant_feature_but_scores_via_gradients() {
        let (mlp, data, _) = synthetic();
        let out = gradient_reduction(&mlp, &data);
        assert_eq!(out.original_dim, 4);
        assert!(out.kept.contains(&0));
        assert!(out.kept.contains(&1));
        // the constant feature may or may not be dropped by gradients (dead
        // ReLUs can hide it) — but scores must be finite and non-negative
        assert!(out.scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn greedy_reduction_never_increases_q_error() {
        let (mlp, data, _) = synthetic();
        let before = masked_q_error(&mlp, &data, &[]);
        let out = greedy_reduction(&mlp, &data);
        let dropped: Vec<usize> = (0..data.dim()).filter(|f| !out.kept.contains(f)).collect();
        let after = masked_q_error(&mlp, &data, &dropped);
        assert!(
            after <= before + 1e-9,
            "greedy must not hurt training q-error"
        );
        assert!(!out.kept.is_empty());
    }

    #[test]
    fn reduce_dispatches_every_method() {
        let (mlp, data, mut rng) = synthetic();
        for method in ReductionMethod::ALL {
            let out = reduce(method, &mlp, &data, 20, &mut rng);
            assert!(!out.kept.is_empty(), "{method:?}");
            assert_eq!(out.original_dim, data.dim());
            if method == ReductionMethod::None {
                assert_eq!(out.kept.len(), data.dim());
            }
        }
        assert_eq!(ReductionMethod::DiffProp.name(), "FR");
        assert_eq!(ReductionMethod::Gradient.name(), "GD");
    }
}

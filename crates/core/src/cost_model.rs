//! The [`CostModel`] trait: a uniform, thread-safe inference interface over
//! every estimator in the workspace.
//!
//! The experiment pipeline trains concrete estimator types
//! ([`MscnEstimator`], [`QppNetEstimator`], [`PgEstimator`]); the serving
//! layer (`qcfe-serve`) holds *any* of them behind `Arc<dyn CostModel>` and
//! drains its request queue through the **uniform batch API**,
//! [`CostModel::predict_batch`]: one call per drained micro-batch, every
//! model free to exploit the batch shape however it can. MSCN-style models
//! coalesce all encodings into one matrix pass; the QPPNet implementation
//! runs staged operator-grouped batching over the union of all plan trees
//! (see [`QppNetEstimator::predict_batch`]); the analytical baseline simply
//! maps over the batch.
//!
//! Models with a *flat* plan encoding additionally expose it via
//! [`CostModel::encode_plan`] / [`CostModel::predict_encoded`] so the
//! service can memoise encodings in its LRU plan-encoding cache and skip
//! the encoding work for repeated plans.

use crate::estimators::{
    MscnEstimator, PgEstimator, QppNetEstimator, QuantizedMscnEstimator, QuantizedQppNetEstimator,
};
use crate::snapshot::FeatureSnapshot;
use qcfe_db::plan::PlanNode;

/// A trained cost estimator usable from concurrent serving threads.
pub trait CostModel: Send + Sync {
    /// Display name (matches the paper's table labels).
    fn name(&self) -> &'static str;

    /// Predict the latency (ms) of one physical plan.
    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64;

    /// Batched inference over a micro-batch of plans: the uniform entry
    /// point the serving layer drains its queue through. Implementations
    /// must return one prediction per plan, in order, and must agree with
    /// per-plan [`CostModel::predict_plan`] results. The default maps the
    /// scalar path over the batch.
    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        plans
            .iter()
            .map(|p| self.predict_plan(p, snapshot))
            .collect()
    }

    /// Flat feature encoding of a plan, when the model has one (`None` for
    /// tree-structured models). Used by the serving layer to memoise
    /// encodings in its plan-encoding cache.
    fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Option<Vec<f64>> {
        let _ = (root, snapshot);
        None
    }

    /// Batched inference over encodings produced by
    /// [`CostModel::encode_plan`]. The default panics; implementors that
    /// return `Some` encodings must override it.
    fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let _ = rows;
        unreachable!("predict_encoded called on a model without a flat encoding")
    }

    /// Whether [`CostModel::encode_plan`] returns `Some` (i.e. the service
    /// can cache this model's plan encodings). Every model batches through
    /// [`CostModel::predict_batch`] regardless of this flag.
    fn has_flat_encoding(&self) -> bool {
        false
    }
}

impl CostModel for MscnEstimator {
    fn name(&self) -> &'static str {
        "MSCN"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }

    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        MscnEstimator::predict_batch(self, plans, snapshot)
    }

    fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Option<Vec<f64>> {
        let features = self.encoder().encode_plan(root, snapshot);
        Some(self.mask().iter().map(|&i| features[i]).collect())
    }

    fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.model()
            .predict_rows(rows)
            .into_iter()
            .map(|p| p.max(1e-6))
            .collect()
    }

    fn has_flat_encoding(&self) -> bool {
        true
    }
}

impl CostModel for QppNetEstimator {
    fn name(&self) -> &'static str {
        "QPPNet"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }

    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        QppNetEstimator::predict_batch(self, plans, snapshot)
    }
}

impl CostModel for QuantizedMscnEstimator {
    fn name(&self) -> &'static str {
        "MSCN-int8"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }

    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        QuantizedMscnEstimator::predict_batch(self, plans, snapshot)
    }

    fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Option<Vec<f64>> {
        let features = self.encoder().encode_plan(root, snapshot);
        Some(self.mask().iter().map(|&i| features[i]).collect())
    }

    fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        self.model()
            .predict_rows(rows)
            .into_iter()
            .map(|p| p.max(1e-6))
            .collect()
    }

    fn has_flat_encoding(&self) -> bool {
        true
    }
}

impl CostModel for QuantizedQppNetEstimator {
    fn name(&self) -> &'static str {
        "QPPNet-int8"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }

    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        QuantizedQppNetEstimator::predict_batch(self, plans, snapshot)
    }
}

impl CostModel for PgEstimator {
    fn name(&self) -> &'static str {
        "PGSQL"
    }

    fn predict_plan(&self, root: &PlanNode, _snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root)
    }
    // The trait's default predict_batch (map predict_plan over the batch) is
    // already the right batching strategy for the analytical baseline.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_workload;
    use crate::encoding::FeatureEncoder;
    use crate::estimators::EnvSnapshots;
    use crate::snapshot::FeatureSnapshot;
    use qcfe_db::env::{DbEnvironment, HardwareProfile};
    use qcfe_workloads::BenchmarkKind;
    use rand::SeedableRng;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn estimators_are_thread_safe() {
        assert_send_sync::<MscnEstimator>();
        assert_send_sync::<QppNetEstimator>();
        assert_send_sync::<PgEstimator>();
        assert_send_sync::<std::sync::Arc<dyn CostModel>>();
    }

    /// ≥ 100 random plans across two environments, with fitted snapshots.
    fn equivalence_fixture() -> (
        crate::collect::LabeledWorkload,
        EnvSnapshots,
        FeatureEncoder,
    ) {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let envs = DbEnvironment::sample_knob_configs(2, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, 60, 17);
        assert!(
            workload.len() >= 100,
            "need ≥100 plans, got {}",
            workload.len()
        );
        let snapshots: EnvSnapshots = (0..envs.len())
            .map(|env_index| {
                let executions: Vec<_> = workload
                    .for_environment(env_index)
                    .iter()
                    .map(|q| q.executed.clone())
                    .collect();
                Some(FeatureSnapshot::fit_from_executions(&executions))
            })
            .collect();
        let encoder = FeatureEncoder::new(&bench.catalog, true);
        (workload, snapshots, encoder)
    }

    /// Satellite acceptance: `predict_batch` matches per-plan `predict`
    /// within 1e-9 for all three estimators, across ≥100 random plans and
    /// multiple snapshots (fitted per environment, plus `None`).
    #[test]
    fn predict_batch_matches_scalar_for_all_estimators() {
        let (workload, snapshots, encoder) = equivalence_fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (mscn, _) = MscnEstimator::train(
            encoder.clone(),
            &workload,
            Some(&snapshots),
            None,
            8,
            &mut rng,
        );
        let qpp = QppNetEstimator::new(encoder, None, &mut rng);
        let models: Vec<Box<dyn CostModel>> =
            vec![Box::new(PgEstimator), Box::new(mscn), Box::new(qpp)];
        let plans: Vec<&qcfe_db::plan::PlanNode> =
            workload.queries.iter().map(|q| &q.executed.root).collect();

        for model in &models {
            let snapshot_cases: Vec<Option<&FeatureSnapshot>> = std::iter::once(None)
                .chain(snapshots.iter().map(|s| s.as_ref()))
                .collect();
            for snapshot in snapshot_cases {
                let batched = model.predict_batch(&plans, snapshot);
                assert_eq!(batched.len(), plans.len(), "{}", model.name());
                for (plan, b) in plans.iter().zip(&batched) {
                    let single = model.predict_plan(plan, snapshot);
                    assert!(
                        (single - b).abs() <= 1e-9,
                        "{}: batched {b} deviates from scalar {single}",
                        model.name()
                    );
                }
            }
            assert!(model.predict_batch(&[], None).is_empty());
        }
    }

    #[test]
    fn batched_and_encoded_inference_agree_for_mscn() {
        let (workload, _, encoder) = equivalence_fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let (mscn, _) = MscnEstimator::train(encoder, &workload, None, None, 10, &mut rng);

        let model: &dyn CostModel = &mscn;
        assert!(model.has_flat_encoding());
        assert_eq!(model.name(), "MSCN");
        let encodings: Vec<Vec<f64>> = workload
            .queries
            .iter()
            .map(|q| {
                model
                    .encode_plan(&q.executed.root, None)
                    .expect("mscn encodes")
            })
            .collect();
        let encoded = model.predict_encoded(&encodings);
        assert_eq!(encoded.len(), workload.len());
        for (q, b) in workload.queries.iter().zip(&encoded) {
            let single = model.predict_plan(&q.executed.root, None);
            assert!(
                (single - b).abs() < 1e-9,
                "encoded {b} deviates from single {single}"
            );
        }
        assert!(model.predict_encoded(&[]).is_empty());
    }

    #[test]
    fn only_flat_models_advertise_encodings() {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let encoder = FeatureEncoder::new(&bench.catalog, false);
        let qpp = QppNetEstimator::new(encoder, None, &mut rng);
        let model: &dyn CostModel = &qpp;
        assert!(!model.has_flat_encoding());
        assert_eq!(model.name(), "QPPNet");

        let pg: &dyn CostModel = &PgEstimator;
        assert!(!pg.has_flat_encoding());
        let envs = DbEnvironment::sample_knob_configs(1, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, 5, 2);
        for q in &workload.queries {
            assert!(pg.encode_plan(&q.executed.root, None).is_none());
            assert!(pg.predict_plan(&q.executed.root, None) > 0.0);
            assert!(model.predict_plan(&q.executed.root, None) > 0.0);
        }
    }
}

//! The [`CostModel`] trait: a uniform, thread-safe inference interface over
//! every estimator in the workspace.
//!
//! The experiment pipeline trains concrete estimator types
//! ([`MscnEstimator`], [`QppNetEstimator`], [`PgEstimator`]); the serving
//! layer (`qcfe-serve`) needs to hold *any* of them behind
//! `Arc<dyn CostModel>` and, where possible, run inference over micro-batches
//! of requests. Models with a flat plan encoding (MSCN-style) expose it via
//! [`CostModel::encode_plan`] so the service can coalesce encodings into one
//! matrix pass; tree-structured models fall back to per-plan prediction.

use crate::estimators::{MscnEstimator, PgEstimator, QppNetEstimator};
use crate::snapshot::FeatureSnapshot;
use qcfe_db::plan::PlanNode;
use qcfe_nn::Matrix;

/// A trained cost estimator usable from concurrent serving threads.
pub trait CostModel: Send + Sync {
    /// Display name (matches the paper's table labels).
    fn name(&self) -> &'static str;

    /// Predict the latency (ms) of one physical plan.
    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64;

    /// Flat feature encoding of a plan, when the model supports batched
    /// inference over encodings (`None` for tree-structured models).
    fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Option<Vec<f64>> {
        let _ = (root, snapshot);
        None
    }

    /// Batched inference over encodings produced by
    /// [`CostModel::encode_plan`]. The default panics; implementors that
    /// return `Some` encodings must override it.
    fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        let _ = rows;
        unreachable!("predict_encoded called on a model without a flat encoding")
    }

    /// Whether [`CostModel::encode_plan`] returns `Some` (i.e. the service
    /// can micro-batch this model's inference).
    fn supports_batching(&self) -> bool {
        false
    }
}

impl CostModel for MscnEstimator {
    fn name(&self) -> &'static str {
        "MSCN"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }

    fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Option<Vec<f64>> {
        let features = self.encoder().encode_plan(root, snapshot);
        Some(self.mask().iter().map(|&i| features[i]).collect())
    }

    fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        if rows.is_empty() {
            return Vec::new();
        }
        let batch = Matrix::from_rows(rows);
        let out = self.model().predict(&batch);
        (0..out.rows()).map(|r| out.get(r, 0).max(1e-6)).collect()
    }

    fn supports_batching(&self) -> bool {
        true
    }
}

impl CostModel for QppNetEstimator {
    fn name(&self) -> &'static str {
        "QPPNet"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root, snapshot)
    }
}

impl CostModel for PgEstimator {
    fn name(&self) -> &'static str {
        "PGSQL"
    }

    fn predict_plan(&self, root: &PlanNode, _snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_workload;
    use crate::encoding::FeatureEncoder;
    use qcfe_db::env::{DbEnvironment, HardwareProfile};
    use qcfe_workloads::BenchmarkKind;
    use rand::SeedableRng;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn estimators_are_thread_safe() {
        assert_send_sync::<MscnEstimator>();
        assert_send_sync::<QppNetEstimator>();
        assert_send_sync::<PgEstimator>();
        assert_send_sync::<std::sync::Arc<dyn CostModel>>();
    }

    #[test]
    fn batched_and_single_inference_agree_for_mscn() {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let envs = DbEnvironment::sample_knob_configs(1, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, 30, 17);
        let encoder = FeatureEncoder::new(&bench.catalog, false);
        let (mscn, _) = MscnEstimator::train(encoder, &workload, None, None, 10, &mut rng);

        let model: &dyn CostModel = &mscn;
        assert!(model.supports_batching());
        assert_eq!(model.name(), "MSCN");
        let encodings: Vec<Vec<f64>> = workload
            .queries
            .iter()
            .map(|q| {
                model
                    .encode_plan(&q.executed.root, None)
                    .expect("mscn encodes")
            })
            .collect();
        let batched = model.predict_encoded(&encodings);
        assert_eq!(batched.len(), workload.len());
        for (q, b) in workload.queries.iter().zip(&batched) {
            let single = model.predict_plan(&q.executed.root, None);
            assert!(
                (single - b).abs() < 1e-9,
                "batched {b} deviates from single {single}"
            );
        }
        assert!(model.predict_encoded(&[]).is_empty());
    }

    #[test]
    fn tree_models_do_not_advertise_batching() {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let encoder = FeatureEncoder::new(&bench.catalog, false);
        let qpp = QppNetEstimator::new(encoder, None, &mut rng);
        let model: &dyn CostModel = &qpp;
        assert!(!model.supports_batching());
        assert_eq!(model.name(), "QPPNet");

        let pg: &dyn CostModel = &PgEstimator;
        assert!(!pg.supports_batching());
        let envs = DbEnvironment::sample_knob_configs(1, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, 5, 2);
        for q in &workload.queries {
            assert!(pg.encode_plan(&q.executed.root, None).is_none());
            assert!(pg.predict_plan(&q.executed.root, None) > 0.0);
            assert!(model.predict_plan(&q.executed.root, None) > 0.0);
        }
    }
}

//! Operator- and plan-level feature encodings.
//!
//! The encoding follows the scheme the paper identifies as common to
//! existing learned estimators (Section IV-A): one-hot codes for the
//! operator type, the scanned table and the index column, plus numerical
//! features (cardinalities, widths, optimizer cost). When QCFE is enabled
//! the per-operator feature snapshot is appended, which is how the ignored
//! variables reach the model.

use crate::snapshot::{FeatureSnapshot, SNAPSHOT_DIM};
use qcfe_db::catalog::Catalog;
use qcfe_db::plan::{OperatorKind, PhysicalOp, PlanNode};
use serde::{Deserialize, Serialize};

/// Number of numeric (non-one-hot, non-snapshot) features per node.
pub const NODE_NUMERIC_DIM: usize = 7;

/// Extra plan-level numeric features appended by the pooled (MSCN-style)
/// encoding.
pub const PLAN_EXTRA_DIM: usize = 3;

/// A reusable feature encoder bound to one catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureEncoder {
    tables: Vec<String>,
    /// All `(table, column)` pairs of the catalog, for the index-column
    /// one-hot block.
    columns: Vec<(String, String)>,
    include_snapshot: bool,
    feature_names: Vec<String>,
}

impl FeatureEncoder {
    /// Build an encoder for a catalog. `include_snapshot` switches between
    /// the general feature engineering (false) and QCFE (true).
    pub fn new(catalog: &Catalog, include_snapshot: bool) -> Self {
        let tables: Vec<String> = catalog.tables().map(|t| t.name.clone()).collect();
        let mut columns = Vec::with_capacity(catalog.total_columns());
        for t in catalog.tables() {
            for c in &t.columns {
                columns.push((t.name.clone(), c.name.clone()));
            }
        }
        Self::from_parts(tables, columns, include_snapshot)
    }

    /// Rebuild an encoder from its catalog-derived parts — the inverse of
    /// what the `QCFW` model codec persists. Feature names are derived, so
    /// an encoder round-tripped through
    /// [`crate::model_codec`] is [`PartialEq`]-identical to the original.
    pub fn from_parts(
        tables: Vec<String>,
        columns: Vec<(String, String)>,
        include_snapshot: bool,
    ) -> Self {
        let mut feature_names = Vec::new();
        for k in OperatorKind::ALL {
            feature_names.push(format!("op:{}", k.name()));
        }
        for t in &tables {
            feature_names.push(format!("table:{t}"));
        }
        for (t, c) in &columns {
            feature_names.push(format!("index:{t}.{c}"));
        }
        for name in [
            "log_est_rows",
            "log_est_cost",
            "est_width",
            "n_predicates",
            "n_children",
            "log_child_rows",
            "depth",
        ] {
            feature_names.push(format!("num:{name}"));
        }
        if include_snapshot {
            for i in 0..SNAPSHOT_DIM {
                feature_names.push(format!("fs:c{i}"));
            }
        }
        FeatureEncoder {
            tables,
            columns,
            include_snapshot,
            feature_names,
        }
    }

    /// Whether this encoder appends the feature snapshot.
    pub fn includes_snapshot(&self) -> bool {
        self.include_snapshot
    }

    /// The table names this encoder one-hots over (codec surface).
    pub(crate) fn tables(&self) -> &[String] {
        &self.tables
    }

    /// The `(table, column)` pairs this encoder one-hots over (codec
    /// surface).
    pub(crate) fn columns(&self) -> &[(String, String)] {
        &self.columns
    }

    /// Dimensionality of a single node encoding.
    pub fn node_dim(&self) -> usize {
        OperatorKind::ALL.len()
            + self.tables.len()
            + self.columns.len()
            + NODE_NUMERIC_DIM
            + if self.include_snapshot {
                SNAPSHOT_DIM
            } else {
                0
            }
    }

    /// Dimensionality of the pooled plan-level encoding.
    pub fn plan_dim(&self) -> usize {
        self.node_dim() + PLAN_EXTRA_DIM
    }

    /// Human-readable feature names, aligned with [`encode_node`] output.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Indices of the snapshot block within a node encoding (empty when the
    /// snapshot is not included).
    pub fn snapshot_feature_indices(&self) -> Vec<usize> {
        if !self.include_snapshot {
            return Vec::new();
        }
        let start = self.node_dim() - SNAPSHOT_DIM;
        (start..self.node_dim()).collect()
    }

    /// Encode one plan node.
    pub fn encode_node(
        &self,
        node: &PlanNode,
        depth: usize,
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.node_dim());
        self.encode_node_into(node, depth, snapshot, &mut v);
        v
    }

    /// Append one node's encoding ([`FeatureEncoder::node_dim`] values) to a
    /// caller-owned buffer. This is the allocation-free variant behind the
    /// batched inference path, which packs every node of a micro-batch into
    /// one flat feature arena.
    pub fn encode_node_into(
        &self,
        node: &PlanNode,
        depth: usize,
        snapshot: Option<&FeatureSnapshot>,
        v: &mut Vec<f64>,
    ) {
        let start = v.len();
        self.encode_node_prefix_into(node, depth, v);
        self.append_snapshot_block(node.op.kind(), snapshot, v);
        debug_assert_eq!(v.len() - start, self.node_dim());
    }

    /// Append the snapshot-independent prefix of a node encoding (one-hots
    /// plus numeric features). Together with
    /// [`FeatureEncoder::append_snapshot_block`] this composes exactly
    /// [`FeatureEncoder::encode_node_into`]; the split lets the batched
    /// QPPNet engine compute the (kind-constant) snapshot block once per
    /// operator kind instead of once per node.
    pub(crate) fn encode_node_prefix_into(&self, node: &PlanNode, depth: usize, v: &mut Vec<f64>) {
        // Operator one-hot.
        let kind = node.op.kind();
        for k in OperatorKind::ALL {
            v.push(if k == kind { 1.0 } else { 0.0 });
        }
        // Table one-hot (scans only).
        let scanned = node.op.scanned_table();
        for t in &self.tables {
            v.push(if scanned == Some(t.as_str()) {
                1.0
            } else {
                0.0
            });
        }
        // Index-column one-hot (index scans only).
        let index_col = match &node.op {
            PhysicalOp::IndexScan { table, column } => Some((table.as_str(), column.as_str())),
            _ => None,
        };
        for (t, c) in &self.columns {
            v.push(if index_col == Some((t.as_str(), c.as_str())) {
                1.0
            } else {
                0.0
            });
        }
        // Numeric features.
        let child_rows: f64 = node.children.iter().map(|c| c.est_rows).sum();
        v.push((1.0 + node.est_rows.max(0.0)).ln());
        v.push((1.0 + node.est_cost.max(0.0)).ln());
        v.push(node.est_width / 100.0);
        v.push(node.predicates.len() as f64);
        v.push(node.children.len() as f64);
        v.push((1.0 + child_rows.max(0.0)).ln());
        v.push(depth as f64);
    }

    /// Append the feature-snapshot block for one operator kind (a no-op for
    /// encoders built without the snapshot). The block depends only on
    /// `(kind, snapshot)`, never on the individual node.
    pub(crate) fn append_snapshot_block(
        &self,
        kind: OperatorKind,
        snapshot: Option<&FeatureSnapshot>,
        v: &mut Vec<f64>,
    ) {
        if self.include_snapshot {
            let coeffs = snapshot
                .map(|s| s.coefficients(kind))
                .unwrap_or([0.0; SNAPSHOT_DIM]);
            // Scale the constant-ish coefficients into a comparable range.
            v.extend(
                coeffs
                    .iter()
                    .map(|c| (1.0 + c.abs() * 1000.0).ln() * c.signum()),
            );
        }
    }

    /// Encode every node of a plan (pre-order), together with its depth.
    pub fn encode_plan_nodes(
        &self,
        root: &PlanNode,
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<(OperatorKind, Vec<f64>)> {
        let mut out = Vec::with_capacity(root.node_count());
        fn walk(
            enc: &FeatureEncoder,
            node: &PlanNode,
            depth: usize,
            snapshot: Option<&FeatureSnapshot>,
            out: &mut Vec<(OperatorKind, Vec<f64>)>,
        ) {
            out.push((node.op.kind(), enc.encode_node(node, depth, snapshot)));
            for c in &node.children {
                walk(enc, c, depth + 1, snapshot, out);
            }
        }
        walk(self, root, 0, snapshot, &mut out);
        out
    }

    /// Pooled plan-level encoding (MSCN-style): element-wise mean of the node
    /// encodings plus `[node_count, depth, log root est cost]`.
    pub fn encode_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        let nodes = self.encode_plan_nodes(root, snapshot);
        let n = nodes.len().max(1) as f64;
        let mut pooled = vec![0.0; self.node_dim()];
        for (_, node_vec) in &nodes {
            for (p, x) in pooled.iter_mut().zip(node_vec) {
                *p += x / n;
            }
        }
        pooled.push(root.node_count() as f64);
        pooled.push(root.depth() as f64);
        pooled.push((1.0 + root.est_cost.max(0.0)).ln());
        debug_assert_eq!(pooled.len(), self.plan_dim());
        pooled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::catalog::TableBuilder;
    use qcfe_db::expr::{ColumnRef, JoinCondition};
    use qcfe_db::types::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            TableBuilder::new("a")
                .column("x", DataType::Int)
                .column("y", DataType::Int)
                .primary_key("x"),
        );
        c.add_table(
            TableBuilder::new("b")
                .column("z", DataType::Int)
                .primary_key("z"),
        );
        c
    }

    fn plan() -> PlanNode {
        let mut scan_a = PlanNode::new(
            PhysicalOp::IndexScan {
                table: "a".into(),
                column: "x".into(),
            },
            vec![],
        );
        scan_a.est_rows = 100.0;
        let mut scan_b = PlanNode::new(PhysicalOp::SeqScan { table: "b".into() }, vec![]);
        scan_b.est_rows = 1000.0;
        let mut join = PlanNode::new(
            PhysicalOp::HashJoin {
                condition: JoinCondition::new(ColumnRef::new("a", "x"), ColumnRef::new("b", "z")),
            },
            vec![scan_a, scan_b],
        );
        join.est_rows = 500.0;
        join
    }

    #[test]
    fn dimensions_are_consistent_with_names() {
        let enc = FeatureEncoder::new(&catalog(), false);
        assert_eq!(enc.node_dim(), 9 + 2 + 3 + NODE_NUMERIC_DIM);
        assert_eq!(enc.feature_names().len(), enc.node_dim());
        assert!(enc.snapshot_feature_indices().is_empty());

        let enc_fs = FeatureEncoder::new(&catalog(), true);
        assert_eq!(enc_fs.node_dim(), enc.node_dim() + SNAPSHOT_DIM);
        assert_eq!(enc_fs.snapshot_feature_indices().len(), SNAPSHOT_DIM);
        assert_eq!(enc_fs.plan_dim(), enc_fs.node_dim() + PLAN_EXTRA_DIM);
    }

    #[test]
    fn one_hot_blocks_are_set_correctly() {
        let enc = FeatureEncoder::new(&catalog(), false);
        let p = plan();
        let nodes = enc.encode_plan_nodes(&p, None);
        assert_eq!(nodes.len(), 3);
        // root is the hash join
        let (kind, root_vec) = &nodes[0];
        assert_eq!(*kind, OperatorKind::HashJoin);
        assert_eq!(root_vec[OperatorKind::HashJoin.index()], 1.0);
        assert_eq!(
            root_vec.iter().take(9).sum::<f64>(),
            1.0,
            "exactly one op bit"
        );
        // index scan on a.x sets table 'a' and index column a.x
        let (_, scan_vec) = &nodes[1];
        assert_eq!(scan_vec[OperatorKind::IndexScan.index()], 1.0);
        assert_eq!(scan_vec[9], 1.0, "table a one-hot");
        assert_eq!(scan_vec[9 + 2], 1.0, "index column a.x one-hot");
        // seq scan on b sets table 'b' but no index column
        let (_, seq_vec) = &nodes[2];
        assert_eq!(seq_vec[9 + 1], 1.0);
        assert_eq!(seq_vec[9 + 2..9 + 2 + 3].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn snapshot_block_reflects_fitted_coefficients() {
        use crate::snapshot::OperatorSample;
        let samples: Vec<OperatorSample> = (1..=30)
            .map(|i| OperatorSample {
                kind: OperatorKind::SeqScan,
                n1: (i * 100) as f64,
                n2: 0.0,
                self_ms: 0.004 * (i * 100) as f64 + 1.0,
            })
            .collect();
        let snap = FeatureSnapshot::fit(&samples);
        let enc = FeatureEncoder::new(&catalog(), true);
        let p = plan();
        let nodes = enc.encode_plan_nodes(&p, Some(&snap));
        let seq_vec = &nodes[2].1;
        let fs = enc.snapshot_feature_indices();
        assert!(
            seq_vec[fs[0]] != 0.0,
            "seq scan snapshot coefficient must be present"
        );
        // hash join has no fitted coefficients -> zeros
        let join_vec = &nodes[0].1;
        assert_eq!(join_vec[fs[0]], 0.0);
    }

    #[test]
    fn plan_encoding_pools_and_appends_extras() {
        let enc = FeatureEncoder::new(&catalog(), false);
        let p = plan();
        let v = enc.encode_plan(&p, None);
        assert_eq!(v.len(), enc.plan_dim());
        assert_eq!(v[enc.node_dim()], 3.0, "node count");
        assert_eq!(v[enc.node_dim() + 1], 2.0, "depth");
        // pooled op one-hots average to node fractions
        assert!((v[OperatorKind::SeqScan.index()] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn depth_is_recorded_in_numeric_block() {
        let enc = FeatureEncoder::new(&catalog(), false);
        let p = plan();
        let nodes = enc.encode_plan_nodes(&p, None);
        let depth_idx = enc.node_dim() - 1;
        assert_eq!(nodes[0].1[depth_idx], 0.0);
        assert_eq!(nodes[1].1[depth_idx], 1.0);
        assert_eq!(nodes[2].1[depth_idx], 1.0);
    }
}

//! Labeled-workload collection: run benchmark queries under many database
//! environments and keep the executed (annotated) plans as training labels.
//!
//! This mirrors the paper's data-collection phase: 20 random knob
//! configurations per benchmark, a fixed number of queries per
//! configuration, and an 80/20 train/test split over the pooled labels.

use qcfe_db::env::DbEnvironment;
use qcfe_db::executor::ExecutedQuery;
use qcfe_workloads::Benchmark;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One labeled query execution.
#[derive(Debug, Clone)]
pub struct LabeledQuery {
    /// Index into [`LabeledWorkload::environments`].
    pub env_index: usize,
    /// The executed plan with actual rows and per-operator times.
    pub executed: ExecutedQuery,
}

/// A labeled workload: environments plus the executions gathered under them.
#[derive(Debug, Clone)]
pub struct LabeledWorkload {
    /// Benchmark name.
    pub benchmark: String,
    /// The environments the labels were collected under.
    pub environments: Vec<DbEnvironment>,
    /// The labeled query executions.
    pub queries: Vec<LabeledQuery>,
}

impl LabeledWorkload {
    /// Number of labeled queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries were collected.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The labeled queries collected under one environment.
    pub fn for_environment(&self, env_index: usize) -> Vec<&LabeledQuery> {
        self.queries
            .iter()
            .filter(|q| q.env_index == env_index)
            .collect()
    }

    /// A deterministic subsample of `n` labeled queries (the paper's
    /// scale = 2000 … 10000 sweep).
    pub fn subsample(&self, n: usize, seed: u64) -> LabeledWorkload {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.queries.len()).collect();
        indices.shuffle(&mut rng);
        indices.truncate(n.min(self.queries.len()));
        LabeledWorkload {
            benchmark: self.benchmark.clone(),
            environments: self.environments.clone(),
            queries: indices.iter().map(|&i| self.queries[i].clone()).collect(),
        }
    }

    /// Split into (train, test) by the given training fraction.
    pub fn split(&self, train_fraction: f64, seed: u64) -> (LabeledWorkload, LabeledWorkload) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut indices: Vec<usize> = (0..self.queries.len()).collect();
        indices.shuffle(&mut rng);
        let cut = ((self.queries.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, self.queries.len().saturating_sub(1).max(1));
        let take = |idx: &[usize]| LabeledWorkload {
            benchmark: self.benchmark.clone(),
            environments: self.environments.clone(),
            queries: idx.iter().map(|&i| self.queries[i].clone()).collect(),
        };
        (take(&indices[..cut]), take(&indices[cut..]))
    }

    /// Average query latency per environment (the series of Figure 1).
    pub fn average_cost_per_environment(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.environments.len()];
        let mut counts = vec![0usize; self.environments.len()];
        for q in &self.queries {
            sums[q.env_index] += q.executed.total_ms;
            counts[q.env_index] += 1;
        }
        sums.iter()
            .zip(&counts)
            .map(|(s, c)| if *c == 0 { 0.0 } else { s / *c as f64 })
            .collect()
    }

    /// Actual total latencies of all labeled queries.
    pub fn actual_costs(&self) -> Vec<f64> {
        self.queries.iter().map(|q| q.executed.total_ms).collect()
    }
}

/// Collect a labeled workload: `queries_per_env` template-instantiated
/// queries executed under each environment.
pub fn collect_workload(
    benchmark: &Benchmark,
    environments: &[DbEnvironment],
    queries_per_env: usize,
    seed: u64,
) -> LabeledWorkload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut queries = Vec::with_capacity(environments.len() * queries_per_env);
    for (env_index, env) in environments.iter().enumerate() {
        let db = benchmark.build_database(env.clone());
        for q in benchmark.queries_round_robin(queries_per_env, &mut rng) {
            if let Ok(executed) = db.execute(&q, &mut rng) {
                queries.push(LabeledQuery {
                    env_index,
                    executed,
                });
            }
        }
    }
    LabeledWorkload {
        benchmark: benchmark.name.clone(),
        environments: environments.to_vec(),
        queries,
    }
}

/// Execute an arbitrary list of queries under one environment and return the
/// executions (used for the simplified-template snapshot collection).
pub fn execute_queries(
    benchmark: &Benchmark,
    env: &DbEnvironment,
    queries: &[qcfe_db::query::Query],
    seed: u64,
) -> Vec<ExecutedQuery> {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = benchmark.build_database(env.clone());
    queries
        .iter()
        .filter_map(|q| db.execute(q, &mut rng).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::env::HardwareProfile;
    use qcfe_workloads::BenchmarkKind;

    fn tiny_workload() -> LabeledWorkload {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let envs = DbEnvironment::sample_knob_configs(3, HardwareProfile::h1(), &mut rng);
        collect_workload(&bench, &envs, 10, 7)
    }

    #[test]
    fn collection_produces_labels_for_every_environment() {
        let w = tiny_workload();
        assert_eq!(w.environments.len(), 3);
        assert_eq!(w.len(), 30);
        for env_idx in 0..3 {
            assert_eq!(w.for_environment(env_idx).len(), 10);
        }
        assert!(w.actual_costs().iter().all(|&c| c > 0.0));
    }

    #[test]
    fn environment_averages_vary_with_knobs() {
        let w = tiny_workload();
        let avgs = w.average_cost_per_environment();
        assert_eq!(avgs.len(), 3);
        assert!(avgs.iter().all(|&a| a > 0.0));
    }

    #[test]
    fn subsample_and_split_partition_correctly() {
        let w = tiny_workload();
        let sub = w.subsample(12, 3);
        assert_eq!(sub.len(), 12);
        let (train, test) = sub.split(0.8, 4);
        assert_eq!(train.len() + test.len(), 12);
        assert!(train.len() >= 9);
        assert!(!test.is_empty());
    }

    #[test]
    fn execute_queries_runs_adhoc_queries() {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 1);
        let env = DbEnvironment::reference();
        let mut rng = StdRng::seed_from_u64(5);
        let queries: Vec<_> = (0..5).map(|_| bench.random_query(&mut rng)).collect();
        let executed = execute_queries(&bench, &env, &queries, 9);
        assert_eq!(executed.len(), 5);
    }
}

//! Learned cost estimators: the PostgreSQL analytical baseline, an
//! MSCN-style flat model and a QPPNet-style plan-structured model.
//!
//! Both learned models consume the encodings of [`crate::encoding`]; when a
//! [`FeatureSnapshot`] is supplied they become the QCFE variants
//! (`QCFE(mscn)`, `QCFE(qpp)`) of the paper's Table IV.

use crate::collect::LabeledWorkload;
use crate::encoding::FeatureEncoder;
use crate::metrics::AccuracyReport;
use crate::snapshot::FeatureSnapshot;
use qcfe_db::plan::{OperatorKind, PlanNode};
use qcfe_nn::{
    Activation, BatchForward, Dataset, InferenceScratch, Loss, Matrix, Mlp, Optimizer,
    QuantizedMlp, TrainConfig,
};
use rand::Rng;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Training statistics reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Wall-clock training time in seconds.
    pub train_time_s: f64,
    /// Number of training iterations (epochs).
    pub iterations: usize,
    /// Final training loss.
    pub final_loss: f64,
}

/// The PostgreSQL analytical baseline: predicted cost is the planner's
/// cost-unit estimate converted with a fixed scale. It ignores the
/// environment entirely, which is why its q-error is large.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PgEstimator;

impl PgEstimator {
    /// Predict the latency of a planned query in milliseconds.
    pub fn predict(&self, plan: &PlanNode) -> f64 {
        qcfe_db::cost::cost_units_to_ms(plan.est_cost)
    }

    /// Evaluate on a labeled workload.
    pub fn evaluate(&self, workload: &LabeledWorkload) -> AccuracyReport {
        let actuals: Vec<f64> = workload.actual_costs();
        let preds: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| self.predict(&q.executed.root))
            .collect();
        AccuracyReport::compute(&actuals, &preds)
    }
}

/// Per-environment snapshots used when encoding labeled queries.
pub type EnvSnapshots = Vec<Option<FeatureSnapshot>>;

/// Mean per-query inference latency through the scalar and batched paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceLatency {
    /// One prediction per call, microseconds per query.
    pub scalar_us: f64,
    /// Whole-workload batched prediction, microseconds per query.
    pub batched_us: f64,
}

fn snapshot_for(snapshots: Option<&EnvSnapshots>, env_index: usize) -> Option<&FeatureSnapshot> {
    snapshots
        .and_then(|s| s.get(env_index))
        .and_then(|o| o.as_ref())
}

/// Project a feature vector onto the kept indices of a mask.
fn project(features: &[f64], mask: &[usize]) -> Vec<f64> {
    mask.iter().map(|&i| features[i]).collect()
}

// ---------------------------------------------------------------------------
// MSCN-style estimator
// ---------------------------------------------------------------------------

/// An MSCN-style flat estimator: pooled plan encoding → MLP → cost.
#[derive(Debug, Clone)]
pub struct MscnEstimator {
    encoder: FeatureEncoder,
    mask: Vec<usize>,
    mlp: Mlp,
}

impl MscnEstimator {
    /// Number of hidden units per layer.
    pub const HIDDEN: usize = 64;

    /// Build the training dataset (pooled plan encodings → total latency).
    pub fn build_dataset(
        encoder: &FeatureEncoder,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
    ) -> Dataset {
        let xs: Vec<Vec<f64>> = workload
            .queries
            .iter()
            .map(|q| encoder.encode_plan(&q.executed.root, snapshot_for(snapshots, q.env_index)))
            .collect();
        let ys: Vec<f64> = workload.actual_costs();
        Dataset::new(xs, ys).expect("non-empty labeled workload")
    }

    /// Train the estimator. `mask` restricts the plan-level features (the
    /// outcome of feature reduction); pass `None` to use every feature.
    pub fn train<R: Rng + ?Sized>(
        encoder: FeatureEncoder,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
        mask: Option<Vec<usize>>,
        iterations: usize,
        rng: &mut R,
    ) -> (Self, TrainStats) {
        let start = Instant::now();
        let full = Self::build_dataset(&encoder, workload, snapshots);
        let mask = mask.unwrap_or_else(|| (0..full.dim()).collect());
        let data = full.project_columns(&mask).expect("valid mask");
        let mut mlp = Mlp::new(
            &[data.dim(), Self::HIDDEN, Self::HIDDEN / 2, 1],
            Activation::Relu,
            rng,
        );
        let cfg = TrainConfig {
            epochs: iterations,
            batch_size: 64,
            optimizer: Optimizer::adam(5e-3),
            loss: Loss::LogMse,
            shuffle: true,
        };
        let history = mlp.train(&data, &cfg, rng);
        let stats = TrainStats {
            train_time_s: start.elapsed().as_secs_f64(),
            iterations,
            final_loss: history.final_loss(),
        };
        (MscnEstimator { encoder, mask, mlp }, stats)
    }

    /// Reassemble a trained estimator from its persisted parts (the
    /// inverse of the `QCFW` serialization in [`crate::model_codec`]).
    /// Rejects structurally inconsistent parts instead of panicking later
    /// during inference.
    pub fn from_parts(
        encoder: FeatureEncoder,
        mask: Vec<usize>,
        mlp: Mlp,
    ) -> Result<Self, crate::model_codec::ModelCodecError> {
        use crate::model_codec::ModelCodecError;
        let plan_dim = encoder.plan_dim();
        if let Some(&bad) = mask.iter().find(|&&i| i >= plan_dim) {
            return Err(ModelCodecError::Malformed(format!(
                "MSCN mask index {bad} out of range for plan dim {plan_dim}"
            )));
        }
        if mlp.input_dim() != mask.len() {
            return Err(ModelCodecError::Malformed(format!(
                "MSCN network input dim {} does not match mask length {}",
                mlp.input_dim(),
                mask.len()
            )));
        }
        if mlp.output_dim() != 1 {
            return Err(ModelCodecError::Malformed(format!(
                "MSCN network output dim {} is not scalar",
                mlp.output_dim()
            )));
        }
        Ok(MscnEstimator { encoder, mask, mlp })
    }

    /// Predict the latency of a plan under an (optional) snapshot.
    pub fn predict(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        let features = self.encoder.encode_plan(root, snapshot);
        self.mlp
            .predict_one(&project(&features, &self.mask))
            .max(1e-6)
    }

    /// Batched prediction over many plans: every plan is encoded, then the
    /// whole batch runs through the MLP in a single matrix pass. Results are
    /// bit-identical to per-plan [`MscnEstimator::predict`].
    pub fn predict_batch(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = plans
            .iter()
            .map(|p| project(&self.encoder.encode_plan(p, snapshot), &self.mask))
            .collect();
        self.mlp
            .predict_rows(&rows)
            .into_iter()
            .map(|p| p.max(1e-6))
            .collect()
    }

    /// Evaluate on a labeled workload.
    pub fn evaluate(
        &self,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
    ) -> AccuracyReport {
        let actuals = workload.actual_costs();
        let preds: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| self.predict(&q.executed.root, snapshot_for(snapshots, q.env_index)))
            .collect();
        AccuracyReport::compute(&actuals, &preds)
    }

    /// Average per-query inference latency through both the scalar and the
    /// batched path. The batched probe groups queries by environment so
    /// every group shares one snapshot (and thus one matrix pass).
    pub fn inference_latency_us(
        &self,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
    ) -> InferenceLatency {
        if workload.is_empty() {
            return InferenceLatency {
                scalar_us: 0.0,
                batched_us: 0.0,
            };
        }
        let n = workload.len() as f64;
        let start = Instant::now();
        for q in &workload.queries {
            let _ = self.predict(&q.executed.root, snapshot_for(snapshots, q.env_index));
        }
        let scalar_us = start.elapsed().as_secs_f64() * 1e6 / n;

        let mut by_env: BTreeMap<usize, Vec<&PlanNode>> = BTreeMap::new();
        for q in &workload.queries {
            by_env
                .entry(q.env_index)
                .or_default()
                .push(&q.executed.root);
        }
        let start = Instant::now();
        for (env_index, plans) in &by_env {
            let _ = self.predict_batch(plans, snapshot_for(snapshots, *env_index));
        }
        let batched_us = start.elapsed().as_secs_f64() * 1e6 / n;
        InferenceLatency {
            scalar_us,
            batched_us,
        }
    }

    /// The trained network (used by feature reduction and tests).
    pub fn model(&self) -> &Mlp {
        &self.mlp
    }

    /// The feature mask in effect.
    pub fn mask(&self) -> &[usize] {
        &self.mask
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }
}

// ---------------------------------------------------------------------------
// QPPNet-style estimator
// ---------------------------------------------------------------------------

/// Dimension of the inter-node "data vector" passed from children to parents
/// in the plan-structured network.
pub const DATA_VECTOR_DIM: usize = 8;

/// Maximum number of children whose data vectors a neural unit consumes.
pub const MAX_CHILDREN: usize = 2;

/// A QPPNet-style plan-structured estimator: one small neural unit per
/// operator kind; a node's unit consumes the node encoding plus its
/// children's output vectors and emits a data vector whose first entry is
/// the node's predicted (inclusive) latency.
///
/// Inference is *operator-grouped batched*: the nodes of every plan in a
/// batch are bucketed by `(stage, OperatorKind)` — where a node's stage is
/// its height above the leaves — and each bucket runs through its neural
/// unit in a single matrix forward, children before parents, with child
/// data vectors scattered back into the parents' feature rows between
/// stages. See [`QppNetEstimator::predict_batch`].
#[derive(Debug, Clone)]
pub struct QppNetEstimator {
    encoder: FeatureEncoder,
    /// Per-operator feature mask over the node encoding.
    masks: HashMap<OperatorKind, Vec<usize>>,
    units: HashMap<OperatorKind, Mlp>,
    node_dim: usize,
}

/// Execution statistics of one [`QppNetEstimator::predict_batch`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QppBatchStats {
    /// Neural-unit matrix forwards executed (one per non-empty
    /// `(stage, OperatorKind)` bucket).
    pub forward_calls: usize,
    /// Number of stages (maximum node height + 1).
    pub stages: usize,
    /// Total plan nodes in the batch.
    pub nodes: usize,
}

/// One plan node flattened into the batch arena; its features live at
/// `id * node_dim` in the shared flat feature buffer.
struct FlatNode {
    kind: OperatorKind,
    /// Child arena ids; `usize::MAX` marks an absent slot. Children beyond
    /// [`MAX_CHILDREN`] are still predicted but (exactly as in the scalar
    /// walk) do not feed the parent's input.
    children: [usize; MAX_CHILDREN],
    height: usize,
}

/// Reusable per-thread buffers of the batched QPPNet engine: after warm-up
/// a [`QppNetEstimator::predict_batch`] call performs no steady-state heap
/// allocations beyond its result vector.
struct QppBatchScratch {
    arena: Vec<FlatNode>,
    features: Vec<f64>,
    roots: Vec<usize>,
    /// Node-id buckets per stage, indexed by [`OperatorKind::index`].
    buckets: Vec<[Vec<usize>; OperatorKind::ALL.len()]>,
    outputs: Vec<[f64; DATA_VECTOR_DIM]>,
    input: Matrix,
    nn: InferenceScratch,
    /// Per-kind snapshot blocks for the current call (the buffers are
    /// reused across calls; `blocks_filled` is reset per call because the
    /// snapshot may differ).
    snapshot_blocks: [Vec<f64>; OperatorKind::ALL.len()],
    blocks_filled: [bool; OperatorKind::ALL.len()],
}

impl QppBatchScratch {
    fn new() -> Self {
        QppBatchScratch {
            arena: Vec::new(),
            features: Vec::new(),
            roots: Vec::new(),
            buckets: Vec::new(),
            outputs: Vec::new(),
            input: Matrix::default(),
            nn: InferenceScratch::new(),
            snapshot_blocks: std::array::from_fn(|_| Vec::new()),
            blocks_filled: [false; OperatorKind::ALL.len()],
        }
    }
}

thread_local! {
    static QPP_SCRATCH: RefCell<QppBatchScratch> = RefCell::new(QppBatchScratch::new());
}

/// Flatten one plan into the arena, returning its root's arena id.
#[allow(clippy::too_many_arguments)]
fn flatten_plan_into(
    encoder: &FeatureEncoder,
    node_dim: usize,
    node: &PlanNode,
    depth: usize,
    snapshot: Option<&FeatureSnapshot>,
    arena: &mut Vec<FlatNode>,
    features: &mut Vec<f64>,
    // Lazily-computed snapshot block per operator kind: the block is a
    // function of `(kind, snapshot)` only, so computing it once per kind
    // (instead of per node) is bit-identical and skips the per-node
    // logarithm transforms. The buffers are reused across calls.
    snapshot_blocks: &mut [Vec<f64>; OperatorKind::ALL.len()],
    blocks_filled: &mut [bool; OperatorKind::ALL.len()],
) -> usize {
    let mut children = [usize::MAX; MAX_CHILDREN];
    let mut height = 0;
    for (slot, child) in node.children.iter().enumerate() {
        let cid = flatten_plan_into(
            encoder,
            node_dim,
            child,
            depth + 1,
            snapshot,
            arena,
            features,
            snapshot_blocks,
            blocks_filled,
        );
        height = height.max(arena[cid].height + 1);
        if slot < MAX_CHILDREN {
            children[slot] = cid;
        }
    }
    let kind = node.op.kind();
    encoder.encode_node_prefix_into(node, depth, features);
    let block = &mut snapshot_blocks[kind.index()];
    if !blocks_filled[kind.index()] {
        block.clear();
        encoder.append_snapshot_block(kind, snapshot, block);
        blocks_filled[kind.index()] = true;
    }
    features.extend_from_slice(block);
    arena.push(FlatNode {
        kind,
        children,
        height,
    });
    // The engine reads features back as `&features[id * node_dim ..]`,
    // so prefix + snapshot block must append exactly node_dim values.
    debug_assert_eq!(features.len(), arena.len() * node_dim);
    arena.len() - 1
}

/// The operator-grouped batched QPPNet inference engine, generic over the
/// neural-unit representation ([`Mlp`] for f64 models,
/// [`QuantizedMlp`] for int8): flatten every plan into one arena, bucket
/// nodes by `(stage, OperatorKind)`, run each bucket through its unit in a
/// single [`BatchForward::forward_batch_into`] pass, and scatter child
/// data vectors into parent rows between stages.
///
/// The engine is allocation-free in steady state: node encodings are
/// packed into one flat feature arena (stride [`FeatureEncoder::node_dim`]),
/// child links live in fixed-size slots, stage buckets are per-kind
/// vectors, and everything — including the neural-unit input matrix and
/// [`InferenceScratch`] — lives in a reusable thread-local
/// [`QppBatchScratch`] shared by both representations.
fn qpp_batched_forward<U: BatchForward>(
    encoder: &FeatureEncoder,
    masks: &HashMap<OperatorKind, Vec<usize>>,
    units: &HashMap<OperatorKind, U>,
    node_dim: usize,
    plans: &[&PlanNode],
    snapshot: Option<&FeatureSnapshot>,
) -> (Vec<f64>, QppBatchStats) {
    QPP_SCRATCH.with(|cell| {
        let s = &mut *cell.borrow_mut();
        let QppBatchScratch {
            arena,
            features,
            roots,
            buckets,
            outputs,
            input,
            nn,
            snapshot_blocks,
            blocks_filled,
        } = s;
        arena.clear();
        features.clear();
        roots.clear();
        // The snapshot may differ between calls, so the cached blocks
        // must be recomputed — but their buffers are reused.
        *blocks_filled = [false; OperatorKind::ALL.len()];
        for plan in plans {
            let root = flatten_plan_into(
                encoder,
                node_dim,
                plan,
                0,
                snapshot,
                arena,
                features,
                snapshot_blocks,
                blocks_filled,
            );
            roots.push(root);
        }
        let stages = arena.iter().map(|n| n.height + 1).max().unwrap_or(0);

        // Node-id buckets per (stage, kind); fixed per-kind slots keep
        // the execution order deterministic (OperatorKind::ALL order).
        while buckets.len() < stages {
            buckets.push(std::array::from_fn(|_| Vec::new()));
        }
        for stage in buckets.iter_mut().take(stages) {
            for bucket in stage.iter_mut() {
                bucket.clear();
            }
        }
        for (id, node) in arena.iter().enumerate() {
            buckets[node.height][node.kind.index()].push(id);
        }

        outputs.clear();
        outputs.resize(arena.len(), [0.0; DATA_VECTOR_DIM]);
        let mut forward_calls = 0usize;
        for stage in buckets.iter().take(stages) {
            for (kind_index, ids) in stage.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let kind = OperatorKind::ALL[kind_index];
                let mask = &masks[&kind];
                // The unreduced (identity) mask is the common case; copy
                // the feature block wholesale instead of gathering per
                // index.
                let identity_mask =
                    mask.len() == node_dim && mask.iter().enumerate().all(|(i, &m)| m == i);
                // Every element of every row is written below, so the
                // matrix contents need no zero-fill.
                input.reshape_unspecified(ids.len(), mask.len() + MAX_CHILDREN * DATA_VECTOR_DIM);
                for (r, &id) in ids.iter().enumerate() {
                    let node = &arena[id];
                    let feats = &features[id * node_dim..(id + 1) * node_dim];
                    let row = input.row_mut(r);
                    if identity_mask {
                        row[..node_dim].copy_from_slice(feats);
                    } else {
                        for (j, &fi) in mask.iter().enumerate() {
                            row[j] = feats[fi];
                        }
                    }
                    // Children always live at lower stages, so their data
                    // vectors are final by now; absent slots read zero.
                    for (slot, &cid) in node.children.iter().enumerate() {
                        let start = mask.len() + slot * DATA_VECTOR_DIM;
                        let slot_out = if cid == usize::MAX {
                            &[0.0; DATA_VECTOR_DIM]
                        } else {
                            &outputs[cid]
                        };
                        row[start..start + DATA_VECTOR_DIM].copy_from_slice(slot_out);
                    }
                }
                let out = units[&kind].forward_batch_into(input, nn);
                forward_calls += 1;
                for (r, &id) in ids.iter().enumerate() {
                    outputs[id].copy_from_slice(out.row(r));
                }
            }
        }

        let preds = roots.iter().map(|&r| outputs[r][0].max(1e-6)).collect();
        (
            preds,
            QppBatchStats {
                forward_calls,
                stages,
                nodes: arena.len(),
            },
        )
    })
}

/// Intermediate forward state for one node (used during training).
struct ForwardNode {
    kind: OperatorKind,
    output: Vec<f64>,
    cache: qcfe_nn::mlp::MlpCache,
    actual_ms: f64,
    children: Vec<ForwardNode>,
}

impl QppNetEstimator {
    /// Hidden width of each neural unit.
    pub const HIDDEN: usize = 32;

    /// Create an untrained estimator.
    pub fn new<R: Rng + ?Sized>(
        encoder: FeatureEncoder,
        masks: Option<HashMap<OperatorKind, Vec<usize>>>,
        rng: &mut R,
    ) -> Self {
        let node_dim = encoder.node_dim();
        let masks = masks.unwrap_or_else(|| {
            OperatorKind::ALL
                .iter()
                .map(|k| (*k, (0..node_dim).collect()))
                .collect()
        });
        let mut units = HashMap::new();
        for kind in OperatorKind::ALL {
            let input_dim = masks[&kind].len() + MAX_CHILDREN * DATA_VECTOR_DIM;
            let unit = Mlp::with_output_activation(
                &[input_dim, Self::HIDDEN, DATA_VECTOR_DIM],
                Activation::Relu,
                Activation::Softplus,
                rng,
            );
            units.insert(kind, unit);
        }
        QppNetEstimator {
            encoder,
            masks,
            units,
            node_dim,
        }
    }

    /// The per-operator feature masks.
    pub fn masks(&self) -> &HashMap<OperatorKind, Vec<usize>> {
        &self.masks
    }

    /// The per-operator neural units (codec and diagnostics surface).
    pub fn units(&self) -> &HashMap<OperatorKind, Mlp> {
        &self.units
    }

    /// Reassemble a trained estimator from its persisted parts (the
    /// inverse of the `QCFW` serialization in [`crate::model_codec`]).
    /// Every operator kind must come with a mask and a neural unit whose
    /// dimensions agree with the encoder, else inference would panic.
    pub fn from_parts(
        encoder: FeatureEncoder,
        masks: HashMap<OperatorKind, Vec<usize>>,
        units: HashMap<OperatorKind, Mlp>,
    ) -> Result<Self, crate::model_codec::ModelCodecError> {
        use crate::model_codec::ModelCodecError;
        let node_dim = encoder.node_dim();
        for kind in OperatorKind::ALL {
            let mask = masks.get(&kind).ok_or_else(|| {
                ModelCodecError::Malformed(format!("QPPNet mask missing for {kind:?}"))
            })?;
            if let Some(&bad) = mask.iter().find(|&&i| i >= node_dim) {
                return Err(ModelCodecError::Malformed(format!(
                    "QPPNet {kind:?} mask index {bad} out of range for node dim {node_dim}"
                )));
            }
            let unit = units.get(&kind).ok_or_else(|| {
                ModelCodecError::Malformed(format!("QPPNet neural unit missing for {kind:?}"))
            })?;
            let expected_input = mask.len() + MAX_CHILDREN * DATA_VECTOR_DIM;
            if unit.input_dim() != expected_input {
                return Err(ModelCodecError::Malformed(format!(
                    "QPPNet {kind:?} unit input dim {} does not match mask-derived dim {expected_input}",
                    unit.input_dim()
                )));
            }
            if unit.output_dim() != DATA_VECTOR_DIM {
                return Err(ModelCodecError::Malformed(format!(
                    "QPPNet {kind:?} unit output dim {} is not the data-vector dim {DATA_VECTOR_DIM}",
                    unit.output_dim()
                )));
            }
        }
        Ok(QppNetEstimator {
            encoder,
            masks,
            units,
            node_dim,
        })
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }

    fn unit_input(
        &self,
        kind: OperatorKind,
        node_features: &[f64],
        child_outputs: &[Vec<f64>],
    ) -> Vec<f64> {
        let mask = &self.masks[&kind];
        let mut input = project(node_features, mask);
        for slot in 0..MAX_CHILDREN {
            match child_outputs.get(slot) {
                Some(v) => input.extend_from_slice(v),
                None => input.extend(std::iter::repeat_n(0.0, DATA_VECTOR_DIM)),
            }
        }
        input
    }

    /// Inference-only forward pass over a plan; returns the root's predicted
    /// latency (ms). Routes through the operator-grouped batched engine with
    /// a batch of one.
    pub fn predict(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict_batch(&[root], snapshot)[0]
    }

    /// Reference scalar implementation: the original recursive tree walk
    /// running one allocating 1-row neural-unit forward per node. Kept
    /// verbatim as the ground truth the batched engine is verified against
    /// bit-for-bit, and as the baseline of the serving benchmark's
    /// batched-vs-scalar comparison.
    pub fn predict_scalar(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        fn walk(
            est: &QppNetEstimator,
            node: &PlanNode,
            depth: usize,
            snapshot: Option<&FeatureSnapshot>,
        ) -> Vec<f64> {
            let child_outputs: Vec<Vec<f64>> = node
                .children
                .iter()
                .map(|c| walk(est, c, depth + 1, snapshot))
                .collect();
            let kind = node.op.kind();
            let features = est.encoder.encode_node(node, depth, snapshot);
            let input = est.unit_input(kind, &features, &child_outputs);
            let out = est.units[&kind].predict(&Matrix::row_vector(&input));
            out.row(0).to_vec()
        }
        walk(self, root, 0, snapshot)
            .first()
            .copied()
            .unwrap_or(0.0)
            .max(1e-6)
    }

    /// Operator-grouped batched inference over many plans.
    ///
    /// Nodes from *all* plans are flattened into one arena and processed in
    /// stages from the leaves up (a node's stage is its height). Within a
    /// stage, nodes are bucketed by [`OperatorKind`] and each bucket runs
    /// through its neural unit in a single allocation-free matrix forward;
    /// the resulting data vectors are scattered into the parents' input rows
    /// for the next stages. Per-plan results are bit-identical to scalar
    /// tree-walking inference because every row of a batched forward is
    /// computed with the same operation order as a 1-row forward.
    pub fn predict_batch(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<f64> {
        self.predict_batch_with_stats(plans, snapshot).0
    }

    /// [`QppNetEstimator::predict_batch`] plus execution statistics (used by
    /// tests and the serving benchmark to verify grouping happens). Runs the
    /// shared operator-grouped engine ([`qpp_batched_forward`]) over the f64
    /// neural units.
    pub fn predict_batch_with_stats(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> (Vec<f64>, QppBatchStats) {
        qpp_batched_forward(
            &self.encoder,
            &self.masks,
            &self.units,
            self.node_dim,
            plans,
            snapshot,
        )
    }

    /// Training forward pass keeping caches for backprop.
    fn forward_train(
        &self,
        node: &PlanNode,
        depth: usize,
        snapshot: Option<&FeatureSnapshot>,
    ) -> ForwardNode {
        let children: Vec<ForwardNode> = node
            .children
            .iter()
            .map(|c| self.forward_train(c, depth + 1, snapshot))
            .collect();
        let kind = node.op.kind();
        let features = self.encoder.encode_node(node, depth, snapshot);
        let child_outputs: Vec<Vec<f64>> = children.iter().map(|c| c.output.clone()).collect();
        let input = self.unit_input(kind, &features, &child_outputs);
        let (out, cache) = self.units[&kind].forward_cached(&Matrix::row_vector(&input));
        ForwardNode {
            kind,
            output: out.row(0).to_vec(),
            cache,
            actual_ms: node.actual_total_ms,
            children,
        }
    }

    /// Backward pass through the tree, accumulating gradients in the units.
    /// Returns the summed node loss of the tree.
    fn backward_tree(
        &mut self,
        fwd: &ForwardNode,
        grad_from_parent: Vec<f64>,
        node_count: f64,
    ) -> f64 {
        // Loss on this node's latency prediction (log-space MSE), averaged
        // over the plan's node count.
        let pred = fwd.output[0];
        let actual = fwd.actual_ms;
        let lp = (1.0 + pred.max(0.0)).ln();
        let la = (1.0 + actual.max(0.0)).ln();
        let loss = (lp - la).powi(2) / node_count;
        let dloss_dpred = 2.0 * (lp - la) / (1.0 + pred.max(0.0)) / node_count;

        let mut grad_output = grad_from_parent;
        if grad_output.is_empty() {
            grad_output = vec![0.0; DATA_VECTOR_DIM];
        }
        grad_output[0] += dloss_dpred;

        let mask_len = self.masks[&fwd.kind].len();
        let unit = self.units.get_mut(&fwd.kind).expect("unit exists");
        let grad_input = unit.backward_cached(&fwd.cache, &Matrix::row_vector(&grad_output));
        let grad_input = grad_input.row(0).to_vec();

        let mut total_loss = loss;
        for (slot, child) in fwd.children.iter().enumerate().take(MAX_CHILDREN) {
            let start = mask_len + slot * DATA_VECTOR_DIM;
            let child_grad = grad_input[start..start + DATA_VECTOR_DIM].to_vec();
            total_loss += self.backward_tree(child, child_grad, node_count);
        }
        // Children beyond MAX_CHILDREN (should not occur with binary plans)
        // still contribute their own node losses.
        for child in fwd.children.iter().skip(MAX_CHILDREN) {
            total_loss += self.backward_tree(child, vec![0.0; DATA_VECTOR_DIM], node_count);
        }
        total_loss
    }

    /// Train on a labeled workload for the given number of iterations
    /// (epochs over all plans).
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
        iterations: usize,
        rng: &mut R,
    ) -> TrainStats {
        let start = Instant::now();
        let optimizer = Optimizer::adam(2e-3);
        let mut final_loss = f64::INFINITY;
        let mut order: Vec<usize> = (0..workload.queries.len()).collect();
        for _ in 0..iterations {
            use rand::seq::SliceRandom;
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for &qi in &order {
                let q = &workload.queries[qi];
                let snapshot = snapshot_for(snapshots, q.env_index);
                let fwd = self.forward_train(&q.executed.root, 0, snapshot);
                let node_count = q.executed.root.node_count() as f64;
                epoch_loss += self.backward_tree(&fwd, Vec::new(), node_count);
                // One optimizer step per plan.
                for unit in self.units.values_mut() {
                    unit.step(&optimizer);
                }
            }
            final_loss = epoch_loss / workload.queries.len().max(1) as f64;
        }
        TrainStats {
            train_time_s: start.elapsed().as_secs_f64(),
            iterations,
            final_loss,
        }
    }

    /// Evaluate on a labeled workload.
    pub fn evaluate(
        &self,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
    ) -> AccuracyReport {
        let actuals = workload.actual_costs();
        let preds: Vec<f64> = workload
            .queries
            .iter()
            .map(|q| self.predict(&q.executed.root, snapshot_for(snapshots, q.env_index)))
            .collect();
        AccuracyReport::compute(&actuals, &preds)
    }

    /// Build, per operator kind, the labeled operator-level dataset
    /// (node encoding → node self time) used by feature reduction and by the
    /// auxiliary per-operator models.
    pub fn operator_datasets(
        encoder: &FeatureEncoder,
        workload: &LabeledWorkload,
        snapshots: Option<&EnvSnapshots>,
    ) -> HashMap<OperatorKind, Dataset> {
        let mut xs: HashMap<OperatorKind, Vec<Vec<f64>>> = HashMap::new();
        let mut ys: HashMap<OperatorKind, Vec<f64>> = HashMap::new();
        for q in &workload.queries {
            let snapshot = snapshot_for(snapshots, q.env_index);
            let encoded = encoder.encode_plan_nodes(&q.executed.root, snapshot);
            let nodes = q.executed.root.iter_preorder();
            for ((kind, features), node) in encoded.into_iter().zip(nodes) {
                xs.entry(kind).or_default().push(features);
                ys.entry(kind).or_default().push(node.actual_self_ms);
            }
        }
        xs.into_iter()
            .filter_map(|(kind, features)| {
                let targets = ys.remove(&kind)?;
                Dataset::new(features, targets).ok().map(|d| (kind, d))
            })
            .collect()
    }

    /// The number of node-encoding features (before masking).
    pub fn node_dim(&self) -> usize {
        self.node_dim
    }
}

// ---------------------------------------------------------------------------
// int8-quantized estimators (inference-only, quantize-at-publish)
// ---------------------------------------------------------------------------

/// An inference-only MSCN estimator whose network carries int8 weights
/// (per-layer symmetric scale, see [`qcfe_nn::quant`]). Produced by
/// quantizing a trained [`MscnEstimator`] at publish time; estimates stay
/// within a small q-error budget of the f64 model rather than being
/// bit-identical to it.
#[derive(Debug, Clone)]
pub struct QuantizedMscnEstimator {
    encoder: FeatureEncoder,
    mask: Vec<usize>,
    mlp: QuantizedMlp,
}

impl QuantizedMscnEstimator {
    /// Quantize a trained f64 estimator.
    pub fn quantize(estimator: &MscnEstimator) -> Self {
        QuantizedMscnEstimator {
            encoder: estimator.encoder().clone(),
            mask: estimator.mask().to_vec(),
            mlp: QuantizedMlp::quantize(estimator.model()),
        }
    }

    /// Reassemble from persisted parts (the `QCFW` v2 decode path), with
    /// the same structural validation as [`MscnEstimator::from_parts`].
    pub fn from_parts(
        encoder: FeatureEncoder,
        mask: Vec<usize>,
        mlp: QuantizedMlp,
    ) -> Result<Self, crate::model_codec::ModelCodecError> {
        use crate::model_codec::ModelCodecError;
        let plan_dim = encoder.plan_dim();
        if let Some(&bad) = mask.iter().find(|&&i| i >= plan_dim) {
            return Err(ModelCodecError::Malformed(format!(
                "quantized MSCN mask index {bad} out of range for plan dim {plan_dim}"
            )));
        }
        if mlp.input_dim() != mask.len() {
            return Err(ModelCodecError::Malformed(format!(
                "quantized MSCN network input dim {} does not match mask length {}",
                mlp.input_dim(),
                mask.len()
            )));
        }
        if mlp.output_dim() != 1 {
            return Err(ModelCodecError::Malformed(format!(
                "quantized MSCN network output dim {} is not scalar",
                mlp.output_dim()
            )));
        }
        Ok(QuantizedMscnEstimator { encoder, mask, mlp })
    }

    /// Predict the latency of a plan under an (optional) snapshot.
    pub fn predict(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        let features = self.encoder.encode_plan(root, snapshot);
        self.mlp
            .predict_one(&project(&features, &self.mask))
            .max(1e-6)
    }

    /// Batched prediction; bit-identical to per-plan
    /// [`QuantizedMscnEstimator::predict`].
    pub fn predict_batch(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = plans
            .iter()
            .map(|p| project(&self.encoder.encode_plan(p, snapshot), &self.mask))
            .collect();
        self.mlp
            .predict_rows(&rows)
            .into_iter()
            .map(|p| p.max(1e-6))
            .collect()
    }

    /// The quantized network.
    pub fn model(&self) -> &QuantizedMlp {
        &self.mlp
    }

    /// The feature mask in effect.
    pub fn mask(&self) -> &[usize] {
        &self.mask
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }
}

/// An inference-only QPPNet estimator whose per-operator neural units carry
/// int8 weights. Rides the exact same operator-grouped batched engine
/// ([`qpp_batched_forward`]) as the f64 [`QppNetEstimator`].
#[derive(Debug, Clone)]
pub struct QuantizedQppNetEstimator {
    encoder: FeatureEncoder,
    masks: HashMap<OperatorKind, Vec<usize>>,
    units: HashMap<OperatorKind, QuantizedMlp>,
    node_dim: usize,
}

impl QuantizedQppNetEstimator {
    /// Quantize every neural unit of a trained f64 estimator.
    pub fn quantize(estimator: &QppNetEstimator) -> Self {
        QuantizedQppNetEstimator {
            encoder: estimator.encoder().clone(),
            masks: estimator.masks().clone(),
            units: estimator
                .units()
                .iter()
                .map(|(kind, unit)| (*kind, QuantizedMlp::quantize(unit)))
                .collect(),
            node_dim: estimator.node_dim(),
        }
    }

    /// Reassemble from persisted parts (the `QCFW` v2 decode path), with
    /// the same structural validation as [`QppNetEstimator::from_parts`].
    pub fn from_parts(
        encoder: FeatureEncoder,
        masks: HashMap<OperatorKind, Vec<usize>>,
        units: HashMap<OperatorKind, QuantizedMlp>,
    ) -> Result<Self, crate::model_codec::ModelCodecError> {
        use crate::model_codec::ModelCodecError;
        let node_dim = encoder.node_dim();
        for kind in OperatorKind::ALL {
            let mask = masks.get(&kind).ok_or_else(|| {
                ModelCodecError::Malformed(format!("quantized QPPNet mask missing for {kind:?}"))
            })?;
            if let Some(&bad) = mask.iter().find(|&&i| i >= node_dim) {
                return Err(ModelCodecError::Malformed(format!(
                    "quantized QPPNet {kind:?} mask index {bad} out of range for node dim {node_dim}"
                )));
            }
            let unit = units.get(&kind).ok_or_else(|| {
                ModelCodecError::Malformed(format!(
                    "quantized QPPNet neural unit missing for {kind:?}"
                ))
            })?;
            let expected_input = mask.len() + MAX_CHILDREN * DATA_VECTOR_DIM;
            if unit.input_dim() != expected_input {
                return Err(ModelCodecError::Malformed(format!(
                    "quantized QPPNet {kind:?} unit input dim {} does not match mask-derived dim {expected_input}",
                    unit.input_dim()
                )));
            }
            if unit.output_dim() != DATA_VECTOR_DIM {
                return Err(ModelCodecError::Malformed(format!(
                    "quantized QPPNet {kind:?} unit output dim {} is not the data-vector dim {DATA_VECTOR_DIM}",
                    unit.output_dim()
                )));
            }
        }
        Ok(QuantizedQppNetEstimator {
            encoder,
            masks,
            units,
            node_dim,
        })
    }

    /// Predict the latency of a single plan (batch of one).
    pub fn predict(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        self.predict_batch(&[root], snapshot)[0]
    }

    /// Operator-grouped batched inference; see
    /// [`QppNetEstimator::predict_batch`].
    pub fn predict_batch(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> Vec<f64> {
        self.predict_batch_with_stats(plans, snapshot).0
    }

    /// Batched inference plus engine statistics.
    pub fn predict_batch_with_stats(
        &self,
        plans: &[&PlanNode],
        snapshot: Option<&FeatureSnapshot>,
    ) -> (Vec<f64>, QppBatchStats) {
        qpp_batched_forward(
            &self.encoder,
            &self.masks,
            &self.units,
            self.node_dim,
            plans,
            snapshot,
        )
    }

    /// The per-operator feature masks.
    pub fn masks(&self) -> &HashMap<OperatorKind, Vec<usize>> {
        &self.masks
    }

    /// The per-operator quantized neural units.
    pub fn units(&self) -> &HashMap<OperatorKind, QuantizedMlp> {
        &self.units
    }

    /// The encoder in use.
    pub fn encoder(&self) -> &FeatureEncoder {
        &self.encoder
    }

    /// The number of node-encoding features (before masking).
    pub fn node_dim(&self) -> usize {
        self.node_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_workload;
    use qcfe_db::env::{DbEnvironment, HardwareProfile};
    use qcfe_workloads::BenchmarkKind;
    use rand::SeedableRng;

    fn workload() -> (LabeledWorkload, FeatureEncoder, FeatureEncoder) {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let envs = DbEnvironment::sample_knob_configs(2, HardwareProfile::h1(), &mut rng);
        let w = collect_workload(&bench, &envs, 30, 17);
        let plain = FeatureEncoder::new(&bench.catalog, false);
        let with_fs = FeatureEncoder::new(&bench.catalog, true);
        (w, plain, with_fs)
    }

    #[test]
    fn pg_estimator_predicts_positive_costs() {
        let (w, _, _) = workload();
        let pg = PgEstimator;
        let report = pg.evaluate(&w);
        assert!(report.mean_q_error >= 1.0);
        assert!(report.samples == w.len());
        assert!(w.queries.iter().all(|q| pg.predict(&q.executed.root) > 0.0));
    }

    #[test]
    fn mscn_trains_and_beats_a_constant_predictor() {
        let (w, encoder, _) = workload();
        let (train, test) = w.split(0.8, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let (mscn, stats) = MscnEstimator::train(encoder, &train, None, None, 60, &mut rng);
        assert!(stats.train_time_s > 0.0);
        assert!(stats.final_loss.is_finite());
        let report = mscn.evaluate(&test, None);
        assert!(report.mean_q_error.is_finite());
        assert!(report.pearson > 0.0, "pearson {}", report.pearson);
        let latency = mscn.inference_latency_us(&test, None);
        assert!(latency.scalar_us > 0.0);
        assert!(latency.batched_us > 0.0);
        assert_eq!(mscn.mask().len(), mscn.encoder().plan_dim());
    }

    #[test]
    fn qppnet_trains_on_plan_trees_and_predicts() {
        let (w, _, encoder_fs) = workload();
        let (train, test) = w.split(0.8, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut qpp = QppNetEstimator::new(encoder_fs, None, &mut rng);
        let before = qpp.evaluate(&test, None);
        let stats = qpp.train(&train, None, 15, &mut rng);
        let after = qpp.evaluate(&test, None);
        assert!(stats.final_loss.is_finite());
        assert!(
            after.mean_q_error <= before.mean_q_error * 2.0,
            "training should not blow up: before {} after {}",
            before.mean_q_error,
            after.mean_q_error
        );
        assert!(after.pearson.is_finite());
    }

    #[test]
    fn qppnet_batched_inference_matches_scalar_bit_for_bit() {
        let (w, _, encoder_fs) = workload();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut qpp = QppNetEstimator::new(encoder_fs, None, &mut rng);
        qpp.train(&w, None, 2, &mut rng);
        let plans: Vec<&PlanNode> = w.queries.iter().map(|q| &q.executed.root).collect();
        let batched = qpp.predict_batch(&plans, None);
        for (plan, b) in plans.iter().zip(&batched) {
            let reference = qpp.predict_scalar(plan, None);
            assert_eq!(
                reference.to_bits(),
                b.to_bits(),
                "batched {b} != reference scalar walk {reference}"
            );
            let single = qpp.predict(plan, None);
            assert_eq!(
                single.to_bits(),
                b.to_bits(),
                "batch-of-one {single} != {b}"
            );
        }
    }

    /// Tentpole acceptance: batched QPPNet inference is operator-grouped —
    /// exactly one neural-unit forward per non-empty `(stage, kind)` bucket,
    /// far fewer than one per node.
    #[test]
    fn qppnet_batching_groups_forwards_by_stage_and_operator() {
        let (w, _, encoder_fs) = workload();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let qpp = QppNetEstimator::new(encoder_fs, None, &mut rng);
        let plans: Vec<&PlanNode> = w.queries.iter().map(|q| &q.executed.root).collect();
        let (preds, stats) = qpp.predict_batch_with_stats(&plans, None);
        assert_eq!(preds.len(), plans.len());

        // Recompute the expected bucket count independently of the engine:
        // the distinct (height, kind) pairs across every node in the batch.
        fn heights(node: &PlanNode, acc: &mut Vec<(usize, OperatorKind)>) -> usize {
            let h = node
                .children
                .iter()
                .map(|c| heights(c, acc) + 1)
                .max()
                .unwrap_or(0);
            acc.push((h, node.op.kind()));
            h
        }
        let mut pairs = Vec::new();
        let mut max_height = 0;
        let mut total_nodes = 0;
        for plan in &plans {
            max_height = max_height.max(heights(plan, &mut pairs));
            total_nodes += plan.node_count();
        }
        pairs.sort_unstable();
        pairs.dedup();

        assert_eq!(stats.forward_calls, pairs.len());
        assert_eq!(stats.stages, max_height + 1);
        assert_eq!(stats.nodes, total_nodes);
        assert!(
            stats.forward_calls < total_nodes / 2,
            "grouping must coalesce forwards: {} calls over {} nodes",
            stats.forward_calls,
            total_nodes
        );

        // A single-plan batch still groups same-kind nodes at equal heights.
        let (_, single) = qpp.predict_batch_with_stats(&plans[..1], None);
        assert!(single.forward_calls <= single.nodes);
    }

    /// Quantization acceptance: int8 estimates stay within a 1% mean
    /// q-error degradation of the f64 model on the seeded workload.
    #[test]
    fn quantized_estimators_stay_within_q_error_budget() {
        let (w, encoder, encoder_fs) = workload();
        let (train, test) = w.split(0.8, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let actuals = test.actual_costs();

        let (mscn, _) = MscnEstimator::train(encoder, &train, None, None, 60, &mut rng);
        let qmscn = QuantizedMscnEstimator::quantize(&mscn);
        let plans: Vec<&PlanNode> = test.queries.iter().map(|q| &q.executed.root).collect();
        let f64_report = AccuracyReport::compute(&actuals, &mscn.predict_batch(&plans, None));
        let q_report = AccuracyReport::compute(&actuals, &qmscn.predict_batch(&plans, None));
        assert!(
            q_report.mean_q_error <= f64_report.mean_q_error * 1.01,
            "quantized MSCN q-error {} vs f64 {}",
            q_report.mean_q_error,
            f64_report.mean_q_error
        );

        let mut qpp = QppNetEstimator::new(encoder_fs, None, &mut rng);
        qpp.train(&train, None, 10, &mut rng);
        let qqpp = QuantizedQppNetEstimator::quantize(&qpp);
        let f64_report = AccuracyReport::compute(&actuals, &qpp.predict_batch(&plans, None));
        let q_report = AccuracyReport::compute(&actuals, &qqpp.predict_batch(&plans, None));
        assert!(
            q_report.mean_q_error <= f64_report.mean_q_error * 1.01,
            "quantized QPPNet q-error {} vs f64 {}",
            q_report.mean_q_error,
            f64_report.mean_q_error
        );
    }

    /// The quantized QPPNet rides the same operator-grouped engine: batched
    /// and batch-of-one predictions are bit-identical, and grouping stats
    /// match the f64 estimator's (same plans, same buckets).
    #[test]
    fn quantized_qppnet_batching_is_self_consistent() {
        let (w, _, encoder_fs) = workload();
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut qpp = QppNetEstimator::new(encoder_fs, None, &mut rng);
        qpp.train(&w, None, 2, &mut rng);
        let qqpp = QuantizedQppNetEstimator::quantize(&qpp);
        let plans: Vec<&PlanNode> = w.queries.iter().map(|q| &q.executed.root).collect();
        let (batched, qstats) = qqpp.predict_batch_with_stats(&plans, None);
        for (plan, b) in plans.iter().zip(&batched) {
            let single = qqpp.predict(plan, None);
            assert_eq!(
                single.to_bits(),
                b.to_bits(),
                "batch-of-one {single} != {b}"
            );
        }
        let (_, fstats) = qpp.predict_batch_with_stats(&plans, None);
        assert_eq!(qstats, fstats);
    }

    #[test]
    fn operator_datasets_cover_plan_operators() {
        let (w, encoder, _) = workload();
        let datasets = QppNetEstimator::operator_datasets(&encoder, &w, None);
        assert!(
            datasets.contains_key(&OperatorKind::SeqScan)
                || datasets.contains_key(&OperatorKind::IndexScan)
        );
        for (kind, d) in &datasets {
            assert_eq!(d.dim(), encoder.node_dim(), "{kind:?}");
            assert!(!d.is_empty());
        }
    }
}

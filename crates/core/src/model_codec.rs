//! Estimator-level payloads of the versioned `QCFW` weight codec.
//!
//! `qcfe_nn::codec` owns the `QCFW` framing (magic, version, length,
//! CRC-32) and the raw [`Mlp`] record; this module composes full trained
//! estimators on top of it, so a serving node can persist everything it
//! needs to answer without retraining:
//!
//! * **MSCN** ([`PAYLOAD_MSCN`]): the [`FeatureEncoder`] (tables, columns,
//!   snapshot flag), the plan-level feature mask from feature reduction,
//!   and the trained network;
//! * **QPPNet** ([`PAYLOAD_QPPNET`]): the encoder plus, per operator kind,
//!   its feature mask and neural unit;
//! * **int8 MSCN / QPPNet** ([`PAYLOAD_MSCN_INT8`] /
//!   [`PAYLOAD_QPPNET_INT8`], `QCFW` v2): the same layouts with every Mlp
//!   record replaced by a quantized-Mlp record — the publish-time int8
//!   representation served by [`crate::estimators::QuantizedMscnEstimator`]
//!   and [`crate::estimators::QuantizedQppNetEstimator`].
//!
//! # Payload layouts (all little-endian, inside a `QCFW` frame)
//!
//! Encoder record (shared prefix of all payloads):
//!
//! ```text
//! u8  include_snapshot (0 or 1)
//! u32 table count;   per table:  u32 byte length + UTF-8 bytes
//! u32 column count;  per column: table string + column string
//! ```
//!
//! MSCN payload: encoder record, `u32` mask length + that many `u32`
//! feature indices, one Mlp record.
//!
//! QPPNet payload: encoder record, `u32` unit count, then per unit one
//! `u8` operator index ([`OperatorKind::index`]), a mask (as above over the
//! *node* encoding) and one Mlp record. Units are written in
//! [`OperatorKind::ALL`] order, so encoding is deterministic.
//!
//! The int8 payloads are identical except that each Mlp record is a
//! quantized-Mlp record (tagged per-layer scheme, see `qcfe_nn::codec`).
//!
//! Every decode path is validated structurally ([`MscnEstimator::from_parts`]
//! / [`QppNetEstimator::from_parts`] and the quantized equivalents), so a
//! corrupted-but-checksum-colliding buffer still cannot produce an
//! estimator that panics at inference time. Coefficients round-trip
//! bit-exactly: a reloaded estimator — quantized or not — produces
//! *identical* estimates.

use crate::cost_model::CostModel;
use crate::encoding::FeatureEncoder;
use crate::estimators::{
    MscnEstimator, QppNetEstimator, QuantizedMscnEstimator, QuantizedQppNetEstimator,
};
use qcfe_db::plan::OperatorKind;
use qcfe_nn::codec::{
    frame, read_mlp, read_quantized_mlp, unframe, write_mlp, write_quantized_mlp, Reader,
    WeightsCodecError,
};
use qcfe_nn::{Mlp, QuantizedMlp};
use std::collections::HashMap;
use std::sync::Arc;

/// `QCFW` payload kind of a persisted [`MscnEstimator`].
pub const PAYLOAD_MSCN: u8 = 1;

/// `QCFW` payload kind of a persisted [`QppNetEstimator`].
pub const PAYLOAD_QPPNET: u8 = 2;

/// `QCFW` payload kind of a persisted [`QuantizedMscnEstimator`].
///
/// (Kind 3 is `qcfe_nn`'s raw quantized-Mlp payload.)
pub const PAYLOAD_MSCN_INT8: u8 = 4;

/// `QCFW` payload kind of a persisted [`QuantizedQppNetEstimator`].
pub const PAYLOAD_QPPNET_INT8: u8 = 5;

/// Errors produced when decoding persisted estimator weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelCodecError {
    /// Framing or Mlp-record failure from the underlying `QCFW` codec.
    Weights(WeightsCodecError),
    /// An operator index outside [`OperatorKind::ALL`].
    UnknownOperator(u8),
    /// The frame decodes but holds a different payload kind than asked for.
    UnexpectedPayload(u8),
    /// The content decoded but violates a structural invariant.
    Malformed(String),
}

impl std::fmt::Display for ModelCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelCodecError::Weights(e) => write!(f, "{e}"),
            ModelCodecError::UnknownOperator(i) => {
                write!(f, "unknown operator index {i} in QCFW model payload")
            }
            ModelCodecError::UnexpectedPayload(k) => {
                write!(f, "unexpected QCFW payload kind {k} for this estimator")
            }
            ModelCodecError::Malformed(what) => write!(f, "malformed QCFW model payload: {what}"),
        }
    }
}

impl std::error::Error for ModelCodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelCodecError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WeightsCodecError> for ModelCodecError {
    fn from(e: WeightsCodecError) -> Self {
        ModelCodecError::Weights(e)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(r: &mut Reader<'_>) -> Result<String, ModelCodecError> {
    let len = r.u32()? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| ModelCodecError::Malformed("invalid UTF-8 in encoder string".into()))
}

fn write_encoder(encoder: &FeatureEncoder, out: &mut Vec<u8>) {
    out.push(encoder.includes_snapshot() as u8);
    out.extend_from_slice(&(encoder.tables().len() as u32).to_le_bytes());
    for table in encoder.tables() {
        put_str(out, table);
    }
    out.extend_from_slice(&(encoder.columns().len() as u32).to_le_bytes());
    for (table, column) in encoder.columns() {
        put_str(out, table);
        put_str(out, column);
    }
}

fn read_encoder(r: &mut Reader<'_>) -> Result<FeatureEncoder, ModelCodecError> {
    let include_snapshot = match r.u8()? {
        0 => false,
        1 => true,
        other => {
            return Err(ModelCodecError::Malformed(format!(
                "snapshot flag must be 0 or 1, got {other}"
            )))
        }
    };
    let table_count = r.u32()? as usize;
    let mut tables = Vec::with_capacity(table_count.min(1024));
    for _ in 0..table_count {
        tables.push(read_str(r)?);
    }
    let column_count = r.u32()? as usize;
    let mut columns = Vec::with_capacity(column_count.min(4096));
    for _ in 0..column_count {
        let table = read_str(r)?;
        let column = read_str(r)?;
        columns.push((table, column));
    }
    Ok(FeatureEncoder::from_parts(
        tables,
        columns,
        include_snapshot,
    ))
}

fn write_mask(mask: &[usize], out: &mut Vec<u8>) {
    out.extend_from_slice(&(mask.len() as u32).to_le_bytes());
    for &index in mask {
        out.extend_from_slice(&(index as u32).to_le_bytes());
    }
}

fn read_mask(r: &mut Reader<'_>) -> Result<Vec<usize>, ModelCodecError> {
    let len = r.u32()? as usize;
    // Bound the declared count by what the buffer can still hold before
    // allocating (4 bytes per index).
    if len > r.remaining() / 4 {
        return Err(WeightsCodecError::Truncated.into());
    }
    let mut mask = Vec::with_capacity(len);
    for _ in 0..len {
        mask.push(r.u32()? as usize);
    }
    Ok(mask)
}

impl MscnEstimator {
    /// Serialise the trained estimator — encoder, feature mask and network
    /// — into a framed `QCFW` buffer ([`PAYLOAD_MSCN`]).
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_encoder(self.encoder(), &mut payload);
        write_mask(self.mask(), &mut payload);
        write_mlp(self.model(), &mut payload);
        frame(PAYLOAD_MSCN, &payload)
    }

    /// Parse a framed `QCFW` buffer written by
    /// [`MscnEstimator::to_weight_bytes`]. The reloaded estimator predicts
    /// bit-identically to the one that was saved.
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_MSCN {
            return Err(ModelCodecError::UnexpectedPayload(kind));
        }
        decode_mscn_payload(payload)
    }
}

/// Decode an already-unframed [`PAYLOAD_MSCN`] payload.
fn decode_mscn_payload(payload: &[u8]) -> Result<MscnEstimator, ModelCodecError> {
    let mut r = Reader::new(payload);
    let encoder = read_encoder(&mut r)?;
    let mask = read_mask(&mut r)?;
    let mlp = read_mlp(&mut r)?;
    r.finish().map_err(ModelCodecError::Weights)?;
    MscnEstimator::from_parts(encoder, mask, mlp)
}

impl QppNetEstimator {
    /// Serialise the trained estimator — encoder plus every operator's
    /// mask and neural unit — into a framed `QCFW` buffer
    /// ([`PAYLOAD_QPPNET`]). Units are written in [`OperatorKind::ALL`]
    /// order, so the encoding is deterministic.
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_encoder(self.encoder(), &mut payload);
        payload.extend_from_slice(&(OperatorKind::ALL.len() as u32).to_le_bytes());
        for kind in OperatorKind::ALL {
            payload.push(kind.index() as u8);
            write_mask(&self.masks()[&kind], &mut payload);
            write_mlp(&self.units()[&kind], &mut payload);
        }
        frame(PAYLOAD_QPPNET, &payload)
    }

    /// Parse a framed `QCFW` buffer written by
    /// [`QppNetEstimator::to_weight_bytes`]. The reloaded estimator
    /// predicts bit-identically to the one that was saved.
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_QPPNET {
            return Err(ModelCodecError::UnexpectedPayload(kind));
        }
        decode_qppnet_payload(payload)
    }
}

/// Decode an already-unframed [`PAYLOAD_QPPNET`] payload.
fn decode_qppnet_payload(payload: &[u8]) -> Result<QppNetEstimator, ModelCodecError> {
    let mut r = Reader::new(payload);
    let encoder = read_encoder(&mut r)?;
    let unit_count = r.u32()? as usize;
    // Duplicates are rejected below, so any declared count beyond the
    // operator alphabet is guaranteed-malformed — bail before the count
    // can size an allocation.
    if unit_count > OperatorKind::ALL.len() {
        return Err(ModelCodecError::Malformed(format!(
            "{unit_count} neural units declared, but only {} operator kinds exist",
            OperatorKind::ALL.len()
        )));
    }
    let mut masks: HashMap<OperatorKind, Vec<usize>> = HashMap::with_capacity(unit_count);
    let mut units: HashMap<OperatorKind, Mlp> = HashMap::with_capacity(unit_count);
    for _ in 0..unit_count {
        let index = r.u8()?;
        let kind = *OperatorKind::ALL
            .get(index as usize)
            .ok_or(ModelCodecError::UnknownOperator(index))?;
        let mask = read_mask(&mut r)?;
        let unit = read_mlp(&mut r)?;
        if masks.insert(kind, mask).is_some() {
            return Err(ModelCodecError::Malformed(format!(
                "duplicate neural unit for {kind:?}"
            )));
        }
        units.insert(kind, unit);
    }
    r.finish().map_err(ModelCodecError::Weights)?;
    QppNetEstimator::from_parts(encoder, masks, units)
}

impl QuantizedMscnEstimator {
    /// Serialise the quantized estimator — encoder, feature mask and int8
    /// network — into a framed `QCFW` buffer ([`PAYLOAD_MSCN_INT8`]).
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_encoder(self.encoder(), &mut payload);
        write_mask(self.mask(), &mut payload);
        write_quantized_mlp(self.model(), &mut payload);
        frame(PAYLOAD_MSCN_INT8, &payload)
    }

    /// Parse a framed `QCFW` buffer written by
    /// [`QuantizedMscnEstimator::to_weight_bytes`]. The reloaded estimator
    /// predicts bit-identically to the one that was saved.
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_MSCN_INT8 {
            return Err(ModelCodecError::UnexpectedPayload(kind));
        }
        decode_mscn_int8_payload(payload)
    }
}

/// Decode an already-unframed [`PAYLOAD_MSCN_INT8`] payload.
fn decode_mscn_int8_payload(payload: &[u8]) -> Result<QuantizedMscnEstimator, ModelCodecError> {
    let mut r = Reader::new(payload);
    let encoder = read_encoder(&mut r)?;
    let mask = read_mask(&mut r)?;
    let mlp = read_quantized_mlp(&mut r)?;
    r.finish().map_err(ModelCodecError::Weights)?;
    QuantizedMscnEstimator::from_parts(encoder, mask, mlp)
}

impl QuantizedQppNetEstimator {
    /// Serialise the quantized estimator — encoder plus every operator's
    /// mask and int8 neural unit — into a framed `QCFW` buffer
    /// ([`PAYLOAD_QPPNET_INT8`]). Units are written in
    /// [`OperatorKind::ALL`] order, so the encoding is deterministic.
    pub fn to_weight_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        write_encoder(self.encoder(), &mut payload);
        payload.extend_from_slice(&(OperatorKind::ALL.len() as u32).to_le_bytes());
        for kind in OperatorKind::ALL {
            payload.push(kind.index() as u8);
            write_mask(&self.masks()[&kind], &mut payload);
            write_quantized_mlp(&self.units()[&kind], &mut payload);
        }
        frame(PAYLOAD_QPPNET_INT8, &payload)
    }

    /// Parse a framed `QCFW` buffer written by
    /// [`QuantizedQppNetEstimator::to_weight_bytes`]. The reloaded
    /// estimator predicts bit-identically to the one that was saved.
    pub fn from_weight_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let (kind, payload) = unframe(bytes)?;
        if kind != PAYLOAD_QPPNET_INT8 {
            return Err(ModelCodecError::UnexpectedPayload(kind));
        }
        decode_qppnet_int8_payload(payload)
    }
}

/// Decode an already-unframed [`PAYLOAD_QPPNET_INT8`] payload.
fn decode_qppnet_int8_payload(payload: &[u8]) -> Result<QuantizedQppNetEstimator, ModelCodecError> {
    let mut r = Reader::new(payload);
    let encoder = read_encoder(&mut r)?;
    let unit_count = r.u32()? as usize;
    if unit_count > OperatorKind::ALL.len() {
        return Err(ModelCodecError::Malformed(format!(
            "{unit_count} neural units declared, but only {} operator kinds exist",
            OperatorKind::ALL.len()
        )));
    }
    let mut masks: HashMap<OperatorKind, Vec<usize>> = HashMap::with_capacity(unit_count);
    let mut units: HashMap<OperatorKind, QuantizedMlp> = HashMap::with_capacity(unit_count);
    for _ in 0..unit_count {
        let index = r.u8()?;
        let kind = *OperatorKind::ALL
            .get(index as usize)
            .ok_or(ModelCodecError::UnknownOperator(index))?;
        let mask = read_mask(&mut r)?;
        let unit = read_quantized_mlp(&mut r)?;
        if masks.insert(kind, mask).is_some() {
            return Err(ModelCodecError::Malformed(format!(
                "duplicate neural unit for {kind:?}"
            )));
        }
        units.insert(kind, unit);
    }
    r.finish().map_err(ModelCodecError::Weights)?;
    QuantizedQppNetEstimator::from_parts(encoder, masks, units)
}

/// A decoded model-weight file: whichever trained estimator the `QCFW`
/// payload held. This is what the serving store hands back on load — ready
/// to be registered behind `Arc<dyn CostModel>` without retraining.
#[derive(Debug, Clone)]
pub enum PersistedModel {
    /// An MSCN-style flat estimator (plain or QCFE variant).
    Mscn(MscnEstimator),
    /// A QPPNet-style plan-structured estimator (plain or QCFE variant).
    QppNet(QppNetEstimator),
    /// An int8-quantized MSCN-style estimator (inference only).
    MscnInt8(QuantizedMscnEstimator),
    /// An int8-quantized QPPNet-style estimator (inference only).
    QppNetInt8(QuantizedQppNetEstimator),
}

impl PersistedModel {
    /// The `QCFW` payload kind this model serialises as.
    pub fn payload_kind(&self) -> u8 {
        match self {
            PersistedModel::Mscn(_) => PAYLOAD_MSCN,
            PersistedModel::QppNet(_) => PAYLOAD_QPPNET,
            PersistedModel::MscnInt8(_) => PAYLOAD_MSCN_INT8,
            PersistedModel::QppNetInt8(_) => PAYLOAD_QPPNET_INT8,
        }
    }

    /// Display name of the contained estimator family.
    pub fn name(&self) -> &'static str {
        match self {
            PersistedModel::Mscn(_) => "MSCN",
            PersistedModel::QppNet(_) => "QPPNet",
            PersistedModel::MscnInt8(_) => "MSCN-int8",
            PersistedModel::QppNetInt8(_) => "QPPNet-int8",
        }
    }

    /// Whether the model carries int8-quantized weights.
    pub fn is_quantized(&self) -> bool {
        matches!(
            self,
            PersistedModel::MscnInt8(_) | PersistedModel::QppNetInt8(_)
        )
    }

    /// Quantize the model's weights to int8 (symmetric, per layer). f64
    /// models become their inference-only int8 counterparts; an already
    /// quantized model is returned unchanged.
    pub fn quantize(self) -> Self {
        match self {
            PersistedModel::Mscn(m) => {
                PersistedModel::MscnInt8(QuantizedMscnEstimator::quantize(&m))
            }
            PersistedModel::QppNet(q) => {
                PersistedModel::QppNetInt8(QuantizedQppNetEstimator::quantize(&q))
            }
            quantized => quantized,
        }
    }

    /// Serialise into a framed `QCFW` buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PersistedModel::Mscn(m) => m.to_weight_bytes(),
            PersistedModel::QppNet(q) => q.to_weight_bytes(),
            PersistedModel::MscnInt8(m) => m.to_weight_bytes(),
            PersistedModel::QppNetInt8(q) => q.to_weight_bytes(),
        }
    }

    /// Parse any estimator-bearing `QCFW` buffer, dispatching on the
    /// frame's payload kind. The frame is validated (including its CRC)
    /// exactly once.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelCodecError> {
        let (kind, payload) = unframe(bytes)?;
        match kind {
            PAYLOAD_MSCN => Ok(PersistedModel::Mscn(decode_mscn_payload(payload)?)),
            PAYLOAD_QPPNET => Ok(PersistedModel::QppNet(decode_qppnet_payload(payload)?)),
            PAYLOAD_MSCN_INT8 => Ok(PersistedModel::MscnInt8(decode_mscn_int8_payload(payload)?)),
            PAYLOAD_QPPNET_INT8 => Ok(PersistedModel::QppNetInt8(decode_qppnet_int8_payload(
                payload,
            )?)),
            other => Err(ModelCodecError::Weights(WeightsCodecError::UnknownPayload(
                other,
            ))),
        }
    }

    /// Hand the model to the serving layer as a shared [`CostModel`].
    pub fn into_cost_model(self) -> Arc<dyn CostModel> {
        match self {
            PersistedModel::Mscn(m) => Arc::new(m),
            PersistedModel::QppNet(q) => Arc::new(q),
            PersistedModel::MscnInt8(m) => Arc::new(m),
            PersistedModel::QppNetInt8(q) => Arc::new(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_workload;
    use crate::estimators::EnvSnapshots;
    use crate::snapshot::FeatureSnapshot;
    use qcfe_db::env::{DbEnvironment, HardwareProfile};
    use qcfe_db::plan::PlanNode;
    use qcfe_workloads::BenchmarkKind;
    use rand::SeedableRng;

    fn fixture() -> (
        crate::collect::LabeledWorkload,
        EnvSnapshots,
        FeatureEncoder,
    ) {
        let bench = BenchmarkKind::Sysbench.build(0.0005, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let envs = DbEnvironment::sample_knob_configs(2, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, 25, 9);
        let snapshots: EnvSnapshots = (0..envs.len())
            .map(|env_index| {
                let executions: Vec<_> = workload
                    .for_environment(env_index)
                    .iter()
                    .map(|q| q.executed.clone())
                    .collect();
                Some(FeatureSnapshot::fit_from_executions(&executions))
            })
            .collect();
        let encoder = FeatureEncoder::new(&bench.catalog, true);
        (workload, snapshots, encoder)
    }

    #[test]
    fn mscn_weights_roundtrip_bit_exactly() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (mscn, _) =
            MscnEstimator::train(encoder, &workload, Some(&snapshots), None, 6, &mut rng);
        let bytes = mscn.to_weight_bytes();
        let back = MscnEstimator::from_weight_bytes(&bytes).expect("decodes");
        assert_eq!(back.encoder(), mscn.encoder());
        assert_eq!(back.mask(), mscn.mask());
        let snapshot = snapshots[0].as_ref();
        for q in &workload.queries {
            let a = mscn.predict(&q.executed.root, snapshot);
            let b = back.predict(&q.executed.root, snapshot);
            assert_eq!(a.to_bits(), b.to_bits(), "reloaded MSCN must be bit-exact");
        }
    }

    #[test]
    fn qppnet_weights_roundtrip_bit_exactly() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut qpp = QppNetEstimator::new(encoder, None, &mut rng);
        qpp.train(&workload, Some(&snapshots), 1, &mut rng);
        let bytes = qpp.to_weight_bytes();
        let back = QppNetEstimator::from_weight_bytes(&bytes).expect("decodes");
        assert_eq!(back.encoder(), qpp.encoder());
        assert_eq!(back.masks(), qpp.masks());
        let snapshot = snapshots[1].as_ref();
        let plans: Vec<&PlanNode> = workload.queries.iter().map(|q| &q.executed.root).collect();
        let a = qpp.predict_batch(&plans, snapshot);
        let b = back.predict_batch(&plans, snapshot);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "reloaded QPPNet must be bit-exact"
            );
        }
    }

    #[test]
    fn persisted_model_dispatches_on_payload_kind() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (mscn, _) = MscnEstimator::train(
            encoder.clone(),
            &workload,
            Some(&snapshots),
            None,
            3,
            &mut rng,
        );
        let qpp = QppNetEstimator::new(encoder, None, &mut rng);

        let mscn_bytes = PersistedModel::Mscn(mscn).to_bytes();
        let qpp_bytes = PersistedModel::QppNet(qpp).to_bytes();
        assert!(matches!(
            PersistedModel::from_bytes(&mscn_bytes).expect("mscn decodes"),
            PersistedModel::Mscn(_)
        ));
        assert!(matches!(
            PersistedModel::from_bytes(&qpp_bytes).expect("qpp decodes"),
            PersistedModel::QppNet(_)
        ));
        // Asking a specific estimator to decode the other family fails
        // typed.
        assert_eq!(
            MscnEstimator::from_weight_bytes(&qpp_bytes).unwrap_err(),
            ModelCodecError::UnexpectedPayload(PAYLOAD_QPPNET)
        );
        assert_eq!(
            QppNetEstimator::from_weight_bytes(&mscn_bytes).unwrap_err(),
            ModelCodecError::UnexpectedPayload(PAYLOAD_MSCN)
        );
        // The cost-model adapter serves predictions without retraining.
        let model = PersistedModel::from_bytes(&mscn_bytes)
            .expect("decodes")
            .into_cost_model();
        let pred = model.predict_plan(&workload.queries[0].executed.root, None);
        assert!(pred.is_finite() && pred > 0.0);
    }

    #[test]
    fn estimator_payload_corruption_is_rejected_with_typed_errors() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let (mscn, _) =
            MscnEstimator::train(encoder, &workload, Some(&snapshots), None, 3, &mut rng);
        let bytes = mscn.to_weight_bytes();

        // Framing-level corruption surfaces the underlying QCFW error.
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() / 2);
        assert_eq!(
            MscnEstimator::from_weight_bytes(&truncated).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::Truncated)
        );
        let mut flipped = bytes.clone();
        flipped[0] = b'X';
        assert_eq!(
            PersistedModel::from_bytes(&flipped).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::BadMagic)
        );
        let mid = bytes.len() / 2;
        let mut corrupt = bytes.clone();
        corrupt[mid] ^= 0x01;
        assert!(matches!(
            PersistedModel::from_bytes(&corrupt).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::Checksum { .. })
        ));

        // Structural corruption behind a *valid* checksum (re-framed) is
        // still rejected: an out-of-range mask index cannot reach
        // inference.
        let (_, payload) = unframe(&bytes).expect("valid frame");
        let mut r = Reader::new(payload);
        let encoder = read_encoder(&mut r).expect("encoder decodes");
        let mask_offset = payload.len() - r.remaining();
        let mut rigged = payload.to_vec();
        // First mask index lives right after its u32 length.
        rigged[mask_offset + 4..mask_offset + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let reframed = frame(PAYLOAD_MSCN, &rigged);
        match MscnEstimator::from_weight_bytes(&reframed).unwrap_err() {
            ModelCodecError::Malformed(msg) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
        let _ = encoder;
    }

    #[test]
    fn qppnet_huge_unit_count_is_rejected_before_allocating() {
        use qcfe_db::catalog::{Catalog, TableBuilder};
        use qcfe_db::types::DataType;
        let mut catalog = Catalog::new();
        catalog.add_table(
            TableBuilder::new("t")
                .column("x", DataType::Int)
                .primary_key("x"),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let qpp = QppNetEstimator::new(FeatureEncoder::new(&catalog, true), None, &mut rng);
        let bytes = qpp.to_weight_bytes();
        let (_, payload) = unframe(&bytes).expect("valid frame");
        // Locate the unit-count field (right after the encoder record) and
        // rig it to u32::MAX behind a fresh, *valid* checksum.
        let mut r = Reader::new(payload);
        let _ = read_encoder(&mut r).expect("encoder decodes");
        let offset = payload.len() - r.remaining();
        let mut rigged = payload.to_vec();
        rigged[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let reframed = frame(PAYLOAD_QPPNET, &rigged);
        match QppNetEstimator::from_weight_bytes(&reframed).unwrap_err() {
            ModelCodecError::Malformed(msg) => {
                assert!(msg.contains("operator kinds"), "{msg}")
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn quantized_weights_roundtrip_bit_exactly() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let (mscn, _) = MscnEstimator::train(
            encoder.clone(),
            &workload,
            Some(&snapshots),
            None,
            6,
            &mut rng,
        );
        let qmscn = QuantizedMscnEstimator::quantize(&mscn);
        let bytes = qmscn.to_weight_bytes();
        let back = QuantizedMscnEstimator::from_weight_bytes(&bytes).expect("decodes");
        assert_eq!(back.encoder(), qmscn.encoder());
        assert_eq!(back.mask(), qmscn.mask());
        let snapshot = snapshots[0].as_ref();
        for q in &workload.queries {
            let a = qmscn.predict(&q.executed.root, snapshot);
            let b = back.predict(&q.executed.root, snapshot);
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "reloaded int8 MSCN must be bit-exact"
            );
        }

        let mut qpp = QppNetEstimator::new(encoder, None, &mut rng);
        qpp.train(&workload, Some(&snapshots), 1, &mut rng);
        let qqpp = QuantizedQppNetEstimator::quantize(&qpp);
        let bytes = qqpp.to_weight_bytes();
        let back = QuantizedQppNetEstimator::from_weight_bytes(&bytes).expect("decodes");
        assert_eq!(back.encoder(), qqpp.encoder());
        assert_eq!(back.masks(), qqpp.masks());
        let snapshot = snapshots[1].as_ref();
        let plans: Vec<&PlanNode> = workload.queries.iter().map(|q| &q.executed.root).collect();
        let a = qqpp.predict_batch(&plans, snapshot);
        let b = back.predict_batch(&plans, snapshot);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "reloaded int8 QPPNet must be bit-exact"
            );
        }
    }

    #[test]
    fn persisted_model_quantize_and_dispatch() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let (mscn, _) = MscnEstimator::train(
            encoder.clone(),
            &workload,
            Some(&snapshots),
            None,
            3,
            &mut rng,
        );
        let qpp = QppNetEstimator::new(encoder, None, &mut rng);

        let qmscn = PersistedModel::Mscn(mscn).quantize();
        assert!(qmscn.is_quantized());
        assert_eq!(qmscn.name(), "MSCN-int8");
        assert_eq!(qmscn.payload_kind(), PAYLOAD_MSCN_INT8);
        let qqpp = PersistedModel::QppNet(qpp).quantize();
        assert_eq!(qqpp.name(), "QPPNet-int8");
        assert_eq!(qqpp.payload_kind(), PAYLOAD_QPPNET_INT8);
        // Quantizing twice is a no-op.
        assert!(matches!(
            qmscn.clone().quantize(),
            PersistedModel::MscnInt8(_)
        ));

        let mscn_bytes = qmscn.to_bytes();
        let qpp_bytes = qqpp.to_bytes();
        assert!(matches!(
            PersistedModel::from_bytes(&mscn_bytes).expect("mscn decodes"),
            PersistedModel::MscnInt8(_)
        ));
        assert!(matches!(
            PersistedModel::from_bytes(&qpp_bytes).expect("qpp decodes"),
            PersistedModel::QppNetInt8(_)
        ));
        // Typed cross-family rejection mirrors the f64 estimators.
        assert_eq!(
            QuantizedMscnEstimator::from_weight_bytes(&qpp_bytes).unwrap_err(),
            ModelCodecError::UnexpectedPayload(PAYLOAD_QPPNET_INT8)
        );
        assert_eq!(
            MscnEstimator::from_weight_bytes(&mscn_bytes).unwrap_err(),
            ModelCodecError::UnexpectedPayload(PAYLOAD_MSCN_INT8)
        );
        // The cost-model adapter serves quantized predictions directly.
        let model = PersistedModel::from_bytes(&mscn_bytes)
            .expect("decodes")
            .into_cost_model();
        assert_eq!(model.name(), "MSCN-int8");
        let pred = model.predict_plan(&workload.queries[0].executed.root, None);
        assert!(pred.is_finite() && pred > 0.0);
    }

    #[test]
    fn quantized_payload_corruption_is_rejected_with_typed_errors() {
        let (workload, snapshots, encoder) = fixture();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let (mscn, _) =
            MscnEstimator::train(encoder, &workload, Some(&snapshots), None, 3, &mut rng);
        let bytes = QuantizedMscnEstimator::quantize(&mscn).to_weight_bytes();

        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() / 2);
        assert_eq!(
            QuantizedMscnEstimator::from_weight_bytes(&truncated).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::Truncated)
        );
        let mut flipped = bytes.clone();
        flipped[0] = b'X';
        assert_eq!(
            PersistedModel::from_bytes(&flipped).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::BadMagic)
        );
        let mid = bytes.len() / 2;
        let mut corrupt = bytes.clone();
        corrupt[mid] ^= 0x01;
        assert!(matches!(
            PersistedModel::from_bytes(&corrupt).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::Checksum { .. })
        ));

        // An unknown per-layer record tag behind a valid checksum is
        // rejected typed. The tag byte follows the encoder record, the
        // mask, and the quantized record's u32 layer count.
        let (_, payload) = unframe(&bytes).expect("valid frame");
        let mut r = Reader::new(payload);
        let _ = read_encoder(&mut r).expect("encoder decodes");
        let _ = read_mask(&mut r).expect("mask decodes");
        let tag_offset = payload.len() - r.remaining() + 4;
        let mut rigged = payload.to_vec();
        rigged[tag_offset] = 9;
        let reframed = frame(PAYLOAD_MSCN_INT8, &rigged);
        assert_eq!(
            QuantizedMscnEstimator::from_weight_bytes(&reframed).unwrap_err(),
            ModelCodecError::Weights(WeightsCodecError::UnknownRecordTag(9))
        );
    }

    #[test]
    fn encoder_record_roundtrips_through_from_parts() {
        let bench = BenchmarkKind::Tpch.build(0.001, 2);
        for include_snapshot in [false, true] {
            let encoder = FeatureEncoder::new(&bench.catalog, include_snapshot);
            let mut payload = Vec::new();
            write_encoder(&encoder, &mut payload);
            let mut r = Reader::new(&payload);
            let back = read_encoder(&mut r).expect("decodes");
            r.finish().expect("no trailing bytes");
            assert_eq!(back, encoder);
            assert_eq!(back.node_dim(), encoder.node_dim());
            assert_eq!(back.feature_names(), encoder.feature_names());
        }
    }
}

//! The feature snapshot (Section III of the paper).
//!
//! A feature snapshot is, per physical operator kind, the vector of fitted
//! coefficients of the operator's *logical cost formula* (Table I):
//!
//! | formula                                   | operators                             |
//! |-------------------------------------------|---------------------------------------|
//! | `F = c0*n + c1`                           | scans, materialize, aggregate, joins   |
//! | `F = c0*n*log n + c1`                     | sort                                   |
//! | `F = c0*n1*n2 + c1*n1 + c2*n2 + c3`       | nested loop                            |
//!
//! The coefficients are obtained by least squares over labeled operator
//! executions — either from the original workload (FSO) or from the cheap
//! simplified templates of Algorithm 1 (FST). Because the coefficients move
//! with knobs, hardware and storage format, appending them to the operator
//! encoding injects the "ignored variables" into the learned estimator.
//!
//! # The binary codec family
//!
//! Snapshots persist in the versioned `QCFS` format defined below. It is
//! the founding member of a small codec family sharing the same
//! conventions — 4-byte ASCII magic, explicit little-endian version field,
//! raw `f64` bit patterns (bit-exact round-trips), typed decode errors and
//! a hard no-panic rule on corrupt input:
//!
//! | magic  | contents                  | defined in                            |
//! |--------|---------------------------|---------------------------------------|
//! | `QCFS` | feature snapshot          | this module                           |
//! | `QVEC` | environment knob vector   | `qcfe_serve::store`                   |
//! | `QCFW` | trained model weights     | `qcfe_nn::codec` + [`crate::model_codec`] |
//! | `QCFP` | network request/response  | `qcfe_net::wire`                      |
//!
//! `QCFW` additionally carries a CRC-32 over its payload, because weight
//! files are large enough that a silently flipped bit would otherwise just
//! decode to different estimates. Versioning policy across the family: any
//! layout change bumps the format's version constant, and decoders reject
//! unknown versions instead of guessing. `QCFS` is at version 2 (version 1
//! plus a flags byte carrying the [`FeatureSnapshot::refined`] provenance
//! bit); version-1 buffers still decode, with `refined = false`.
//!
//! `QCFW` is also at version 2, which adds the **int8-quantized weight
//! records** behind payload kinds 3 (raw quantized Mlp, `qcfe_nn::codec`),
//! 4 ([`crate::model_codec::PAYLOAD_MSCN_INT8`]) and 5
//! ([`crate::model_codec::PAYLOAD_QPPNET_INT8`]). A quantized-Mlp record
//! is a `u32` layer count followed by per-layer records that open with a
//! one-byte **record tag** (`1` = int8 symmetric; unknown tags are a typed
//! `UnknownRecordTag` error, the `QCFS`-v2 strictness rule applied to
//! records): `u32` input dim, `u32` output dim, `u8` activation, `f64`
//! scale, `i8` zero point, then `input*output` raw `i8` weights and
//! `output` raw `f64` biases. Weights round-trip bit-exactly — a reloaded
//! quantized model serves identical estimates. Version-1 `QCFW` buffers
//! (f64-only payload kinds) still decode unchanged.
//!
//! `QCFP` is the family's only *wire* format — the length-framed protocol
//! the `qcfe-net` reactor serves estimates over. It inherits the `QCFW`
//! CRC-32 (over every frame body, so a flipped bit in transit is a typed
//! checksum error, not a wrong estimate), adds a per-frame flags byte
//! whose unknown bits are rejected, and bounds every length field before
//! allocating — the no-panic rule extended to hostile network input.
//!
//! `QCFP` request payloads carry a per-request **option-bits** byte; bits
//! `1` (allow-transfer) and `1 << 1` (shed-load) date from the protocol's
//! introduction, and bit `1 << 2` is the **tenant tag** for the serving
//! layer's multi-tenant scheduler: when set, a `u32 LE` tenant id follows
//! the fixed deadline field; when clear, no tenant bytes travel and the
//! frame is byte-identical to a pre-tenant frame (the anonymous tenant).
//! Strict rejection applies at both granularities: any *other* option bit
//! is an unknown-tag error, and a set tenant bit carrying the reserved
//! anonymous id `0` is rejected the same way — extensions spend reserved
//! bits explicitly, they never reinterpret existing bytes.
//!
//! `QCFP` frame kinds `3`–`5` are the **replication frames** of the
//! replicated serving layer: `ShipSnapshot` (kind 3) and `ShipModel`
//! (kind 4) carry the *verbatim persisted* `QCFS`/`QCFW` codec bytes from
//! one replica to its peers (the durable codecs double as the replication
//! format — a shipped artifact re-validates through the same
//! magic/version/checksum gauntlet a disk load does, so an absorbed shard
//! is bit-identical or rejected typed), and `ShipAck` (kind 5) answers
//! with accept/reject. The frame version stays `1`: pre-replication
//! decoders already reject unknown kinds with a typed error, which is
//! exactly the strict-rejection behaviour a mixed-version peer set needs.
//!
//! `QCFP` frame kinds `6`–`7` are the **manifest frames** of replica
//! anti-entropy: before a revived peer is routed traffic again, a survivor
//! interrogates it with `ManifestRequest` (kind 6, empty payload — a bare
//! kind/flags/request-id body) and the peer answers `ManifestReply`
//! (kind 7): a `u32 LE` entry count (capped at 32 Ki entries, checked
//! before allocation) followed by per-entry records opening with a
//! one-byte **entry-kind tag** — `1` = snapshot (`u8` benchmark tag,
//! `u64 LE` fingerprint, `u32 LE` CRC-32 of the persisted `QCFS` bytes),
//! `2` = model (`u8` benchmark tag, `u8` estimator tag, `u64 LE`
//! fingerprint, `u32 LE` CRC-32 of the persisted `QCFW` bytes); unknown
//! tags reject typed, the record-tag strictness rule again. Because the
//! hashes are over the *verbatim persisted* codec bytes, a manifest diff
//! is exactly the set of keys whose durable state diverged while the peer
//! was down — the survivor re-ships those through kinds 3–4 and only then
//! promotes the peer back into placement. Kinds 6–7 keep frame version
//! `1` for the same mixed-version reason as kinds 3–5.
//!
//! # Online refinement
//!
//! The paper's transfer loop (Table VII) does not end at the warm start: a
//! cold environment that borrowed a neighbour's snapshot keeps collecting
//! its *own* labeled operator executions and refits from them.
//! [`FeatureSnapshot::refit_with`] is that incremental step — it fits fresh
//! coefficients from the observed labels while retaining the previous
//! coefficients for operators the feedback window never covered, and marks
//! the result [`FeatureSnapshot::refined`] so the provenance survives the
//! codec round-trip.

use qcfe_db::executor::ExecutedQuery;
use qcfe_db::plan::{OperatorKind, PlanNode};
use qcfe_nn::linalg::least_squares;
use qcfe_nn::Matrix;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of snapshot coefficients stored per operator (shorter formulas are
/// zero-padded).
pub const SNAPSHOT_DIM: usize = 4;

/// One labeled operator execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatorSample {
    /// Operator kind.
    pub kind: OperatorKind,
    /// Cardinality of the first (outer) input; for scans this is the number
    /// of rows produced by the scan.
    pub n1: f64,
    /// Cardinality of the second (inner) input; 0 for non-join operators.
    pub n2: f64,
    /// Observed time spent in the operator itself (exclusive), ms.
    pub self_ms: f64,
}

/// Extract operator samples from an executed plan.
pub fn operator_samples(executed: &ExecutedQuery) -> Vec<OperatorSample> {
    fn walk(node: &PlanNode, out: &mut Vec<OperatorSample>) {
        let (n1, n2) = match node.children.len() {
            0 => (node.actual_rows, 0.0),
            1 => (node.children[0].actual_rows, 0.0),
            _ => (node.children[0].actual_rows, node.children[1].actual_rows),
        };
        out.push(OperatorSample {
            kind: node.op.kind(),
            n1,
            n2,
            self_ms: node.actual_self_ms,
        });
        for c in &node.children {
            walk(c, out);
        }
    }
    let mut out = Vec::with_capacity(executed.root.node_count());
    walk(&executed.root, &mut out);
    out
}

/// Extract operator samples from a batch of executed queries.
pub fn operator_samples_from(executions: &[ExecutedQuery]) -> Vec<OperatorSample> {
    executions.iter().flat_map(operator_samples).collect()
}

/// The design-matrix row of the logical cost formula for one operator sample.
fn design_row(kind: OperatorKind, n1: f64, n2: f64) -> Vec<f64> {
    match kind {
        OperatorKind::Sort => {
            let n = n1.max(0.0);
            vec![n * (n + 1.0).log2(), 1.0, 0.0, 0.0]
        }
        OperatorKind::NestedLoop => vec![n1 * n2, n1, n2, 1.0],
        // Every other operator follows the linear formula F = c0*n + c1 with
        // n the total input cardinality.
        _ => vec![n1 + n2, 1.0, 0.0, 0.0],
    }
}

/// Number of *meaningful* coefficients of an operator's formula.
pub fn formula_arity(kind: OperatorKind) -> usize {
    match kind {
        OperatorKind::NestedLoop => 4,
        _ => 2,
    }
}

/// Magic prefix of the binary snapshot codec.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"QCFS";

/// Current version of the binary snapshot codec (version 2 added the flags
/// byte carrying [`FeatureSnapshot::refined`]).
pub const SNAPSHOT_CODEC_VERSION: u32 = 2;

/// Oldest snapshot codec version this build still decodes.
pub const SNAPSHOT_CODEC_MIN_VERSION: u32 = 1;

/// Bit 0 of the version-2 flags byte: the snapshot was refined online from
/// the serving environment's own observed labels.
const SNAPSHOT_FLAG_REFINED: u8 = 0b0000_0001;

/// Errors produced when decoding a persisted feature snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCodecError {
    /// The buffer did not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The buffer's codec version is not understood by this build.
    UnsupportedVersion(u32),
    /// The buffer ended before the declared entries were read.
    Truncated,
    /// An operator index outside [`OperatorKind::ALL`].
    UnknownOperator(u8),
    /// Extra bytes after the declared entries.
    TrailingBytes(usize),
    /// A version-2 flags byte with bits this build does not understand.
    UnknownFlags(u8),
}

impl std::fmt::Display for SnapshotCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCodecError::BadMagic => write!(f, "not a QCFS snapshot (bad magic)"),
            SnapshotCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot codec version {v}")
            }
            SnapshotCodecError::Truncated => write!(f, "snapshot buffer truncated"),
            SnapshotCodecError::UnknownOperator(i) => {
                write!(f, "unknown operator index {i} in snapshot")
            }
            SnapshotCodecError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot entries")
            }
            SnapshotCodecError::UnknownFlags(flags) => {
                write!(f, "unknown snapshot flag bits {flags:#04x}")
            }
        }
    }
}

impl std::error::Error for SnapshotCodecError {}

/// A fitted feature snapshot: per operator kind, `SNAPSHOT_DIM` coefficients.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FeatureSnapshot {
    coefficients: HashMap<OperatorKind, [f64; SNAPSHOT_DIM]>,
    /// Simulated cost (ms of query execution) spent collecting the labeled
    /// set used to fit this snapshot.
    pub collection_cost_ms: f64,
    /// Whether this snapshot was refined online from the serving
    /// environment's own observed labels ([`FeatureSnapshot::refit_with`]).
    /// Carried through the `QCFS` codec (version 2), so a restarted node
    /// can tell a refined snapshot from a freshly published one.
    pub refined: bool,
}

impl FeatureSnapshot {
    /// Fit a snapshot from labeled operator samples.
    ///
    /// Operators with fewer samples than coefficients fall back to zeroed
    /// coefficients (they contribute nothing to the encoding, which is the
    /// safe default).
    pub fn fit(samples: &[OperatorSample]) -> Self {
        let mut by_kind: HashMap<OperatorKind, Vec<&OperatorSample>> = HashMap::new();
        for s in samples {
            by_kind.entry(s.kind).or_default().push(s);
        }
        let mut coefficients = HashMap::new();
        for (kind, group) in by_kind {
            let arity = formula_arity(kind);
            if group.len() < arity {
                coefficients.insert(kind, [0.0; SNAPSHOT_DIM]);
                continue;
            }
            let rows: Vec<Vec<f64>> = group
                .iter()
                .map(|s| design_row(kind, s.n1, s.n2)[..arity].to_vec())
                .collect();
            let x = Matrix::from_rows(&rows);
            let y: Vec<f64> = group.iter().map(|s| s.self_ms).collect();
            let mut packed = [0.0; SNAPSHOT_DIM];
            if let Ok(beta) = least_squares(&x, &y) {
                for (i, b) in beta.iter().enumerate().take(SNAPSHOT_DIM) {
                    packed[i] = *b;
                }
            }
            coefficients.insert(kind, packed);
        }
        FeatureSnapshot {
            coefficients,
            collection_cost_ms: 0.0,
            refined: false,
        }
    }

    /// Refit this snapshot from freshly observed labels — the online half of
    /// the paper's transfer loop. Operators the new labels cover (with
    /// enough samples for their formula arity) get coefficients fitted from
    /// those labels alone; operators the feedback window never covered (or
    /// undersampled, which [`FeatureSnapshot::fit`] zeroes) retain this
    /// snapshot's coefficients, so refinement never forgets what the warm
    /// start knew. The result is marked [`FeatureSnapshot::refined`] and
    /// keeps this snapshot's collection cost (feedback labels are free — the
    /// queries ran anyway).
    pub fn refit_with(&self, samples: &[OperatorSample]) -> FeatureSnapshot {
        let mut refit = FeatureSnapshot::fit(samples);
        for (kind, coeffs) in self.entries() {
            let fitted = refit.coefficients.get(&kind);
            // An all-zero fit is `fit`'s undersampled fallback, never a real
            // least-squares solution over observed runtimes.
            if fitted.is_none() || fitted == Some(&[0.0; SNAPSHOT_DIM]) {
                refit.coefficients.insert(kind, coeffs);
            }
        }
        refit.collection_cost_ms = self.collection_cost_ms;
        refit.refined = true;
        refit
    }

    /// Fit a snapshot from whole executed queries, recording the collection
    /// cost (the summed simulated latency of the labeling queries — this is
    /// what Table V reports in hours for the real system).
    pub fn fit_from_executions(executions: &[ExecutedQuery]) -> Self {
        let samples = operator_samples_from(executions);
        let mut snapshot = Self::fit(&samples);
        snapshot.collection_cost_ms = executions.iter().map(|e| e.total_ms).sum();
        snapshot
    }

    /// Coefficient vector for an operator (zeros when the operator never
    /// appeared in the labeled set).
    pub fn coefficients(&self, kind: OperatorKind) -> [f64; SNAPSHOT_DIM] {
        self.coefficients
            .get(&kind)
            .copied()
            .unwrap_or([0.0; SNAPSHOT_DIM])
    }

    /// Predicted operator time from the fitted logical formula (used in
    /// tests and for snapshot-quality diagnostics).
    pub fn predict(&self, kind: OperatorKind, n1: f64, n2: f64) -> f64 {
        let c = self.coefficients(kind);
        design_row(kind, n1, n2)
            .iter()
            .zip(c.iter())
            .map(|(x, b)| x * b)
            .sum()
    }

    /// Operators covered by this snapshot.
    pub fn covered_operators(&self) -> Vec<OperatorKind> {
        let mut kinds: Vec<OperatorKind> = self.coefficients.keys().copied().collect();
        kinds.sort();
        kinds
    }

    /// Sorted `(operator, coefficients)` view of the snapshot (stable order
    /// for codecs and diffing).
    pub fn entries(&self) -> Vec<(OperatorKind, [f64; SNAPSHOT_DIM])> {
        let mut entries: Vec<_> = self.coefficients.iter().map(|(k, c)| (*k, *c)).collect();
        entries.sort_by_key(|(k, _)| k.index());
        entries
    }

    /// Rebuild a snapshot from entries (the inverse of
    /// [`FeatureSnapshot::entries`]); duplicate operators keep the last
    /// entry.
    pub fn from_entries(
        entries: impl IntoIterator<Item = (OperatorKind, [f64; SNAPSHOT_DIM])>,
        collection_cost_ms: f64,
    ) -> Self {
        FeatureSnapshot {
            coefficients: entries.into_iter().collect(),
            collection_cost_ms,
            refined: false,
        }
    }

    /// Serialise to the versioned `QCFS` binary format.
    ///
    /// Layout (all little-endian): magic `"QCFS"`, `u32` version, `u8`
    /// flags (bit 0: [`FeatureSnapshot::refined`]), `f64` collection cost,
    /// `u32` entry count, then per entry one `u8` operator index
    /// ([`OperatorKind::index`]) followed by [`SNAPSHOT_DIM`] raw `f64` bit
    /// patterns. Coefficients round-trip bit-exactly, so a reloaded
    /// snapshot produces *identical* estimates. (Version 1 had no flags
    /// byte; [`FeatureSnapshot::from_bytes`] still decodes it.)
    pub fn to_bytes(&self) -> Vec<u8> {
        let entries = self.entries();
        let mut out =
            Vec::with_capacity(SNAPSHOT_MAGIC.len() + 17 + entries.len() * (1 + 8 * SNAPSHOT_DIM));
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_CODEC_VERSION.to_le_bytes());
        out.push(if self.refined {
            SNAPSHOT_FLAG_REFINED
        } else {
            0
        });
        out.extend_from_slice(&self.collection_cost_ms.to_le_bytes());
        out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
        for (kind, coeffs) in entries {
            out.push(kind.index() as u8);
            for c in coeffs {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Parse the `QCFS` binary format written by [`FeatureSnapshot::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotCodecError> {
        fn take<'a>(cursor: &mut &'a [u8], n: usize) -> Result<&'a [u8], SnapshotCodecError> {
            if cursor.len() < n {
                return Err(SnapshotCodecError::Truncated);
            }
            let (head, tail) = cursor.split_at(n);
            *cursor = tail;
            Ok(head)
        }
        let mut cursor = bytes;
        if take(&mut cursor, SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(SnapshotCodecError::BadMagic);
        }
        let version = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes"));
        if !(SNAPSHOT_CODEC_MIN_VERSION..=SNAPSHOT_CODEC_VERSION).contains(&version) {
            return Err(SnapshotCodecError::UnsupportedVersion(version));
        }
        // Version 2 added the flags byte; version-1 buffers carry no flags
        // and decode with `refined = false`.
        let refined = if version >= 2 {
            let flags = take(&mut cursor, 1)?[0];
            if flags & !SNAPSHOT_FLAG_REFINED != 0 {
                return Err(SnapshotCodecError::UnknownFlags(flags));
            }
            flags & SNAPSHOT_FLAG_REFINED != 0
        } else {
            false
        };
        let collection_cost_ms =
            f64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
        // Bound the declared count by what the buffer can actually hold
        // (1 index byte + SNAPSHOT_DIM f64s per entry) before allocating,
        // so a corrupted count field cannot trigger a huge allocation.
        if count > cursor.len() / (1 + 8 * SNAPSHOT_DIM) {
            return Err(SnapshotCodecError::Truncated);
        }
        let mut coefficients = HashMap::with_capacity(count);
        for _ in 0..count {
            let index = take(&mut cursor, 1)?[0] as usize;
            let kind = *OperatorKind::ALL
                .get(index)
                .ok_or(SnapshotCodecError::UnknownOperator(index as u8))?;
            let mut coeffs = [0.0; SNAPSHOT_DIM];
            for c in &mut coeffs {
                *c = f64::from_le_bytes(take(&mut cursor, 8)?.try_into().expect("8 bytes"));
            }
            coefficients.insert(kind, coeffs);
        }
        if !cursor.is_empty() {
            return Err(SnapshotCodecError::TrailingBytes(cursor.len()));
        }
        Ok(FeatureSnapshot {
            coefficients,
            collection_cost_ms,
            refined,
        })
    }

    /// Root-mean-square relative difference between two snapshots over the
    /// operators they share — used to compare FST against FSO (Table V) and
    /// to verify hardware transfer (Table VII).
    pub fn relative_difference(&self, other: &FeatureSnapshot) -> f64 {
        let mut acc = 0.0;
        let mut count = 0usize;
        for (kind, a) in &self.coefficients {
            let Some(b) = other.coefficients.get(kind) else {
                continue;
            };
            for (x, y) in a.iter().zip(b.iter()) {
                let scale = x.abs().max(y.abs());
                if scale > 1e-12 {
                    acc += ((x - y) / scale).powi(2);
                    count += 1;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            (acc / count as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_samples(kind: OperatorKind, c0: f64, c1: f64) -> Vec<OperatorSample> {
        (1..=60)
            .map(|i| {
                let n = (i * 50) as f64;
                OperatorSample {
                    kind,
                    n1: n,
                    n2: 0.0,
                    self_ms: c0 * n + c1,
                }
            })
            .collect()
    }

    #[test]
    fn fits_linear_operators_exactly() {
        let samples = linear_samples(OperatorKind::SeqScan, 0.002, 0.5);
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::SeqScan);
        assert!((c[0] - 0.002).abs() < 1e-9, "c0 {}", c[0]);
        assert!((c[1] - 0.5).abs() < 1e-6, "c1 {}", c[1]);
        assert_eq!(c[2], 0.0);
        assert!((snap.predict(OperatorKind::SeqScan, 1000.0, 0.0) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn fits_sort_with_nlogn_formula() {
        let samples: Vec<OperatorSample> = (1..=60)
            .map(|i| {
                let n = (i * 100) as f64;
                OperatorSample {
                    kind: OperatorKind::Sort,
                    n1: n,
                    n2: 0.0,
                    self_ms: 0.001 * n * (n + 1.0).log2() + 2.0,
                }
            })
            .collect();
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::Sort);
        assert!((c[0] - 0.001).abs() < 1e-8);
        assert!((c[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn fits_nested_loop_bilinear_formula() {
        let mut samples = Vec::new();
        for i in 1..=20 {
            for j in 1..=20 {
                let (n1, n2) = ((i * 10) as f64, (j * 7) as f64);
                samples.push(OperatorSample {
                    kind: OperatorKind::NestedLoop,
                    n1,
                    n2,
                    self_ms: 0.0005 * n1 * n2 + 0.01 * n1 + 0.02 * n2 + 1.0,
                });
            }
        }
        let snap = FeatureSnapshot::fit(&samples);
        let c = snap.coefficients(OperatorKind::NestedLoop);
        assert!((c[0] - 0.0005).abs() < 1e-8);
        assert!((c[1] - 0.01).abs() < 1e-6);
        assert!((c[2] - 0.02).abs() < 1e-6);
        assert!((c[3] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn unseen_and_undersampled_operators_are_zeroed() {
        let snap = FeatureSnapshot::fit(&[OperatorSample {
            kind: OperatorKind::Limit,
            n1: 5.0,
            n2: 0.0,
            self_ms: 1.0,
        }]);
        assert_eq!(snap.coefficients(OperatorKind::Limit), [0.0; SNAPSHOT_DIM]);
        assert_eq!(
            snap.coefficients(OperatorKind::HashJoin),
            [0.0; SNAPSHOT_DIM]
        );
        assert_eq!(snap.predict(OperatorKind::HashJoin, 10.0, 10.0), 0.0);
    }

    #[test]
    fn snapshots_differ_across_coefficient_scales() {
        let slow = FeatureSnapshot::fit(&linear_samples(OperatorKind::SeqScan, 0.01, 1.0));
        let fast = FeatureSnapshot::fit(&linear_samples(OperatorKind::SeqScan, 0.001, 0.1));
        assert!(slow.relative_difference(&fast) > 0.5);
        assert!(slow.relative_difference(&slow) < 1e-12);
        assert_eq!(slow.covered_operators(), vec![OperatorKind::SeqScan]);
    }

    #[test]
    fn binary_codec_roundtrips_bit_exactly() {
        let mut samples = linear_samples(OperatorKind::SeqScan, 0.0031, 0.77);
        samples.extend(linear_samples(OperatorKind::Sort, 0.0007, 2.2));
        let mut snap = FeatureSnapshot::fit(&samples);
        snap.collection_cost_ms = 123.456;
        let bytes = snap.to_bytes();
        let back = FeatureSnapshot::from_bytes(&bytes).expect("decodes");
        assert_eq!(back, snap, "codec must be bit-exact");
        assert_eq!(back.relative_difference(&snap), 0.0);
        assert_eq!(back.collection_cost_ms, 123.456);
        // predictions are identical, not merely close
        for kind in [OperatorKind::SeqScan, OperatorKind::Sort] {
            assert_eq!(
                back.predict(kind, 5000.0, 0.0).to_bits(),
                snap.predict(kind, 5000.0, 0.0).to_bits()
            );
        }
    }

    #[test]
    fn codec_rejects_corrupted_buffers() {
        let snap = FeatureSnapshot::fit(&linear_samples(OperatorKind::SeqScan, 0.002, 0.5));
        let bytes = snap.to_bytes();
        assert_eq!(
            FeatureSnapshot::from_bytes(b"QC"),
            Err(SnapshotCodecError::Truncated)
        );
        assert_eq!(
            FeatureSnapshot::from_bytes(b"nope"),
            Err(SnapshotCodecError::BadMagic)
        );
        assert_eq!(
            FeatureSnapshot::from_bytes(b"XXXX\x01\x00\x00\x00"),
            Err(SnapshotCodecError::BadMagic)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            FeatureSnapshot::from_bytes(&wrong_version),
            Err(SnapshotCodecError::UnsupportedVersion(99))
        );
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 3);
        assert_eq!(
            FeatureSnapshot::from_bytes(&truncated),
            Err(SnapshotCodecError::Truncated)
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            FeatureSnapshot::from_bytes(&trailing),
            Err(SnapshotCodecError::TrailingBytes(1))
        );
        // a corrupted count field must fail cleanly, not allocate huge
        let mut huge_count = bytes.clone();
        huge_count[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            FeatureSnapshot::from_bytes(&huge_count),
            Err(SnapshotCodecError::Truncated)
        );
        // flag bits this build does not understand are rejected, not guessed
        let mut bad_flags = bytes.clone();
        bad_flags[8] = 0x82;
        assert_eq!(
            FeatureSnapshot::from_bytes(&bad_flags),
            Err(SnapshotCodecError::UnknownFlags(0x82))
        );
        let mut bad_op = bytes;
        // first entry's operator-index byte:
        // magic(4) + version(4) + flags(1) + cost(8) + count(4)
        bad_op[21] = 200;
        assert_eq!(
            FeatureSnapshot::from_bytes(&bad_op),
            Err(SnapshotCodecError::UnknownOperator(200))
        );
    }

    /// A version-1 buffer (no flags byte) still decodes, as an unrefined
    /// snapshot with identical coefficients.
    #[test]
    fn version_one_buffers_decode_as_unrefined() {
        let snap = FeatureSnapshot::fit(&linear_samples(OperatorKind::SeqScan, 0.002, 0.5));
        let v2 = snap.to_bytes();
        let mut v1 = Vec::with_capacity(v2.len() - 1);
        v1.extend_from_slice(SNAPSHOT_MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&v2[9..]); // cost + count + entries, minus the flags byte
        let decoded = FeatureSnapshot::from_bytes(&v1).expect("v1 decodes");
        assert!(!decoded.refined);
        assert_eq!(decoded, snap);
    }

    /// The refined provenance bit survives the codec round-trip.
    #[test]
    fn refined_flag_roundtrips_through_the_codec() {
        let samples = linear_samples(OperatorKind::SeqScan, 0.002, 0.5);
        let refit = FeatureSnapshot::fit(&samples).refit_with(&samples);
        assert!(refit.refined);
        let back = FeatureSnapshot::from_bytes(&refit.to_bytes()).expect("decodes");
        assert!(back.refined, "refined bit must persist");
        assert_eq!(back, refit);
    }

    /// Refitting replaces coefficients for operators the labels cover and
    /// retains the previous coefficients for operators they do not.
    #[test]
    fn refit_covers_observed_operators_and_retains_the_rest() {
        let mut offline = linear_samples(OperatorKind::SeqScan, 0.002, 0.5);
        offline.extend(linear_samples(OperatorKind::HashJoin, 0.004, 1.0));
        let warm = FeatureSnapshot::fit(&offline);

        // Feedback only covers SeqScan, with twice the slope, plus a single
        // Sort sample (undersampled for its 2-coefficient formula).
        let mut feedback = linear_samples(OperatorKind::SeqScan, 0.004, 0.5);
        feedback.push(OperatorSample {
            kind: OperatorKind::Sort,
            n1: 10.0,
            n2: 0.0,
            self_ms: 1.0,
        });
        let refit = warm.refit_with(&feedback);
        assert!(refit.refined);
        assert_eq!(refit.collection_cost_ms, warm.collection_cost_ms);
        let c = refit.coefficients(OperatorKind::SeqScan);
        assert!((c[0] - 0.004).abs() < 1e-9, "observed operator refitted");
        assert_eq!(
            refit.coefficients(OperatorKind::HashJoin),
            warm.coefficients(OperatorKind::HashJoin),
            "uncovered operator keeps the warm-start coefficients"
        );
        assert_eq!(
            refit.coefficients(OperatorKind::Sort),
            [0.0; SNAPSHOT_DIM],
            "an operator neither side ever fitted stays zero"
        );

        // Refitting on the labels a snapshot was fitted from is idempotent
        // on the coefficients (only the provenance bit flips).
        let again = warm.refit_with(&offline);
        for kind in [OperatorKind::SeqScan, OperatorKind::HashJoin] {
            let a = warm.coefficients(kind);
            let b = again.coefficients(kind);
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{kind:?} must refit bit-stably");
            }
        }
    }

    #[test]
    fn entries_are_sorted_and_rebuild_the_snapshot() {
        let mut samples = linear_samples(OperatorKind::Sort, 0.001, 1.0);
        samples.extend(linear_samples(OperatorKind::SeqScan, 0.002, 0.5));
        let snap = FeatureSnapshot::fit(&samples);
        let entries = snap.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].0.index() < entries[1].0.index());
        let rebuilt = FeatureSnapshot::from_entries(entries, snap.collection_cost_ms);
        assert_eq!(rebuilt, snap);
    }

    #[test]
    fn formula_arity_matches_table_one() {
        assert_eq!(formula_arity(OperatorKind::SeqScan), 2);
        assert_eq!(formula_arity(OperatorKind::Sort), 2);
        assert_eq!(formula_arity(OperatorKind::NestedLoop), 4);
    }
}

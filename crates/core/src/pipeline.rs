//! End-to-end experiment pipeline: collect labels, fit snapshots, reduce
//! features, train estimators and evaluate — the code path behind every
//! table and figure of the paper.

use crate::collect::{collect_workload, execute_queries, LabeledWorkload};
use crate::encoding::FeatureEncoder;
use crate::estimators::{EnvSnapshots, MscnEstimator, PgEstimator, QppNetEstimator, TrainStats};
use crate::metrics::AccuracyReport;
use crate::reduction::{reduce, ReductionMethod, ReductionOutcome};
use crate::snapshot::FeatureSnapshot;
use crate::templates::{simplified_queries, DataAbstract};
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_db::plan::OperatorKind;
use qcfe_nn::{Activation, Dataset, Loss, Mlp, Optimizer, TrainConfig};
use qcfe_workloads::{Benchmark, BenchmarkKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Which snapshot to feed the QCFE variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum SnapshotSource {
    /// No snapshot (the plain MSCN/QPPNet baselines).
    None,
    /// Snapshot fitted from the original workload queries (FSO).
    Original,
    /// Snapshot fitted from the simplified templates of Algorithm 1 (FST).
    Template,
}

/// The estimator variants compared in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum EstimatorKind {
    /// PostgreSQL analytical baseline.
    Pgsql,
    /// Plain MSCN.
    Mscn,
    /// Plain QPPNet.
    QppNet,
    /// QCFE(mscn): snapshot + feature reduction on MSCN.
    QcfeMscn,
    /// QCFE(qpp): snapshot + feature reduction on QPPNet.
    QcfeQpp,
}

impl EstimatorKind {
    /// All variants in the order of Table IV.
    pub const ALL: [EstimatorKind; 5] = [
        EstimatorKind::Pgsql,
        EstimatorKind::QcfeMscn,
        EstimatorKind::QcfeQpp,
        EstimatorKind::Mscn,
        EstimatorKind::QppNet,
    ];

    /// Display name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::Pgsql => "PGSQL",
            EstimatorKind::Mscn => "MSCN",
            EstimatorKind::QppNet => "QPPNet",
            EstimatorKind::QcfeMscn => "QCFE(mscn)",
            EstimatorKind::QcfeQpp => "QCFE(qpp)",
        }
    }

    /// Whether the variant uses the feature snapshot + reduction.
    pub fn is_qcfe(&self) -> bool {
        matches!(self, EstimatorKind::QcfeMscn | EstimatorKind::QcfeQpp)
    }
}

/// Everything the experiments need for one benchmark: labeled workload plus
/// per-environment snapshots from both sources.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The benchmark (schema, data, templates).
    pub benchmark: Benchmark,
    /// The pooled labeled workload across all environments.
    pub workload: LabeledWorkload,
    /// Per-environment snapshots fitted from the original queries.
    pub snapshots_fso: EnvSnapshots,
    /// Per-environment snapshots fitted from the simplified templates.
    pub snapshots_fst: EnvSnapshots,
    /// Summed simulated latency of the FSO labeling queries (ms).
    pub fso_collection_ms: f64,
    /// Summed simulated latency of the FST labeling queries (ms).
    pub fst_collection_ms: f64,
    /// Number of simplified templates Algorithm 1 generated.
    pub simplified_template_count: usize,
}

/// Tunable sizes for context preparation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextConfig {
    /// Data scale factor for the benchmark.
    pub data_scale: f64,
    /// Number of knob configurations (environments).
    pub environments: usize,
    /// Labeled queries collected per environment.
    pub queries_per_env: usize,
    /// `scale` parameter of Algorithm 1 (instances per simplified template).
    pub template_scale: usize,
    /// Base random seed.
    pub seed: u64,
}

impl ContextConfig {
    /// A configuration small enough for CI / `--quick` runs.
    pub fn quick(kind: BenchmarkKind) -> Self {
        ContextConfig {
            data_scale: kind.quick_scale(),
            environments: 3,
            queries_per_env: 60,
            template_scale: 1,
            seed: 42,
        }
    }

    /// The default configuration used by the experiment binaries.
    pub fn full(kind: BenchmarkKind) -> Self {
        ContextConfig {
            data_scale: kind.default_scale(),
            environments: 10,
            queries_per_env: 250,
            template_scale: 2,
            seed: 42,
        }
    }
}

/// Collect labels and fit both snapshot flavours for a benchmark.
pub fn prepare_context(kind: BenchmarkKind, config: &ContextConfig) -> ExperimentContext {
    let benchmark = kind.build(config.data_scale, config.seed);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x5eed);
    let environments =
        DbEnvironment::sample_knob_configs(config.environments, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(
        &benchmark,
        &environments,
        config.queries_per_env,
        config.seed,
    );

    // Original-template SQL for Algorithm 1 and the data abstract.
    let reference_db = benchmark.build_database(DbEnvironment::reference());
    let data_abstract = DataAbstract::from_database(&reference_db);
    let original_sql: Vec<String> = benchmark
        .templates
        .iter()
        .map(|t| t.representative_sql(&mut rng))
        .collect();
    let simplified = simplified_queries(
        &original_sql,
        &data_abstract,
        config.template_scale,
        &mut rng,
    );
    let simplified_template_count = if config.template_scale > 0 {
        simplified.len() / config.template_scale.max(1)
    } else {
        0
    };

    let mut snapshots_fso: EnvSnapshots = Vec::with_capacity(environments.len());
    let mut snapshots_fst: EnvSnapshots = Vec::with_capacity(environments.len());
    let mut fso_collection_ms = 0.0;
    let mut fst_collection_ms = 0.0;
    for (env_index, env) in environments.iter().enumerate() {
        // FSO: fit from this environment's labeled original queries.
        let executions: Vec<_> = workload
            .for_environment(env_index)
            .iter()
            .map(|q| q.executed.clone())
            .collect();
        let fso = FeatureSnapshot::fit_from_executions(&executions);
        fso_collection_ms += fso.collection_cost_ms;
        snapshots_fso.push(Some(fso));

        // FST: execute the simplified queries under this environment.
        let simplified_execs = execute_queries(&benchmark, env, &simplified, config.seed + 1000);
        let fst = FeatureSnapshot::fit_from_executions(&simplified_execs);
        fst_collection_ms += fst.collection_cost_ms;
        snapshots_fst.push(Some(fst));
    }

    ExperimentContext {
        benchmark,
        workload,
        snapshots_fso,
        snapshots_fst,
        fso_collection_ms,
        fst_collection_ms,
        simplified_template_count,
    }
}

/// The result of training/evaluating one estimator variant.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Which variant.
    pub kind: EstimatorKind,
    /// Accuracy on the held-out test split.
    pub accuracy: AccuracyReport,
    /// Training statistics (zeroed for the PGSQL baseline).
    pub train: TrainStats,
    /// Per-operator reduction outcomes (QCFE(qpp) only).
    pub operator_reductions: HashMap<OperatorKind, ReductionOutcome>,
    /// Plan-level reduction outcome (QCFE(mscn) only).
    pub plan_reduction: Option<ReductionOutcome>,
}

/// Tunable knobs for one method run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunConfig {
    /// Number of labeled queries (the paper's "scale").
    pub sample_size: usize,
    /// Training iterations.
    pub iterations: usize,
    /// Which snapshot the QCFE variants use.
    pub snapshot_source: SnapshotSource,
    /// Which reduction method the QCFE variants use.
    pub reduction: ReductionMethod,
    /// Reference-set size for difference propagation.
    pub reference_count: usize,
    /// Random seed.
    pub seed: u64,
}

impl RunConfig {
    /// Defaults mirroring the paper's main configuration.
    pub fn new(sample_size: usize, iterations: usize, seed: u64) -> Self {
        RunConfig {
            sample_size,
            iterations,
            snapshot_source: SnapshotSource::Original,
            reduction: ReductionMethod::DiffProp,
            reference_count: 200,
            seed,
        }
    }
}

/// Train an auxiliary per-operator cost model used to score features during
/// reduction (the "learned cost model M" of the paper's Figure 4).
fn train_auxiliary_model(data: &Dataset, rng: &mut StdRng) -> Mlp {
    let mut mlp = Mlp::new(&[data.dim(), 16, 1], Activation::Relu, rng);
    let cfg = TrainConfig {
        epochs: 40,
        batch_size: 32,
        optimizer: Optimizer::adam(0.01),
        loss: Loss::LogMse,
        shuffle: true,
    };
    mlp.train(data, &cfg, rng);
    mlp
}

/// Run one estimator variant against a prepared context.
pub fn run_method(
    ctx: &ExperimentContext,
    kind: EstimatorKind,
    config: &RunConfig,
) -> MethodResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let sample = ctx.workload.subsample(config.sample_size, config.seed);
    let (train, test) = sample.split(0.8, config.seed + 1);

    let snapshots: Option<&EnvSnapshots> = if kind.is_qcfe() {
        match config.snapshot_source {
            SnapshotSource::None => None,
            SnapshotSource::Original => Some(&ctx.snapshots_fso),
            SnapshotSource::Template => Some(&ctx.snapshots_fst),
        }
    } else {
        None
    };

    match kind {
        EstimatorKind::Pgsql => {
            let pg = PgEstimator;
            MethodResult {
                kind,
                accuracy: pg.evaluate(&test),
                train: TrainStats {
                    train_time_s: 0.0,
                    iterations: 0,
                    final_loss: 0.0,
                },
                operator_reductions: HashMap::new(),
                plan_reduction: None,
            }
        }
        EstimatorKind::Mscn | EstimatorKind::QcfeMscn => {
            let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, snapshots.is_some());
            // Feature reduction (QCFE only): score plan-level features with a
            // quickly-trained auxiliary model, then train the real model on
            // the reduced feature set.
            let (mask, plan_reduction) =
                if kind.is_qcfe() && config.reduction != ReductionMethod::None {
                    let full = MscnEstimator::build_dataset(&encoder, &train, snapshots);
                    let aux = train_auxiliary_model(&full, &mut rng);
                    let outcome = reduce(
                        config.reduction,
                        &aux,
                        &full,
                        config.reference_count,
                        &mut rng,
                    );
                    (Some(outcome.kept.clone()), Some(outcome))
                } else {
                    (None, None)
                };
            let (model, stats) = MscnEstimator::train(
                encoder,
                &train,
                snapshots,
                mask,
                config.iterations,
                &mut rng,
            );
            MethodResult {
                kind,
                accuracy: model.evaluate(&test, snapshots),
                train: stats,
                operator_reductions: HashMap::new(),
                plan_reduction,
            }
        }
        EstimatorKind::QppNet | EstimatorKind::QcfeQpp => {
            let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, snapshots.is_some());
            // Per-operator feature reduction (QCFE only).
            let mut operator_reductions = HashMap::new();
            let masks = if kind.is_qcfe() && config.reduction != ReductionMethod::None {
                let datasets = QppNetEstimator::operator_datasets(&encoder, &train, snapshots);
                let mut masks: HashMap<OperatorKind, Vec<usize>> = HashMap::new();
                for op in OperatorKind::ALL {
                    match datasets.get(&op) {
                        Some(data) if data.len() >= 16 => {
                            let aux = train_auxiliary_model(data, &mut rng);
                            let outcome = reduce(
                                config.reduction,
                                &aux,
                                data,
                                config.reference_count,
                                &mut rng,
                            );
                            masks.insert(op, outcome.kept.clone());
                            operator_reductions.insert(op, outcome);
                        }
                        _ => {
                            masks.insert(op, (0..encoder.node_dim()).collect());
                        }
                    }
                }
                Some(masks)
            } else {
                None
            };
            let mut model = QppNetEstimator::new(encoder, masks, &mut rng);
            let stats = model.train(&train, snapshots, config.iterations, &mut rng);
            MethodResult {
                kind,
                accuracy: model.evaluate(&test, snapshots),
                train: stats,
                operator_reductions,
                plan_reduction: None,
            }
        }
    }
}

/// The ablation variants of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// Snapshot from original queries, no reduction.
    Fso,
    /// Snapshot from simplified templates, no reduction.
    Fst,
    /// FSO + difference-propagation reduction (full QCFE).
    FsoFr,
    /// FSO + gradient reduction.
    FsoGd,
    /// FSO + greedy reduction.
    FsoGreedy,
}

impl AblationVariant {
    /// All variants in the order plotted by Figure 6.
    pub const ALL: [AblationVariant; 5] = [
        AblationVariant::Fso,
        AblationVariant::Fst,
        AblationVariant::FsoFr,
        AblationVariant::FsoGd,
        AblationVariant::FsoGreedy,
    ];

    /// Legend label.
    pub fn name(&self) -> &'static str {
        match self {
            AblationVariant::Fso => "FSO",
            AblationVariant::Fst => "FST",
            AblationVariant::FsoFr => "FSO+FR",
            AblationVariant::FsoGd => "FSO+GD",
            AblationVariant::FsoGreedy => "FSO+Greedy",
        }
    }

    /// The (snapshot source, reduction) pair this variant denotes.
    pub fn config(&self) -> (SnapshotSource, ReductionMethod) {
        match self {
            AblationVariant::Fso => (SnapshotSource::Original, ReductionMethod::None),
            AblationVariant::Fst => (SnapshotSource::Template, ReductionMethod::None),
            AblationVariant::FsoFr => (SnapshotSource::Original, ReductionMethod::DiffProp),
            AblationVariant::FsoGd => (SnapshotSource::Original, ReductionMethod::Gradient),
            AblationVariant::FsoGreedy => (SnapshotSource::Original, ReductionMethod::Greedy),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_context() -> ExperimentContext {
        let config = ContextConfig {
            data_scale: 0.0005,
            environments: 2,
            queries_per_env: 40,
            template_scale: 1,
            seed: 5,
        };
        prepare_context(BenchmarkKind::Sysbench, &config)
    }

    #[test]
    fn context_preparation_fits_both_snapshot_kinds() {
        let ctx = tiny_context();
        assert_eq!(ctx.workload.environments.len(), 2);
        assert_eq!(ctx.snapshots_fso.len(), 2);
        assert_eq!(ctx.snapshots_fst.len(), 2);
        assert!(ctx.fso_collection_ms > 0.0);
        assert!(ctx.fst_collection_ms > 0.0);
        assert!(
            ctx.fst_collection_ms < ctx.fso_collection_ms,
            "simplified templates must be cheaper to label: fst {} vs fso {}",
            ctx.fst_collection_ms,
            ctx.fso_collection_ms
        );
        assert!(ctx.simplified_template_count > 0);
        // every environment's FSO covers at least the scan operator
        for snap in ctx.snapshots_fso.iter().flatten() {
            assert!(!snap.covered_operators().is_empty());
        }
    }

    #[test]
    fn run_method_produces_results_for_all_estimators() {
        let ctx = tiny_context();
        let run = RunConfig {
            sample_size: 60,
            iterations: 8,
            ..RunConfig::new(60, 8, 3)
        };
        for kind in [
            EstimatorKind::Pgsql,
            EstimatorKind::Mscn,
            EstimatorKind::QcfeMscn,
        ] {
            let result = run_method(&ctx, kind, &run);
            assert!(result.accuracy.mean_q_error >= 1.0, "{kind:?}");
            assert!(result.accuracy.samples > 0);
            if kind == EstimatorKind::QcfeMscn {
                assert!(result.plan_reduction.is_some());
            }
        }
    }

    #[test]
    fn qcfe_qpp_produces_per_operator_reductions() {
        let ctx = tiny_context();
        let run = RunConfig {
            sample_size: 60,
            iterations: 4,
            ..RunConfig::new(60, 4, 3)
        };
        let result = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
        assert!(!result.operator_reductions.is_empty());
        for outcome in result.operator_reductions.values() {
            assert!(!outcome.kept.is_empty());
        }
        assert!(result.train.train_time_s > 0.0);
    }

    #[test]
    fn ablation_variants_enumerate_configurations() {
        assert_eq!(AblationVariant::ALL.len(), 5);
        assert_eq!(
            AblationVariant::FsoFr.config(),
            (SnapshotSource::Original, ReductionMethod::DiffProp)
        );
        assert_eq!(AblationVariant::Fst.config().0, SnapshotSource::Template);
        assert_eq!(AblationVariant::FsoGreedy.name(), "FSO+Greedy");
    }
}

//! # qcfe-core — QCFE: efficient feature engineering for query cost estimation
//!
//! This crate implements the contribution of *"QCFE: An Efficient Feature
//! Engineering for Query Cost Estimation"* (ICDE 2024) on top of the
//! workspace's database substrate:
//!
//! * [`snapshot`] — the **feature snapshot**: per-operator coefficients of the
//!   logical cost formulas (Table I), fitted by least squares from labeled
//!   operator executions, capturing the influence of knobs / hardware /
//!   storage format ("ignored variables");
//! * [`templates`] — **Algorithm 1**: simplified SQL templates that make
//!   snapshot collection cheap (FST vs FSO);
//! * [`reduction`] — **feature reduction**: the greedy baseline
//!   (Algorithm 2), the gradient baseline, and the paper's
//!   difference-propagation method (Algorithm 3 / Equation 1);
//! * [`encoding`] — the operator/plan encodings shared by the estimators;
//! * [`estimators`] — the PostgreSQL baseline plus MSCN-style and
//!   QPPNet-style learned estimators (and their QCFE variants);
//! * [`cost_model`] — the thread-safe [`CostModel`] inference trait the
//!   online serving layer (`qcfe-serve`) consumes;
//! * [`model_codec`] — the estimator-level payloads of the versioned
//!   `QCFW` weight codec: trained MSCN/QPPNet state persisted bit-exactly
//!   so a restarted serving node answers without retraining;
//! * [`collect`] — labeled-workload collection across environments;
//! * [`metrics`] — q-error, Pearson correlation, percentiles;
//! * [`pipeline`] — the end-to-end experiment driver used by the
//!   reproduction harness (one call per paper table/figure cell).
//!
//! ## Quick start
//!
//! ```no_run
//! use qcfe_core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
//! use qcfe_workloads::BenchmarkKind;
//!
//! let ctx = prepare_context(BenchmarkKind::Sysbench, &ContextConfig::quick(BenchmarkKind::Sysbench));
//! let run = RunConfig::new(200, 30, 42);
//! let qcfe = run_method(&ctx, EstimatorKind::QcfeMscn, &run);
//! let plain = run_method(&ctx, EstimatorKind::Mscn, &run);
//! println!("QCFE(mscn) q-error {:.3} vs MSCN {:.3}", qcfe.accuracy.mean_q_error, plain.accuracy.mean_q_error);
//! ```

pub mod collect;
pub mod cost_model;
pub mod encoding;
pub mod estimators;
pub mod metrics;
pub mod model_codec;
pub mod pipeline;
pub mod reduction;
pub mod snapshot;
pub mod templates;

pub use collect::{collect_workload, LabeledQuery, LabeledWorkload};
pub use cost_model::CostModel;
pub use encoding::FeatureEncoder;
pub use estimators::{
    MscnEstimator, PgEstimator, QppNetEstimator, QuantizedMscnEstimator, QuantizedQppNetEstimator,
    TrainStats,
};
pub use metrics::AccuracyReport;
pub use model_codec::{ModelCodecError, PersistedModel};
pub use pipeline::{
    prepare_context, run_method, AblationVariant, ContextConfig, EstimatorKind, ExperimentContext,
    MethodResult, RunConfig, SnapshotSource,
};
pub use reduction::{ReductionMethod, ReductionOutcome};
pub use snapshot::{FeatureSnapshot, OperatorSample, SnapshotCodecError, SNAPSHOT_DIM};

//! Simplified query templates — Algorithm 1 of the paper.
//!
//! Calculating the feature snapshot from the *original* workload requires
//! executing many expensive queries (hours for TPC-H in the paper). The
//! simplified-template generator parses the original query templates'
//! SQL, extracts the operator → (table, column) relationships via the
//! keyword table (Table II), emits one cheap *parent template* per operator,
//! and fills it with random literals drawn from a data abstract — producing
//! a query set whose operator mix matches the original workload at a small
//! fraction of the execution cost (FST vs FSO, Table V).

use qcfe_db::database::Database;
use qcfe_db::expr::{ColumnRef, CompareOp, JoinCondition, Predicate};
use qcfe_db::query::{Aggregate, Query};
use qcfe_db::types::Value;
use rand::Rng;
use std::collections::BTreeMap;

/// The operator classes recognised by the keyword table (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TemplateOperator {
    /// Seq/Index scan (comparison keywords: `>`, `<`, `=`, `LIKE`, `IN`, ...).
    Scan,
    /// Sort (`ORDER BY`).
    Sort,
    /// Aggregate (`GROUP BY`).
    Aggregate,
    /// Join (`t1.a = t2.b`).
    Join,
}

/// The operator/table/column information extracted from the original
/// templates: `operator -> [(table, column), ...]` (deduplicated, ordered).
pub type OperatorInfo = BTreeMap<TemplateOperator, Vec<(String, String)>>;

/// Per-column value ranges used to fill the simplified templates (the
/// "data abstract R" of Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct DataAbstract {
    /// `(table, column) -> (min, max)` numeric bounds.
    ranges: BTreeMap<(String, String), (f64, f64)>,
}

impl DataAbstract {
    /// Build the abstract from a database's statistics.
    pub fn from_database(db: &Database) -> Self {
        let mut ranges = BTreeMap::new();
        for schema in db.catalog().tables() {
            let Ok(stats) = db.table_stats(&schema.name) else {
                continue;
            };
            for (idx, col) in schema.columns.iter().enumerate() {
                let cstats = &stats.columns[idx];
                if let (Some(min), Some(max)) = (cstats.min, cstats.max) {
                    ranges.insert((schema.name.clone(), col.name.clone()), (min, max));
                }
            }
        }
        DataAbstract { ranges }
    }

    /// Numeric range of a column, if known.
    pub fn range(&self, table: &str, column: &str) -> Option<(f64, f64)> {
        self.ranges
            .get(&(table.to_string(), column.to_string()))
            .copied()
    }

    /// Draw a random literal within the column's range (integer-valued,
    /// which is valid for int, date and float comparisons alike).
    pub fn sample_value<R: Rng + ?Sized>(&self, table: &str, column: &str, rng: &mut R) -> Value {
        match self.range(table, column) {
            Some((min, max)) if max > min => Value::Int(rng.gen_range(min as i64..=max as i64)),
            Some((min, _)) => Value::Int(min as i64),
            None => Value::Int(rng.gen_range(0..1000)),
        }
    }
}

/// Is this token a `table.column` reference (two identifiers joined by a
/// dot, not a numeric literal)?
fn parse_column_ref(token: &str) -> Option<(String, String)> {
    let token = token.trim_matches(|c: char| ",();".contains(c));
    let (t, c) = token.split_once('.')?;
    let is_ident = |s: &str| {
        !s.is_empty()
            && s.chars()
                .next()
                .is_some_and(|ch| ch.is_ascii_alphabetic() || ch == '_')
            && s.chars().all(|ch| ch.is_ascii_alphanumeric() || ch == '_')
    };
    if is_ident(t) && is_ident(c) {
        Some((t.to_lowercase(), c.to_lowercase()))
    } else {
        None
    }
}

/// Phase 1 of Algorithm 1: parse the original templates' SQL text and build
/// the operator → (table, column) map using the keyword relationships of
/// Table II.
pub fn parse_templates(sqls: &[String]) -> OperatorInfo {
    let mut info: OperatorInfo = BTreeMap::new();
    let mut add = |op: TemplateOperator, table: String, column: String| {
        let entry = info.entry(op).or_default();
        if !entry.iter().any(|(t, c)| *t == table && *c == column) {
            entry.push((table, column));
        }
    };

    for sql in sqls {
        let upper = sql.to_uppercase();
        let tokens: Vec<&str> = sql.split_whitespace().collect();
        let upper_tokens: Vec<String> = upper.split_whitespace().map(|s| s.to_string()).collect();

        for (i, _token) in tokens.iter().enumerate() {
            // ORDER BY t.c / GROUP BY t.c
            if upper_tokens[i] == "BY" && i > 0 {
                let op = if upper_tokens[i - 1] == "ORDER" {
                    Some(TemplateOperator::Sort)
                } else if upper_tokens[i - 1] == "GROUP" {
                    Some(TemplateOperator::Aggregate)
                } else {
                    None
                };
                if let (Some(op), Some(next)) = (op, tokens.get(i + 1)) {
                    if let Some((t, c)) = parse_column_ref(next) {
                        add(op, t, c);
                    }
                }
            }
            // comparison / join keywords: "<lhs> OP <rhs>"
            let is_cmp = matches!(
                upper_tokens[i].as_str(),
                "=" | ">" | "<" | ">=" | "<=" | "<>"
            ) || matches!(upper_tokens[i].as_str(), "LIKE" | "IN" | "BETWEEN");
            if is_cmp && i > 0 {
                let lhs = parse_column_ref(token_before(&tokens, i));
                let rhs = tokens.get(i + 1).and_then(|t| parse_column_ref(t));
                match (lhs, rhs) {
                    (Some((lt, lc)), Some((rt, rc))) if upper_tokens[i] == "=" && lt != rt => {
                        add(TemplateOperator::Join, lt, lc);
                        add(TemplateOperator::Join, rt, rc);
                    }
                    (Some((lt, lc)), _) => add(TemplateOperator::Scan, lt, lc),
                    _ => {}
                }
            }
        }
    }
    info
}

fn token_before<'a>(tokens: &'a [&'a str], i: usize) -> &'a str {
    tokens.get(i.wrapping_sub(1)).copied().unwrap_or("")
}

/// A simplified parent template bound to concrete tables/columns
/// (phase 2 of Algorithm 1); filling it yields concrete queries.
#[derive(Debug, Clone, PartialEq)]
pub struct SimplifiedTemplate {
    /// Which operator the template reproduces.
    pub operator: TemplateOperator,
    /// Tables involved (1 for scans/sorts/aggregates, 2 for joins).
    pub tables: Vec<String>,
    /// Columns driving the operator, aligned with `tables` for joins.
    pub columns: Vec<String>,
}

/// Phase 2 of Algorithm 1: generate the simplified templates from the parsed
/// operator information.
pub fn generate_simplified_templates(info: &OperatorInfo) -> Vec<SimplifiedTemplate> {
    let mut out = Vec::new();
    for (op, pairs) in info {
        match op {
            TemplateOperator::Scan | TemplateOperator::Sort | TemplateOperator::Aggregate => {
                for (t, c) in pairs {
                    out.push(SimplifiedTemplate {
                        operator: *op,
                        tables: vec![t.clone()],
                        columns: vec![c.clone()],
                    });
                }
            }
            TemplateOperator::Join => {
                // Pair consecutive join endpoints: they were inserted in
                // (left, right) order by the parser.
                for pair in pairs.chunks(2) {
                    if pair.len() == 2 {
                        out.push(SimplifiedTemplate {
                            operator: TemplateOperator::Join,
                            tables: vec![pair[0].0.clone(), pair[1].0.clone()],
                            columns: vec![pair[0].1.clone(), pair[1].1.clone()],
                        });
                    }
                }
            }
        }
    }
    out
}

/// Phase 3 of Algorithm 1: fill the simplified templates with random
/// comparison operators and literals from the data abstract. `scale` rounds
/// of filling produce `scale * templates.len()` queries.
pub fn fill_templates<R: Rng + ?Sized>(
    templates: &[SimplifiedTemplate],
    data_abstract: &DataAbstract,
    scale: usize,
    rng: &mut R,
) -> Vec<Query> {
    let ops = [
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
        CompareOp::Eq,
    ];
    let mut queries = Vec::with_capacity(scale * templates.len());
    for _ in 0..scale {
        for t in templates {
            let table = &t.tables[0];
            let column = &t.columns[0];
            let predicate = Predicate::Compare {
                column: ColumnRef::new(table.clone(), column.clone()),
                op: ops[rng.gen_range(0..ops.len())],
                value: data_abstract.sample_value(table, column, rng),
            };
            let query = match t.operator {
                TemplateOperator::Scan => Query::scan(table.clone()).filter(predicate),
                TemplateOperator::Sort => Query::scan(table.clone())
                    .filter(predicate)
                    .order(ColumnRef::new(table.clone(), column.clone())),
                TemplateOperator::Aggregate => Query::scan(table.clone())
                    .filter(predicate)
                    .group(ColumnRef::new(table.clone(), column.clone()))
                    .aggregate(Aggregate::CountStar),
                TemplateOperator::Join => {
                    let right_table = &t.tables[1];
                    let right_column = &t.columns[1];
                    Query::scan(table.clone())
                        .join(
                            right_table.clone(),
                            JoinCondition::new(
                                ColumnRef::new(table.clone(), column.clone()),
                                ColumnRef::new(right_table.clone(), right_column.clone()),
                            ),
                        )
                        .filter(predicate)
                }
            };
            queries.push(query);
        }
    }
    queries
}

/// End-to-end Algorithm 1: from original-template SQL to filled simplified
/// queries.
pub fn simplified_queries<R: Rng + ?Sized>(
    original_sql: &[String],
    data_abstract: &DataAbstract,
    scale: usize,
    rng: &mut R,
) -> Vec<Query> {
    let info = parse_templates(original_sql);
    let templates = generate_simplified_templates(&info);
    fill_templates(&templates, data_abstract, scale, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn example_sql() -> Vec<String> {
        vec![
            "SELECT * FROM partsupp WHERE partsupp.ps_availqty > 100 ORDER BY partsupp.ps_partkey;"
                .to_string(),
            "SELECT COUNT(*) FROM orders WHERE orders.o_totalprice < 5000 GROUP BY orders.o_orderpriority;"
                .to_string(),
            "SELECT * FROM orders, customer WHERE orders.o_custkey = customer.c_custkey AND customer.c_acctbal > 0;"
                .to_string(),
        ]
    }

    #[test]
    fn parser_extracts_operator_table_column_triples() {
        let info = parse_templates(&example_sql());
        let scans = info.get(&TemplateOperator::Scan).unwrap();
        assert!(scans.contains(&("partsupp".into(), "ps_availqty".into())));
        assert!(scans.contains(&("orders".into(), "o_totalprice".into())));
        assert!(scans.contains(&("customer".into(), "c_acctbal".into())));
        let sorts = info.get(&TemplateOperator::Sort).unwrap();
        assert_eq!(
            sorts,
            &vec![("partsupp".to_string(), "ps_partkey".to_string())]
        );
        let aggs = info.get(&TemplateOperator::Aggregate).unwrap();
        assert_eq!(
            aggs,
            &vec![("orders".to_string(), "o_orderpriority".to_string())]
        );
        let joins = info.get(&TemplateOperator::Join).unwrap();
        assert!(joins.contains(&("orders".into(), "o_custkey".into())));
        assert!(joins.contains(&("customer".into(), "c_custkey".into())));
    }

    #[test]
    fn join_equality_is_not_misclassified_as_scan() {
        let info = parse_templates(&["SELECT * FROM a, b WHERE a.x = b.y;".to_string()]);
        assert!(info.contains_key(&TemplateOperator::Join));
        assert!(!info.contains_key(&TemplateOperator::Scan));
    }

    #[test]
    fn simplified_templates_cover_each_operator() {
        let info = parse_templates(&example_sql());
        let templates = generate_simplified_templates(&info);
        let ops: std::collections::HashSet<TemplateOperator> =
            templates.iter().map(|t| t.operator).collect();
        assert!(ops.contains(&TemplateOperator::Scan));
        assert!(ops.contains(&TemplateOperator::Sort));
        assert!(ops.contains(&TemplateOperator::Aggregate));
        assert!(ops.contains(&TemplateOperator::Join));
        for t in &templates {
            if t.operator == TemplateOperator::Join {
                assert_eq!(t.tables.len(), 2);
            } else {
                assert_eq!(t.tables.len(), 1);
            }
        }
    }

    #[test]
    fn filled_queries_scale_linearly_and_render_sql() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let abstract_ = DataAbstract::default();
        let queries = simplified_queries(&example_sql(), &abstract_, 3, &mut rng);
        let info = parse_templates(&example_sql());
        let template_count = generate_simplified_templates(&info).len();
        assert_eq!(queries.len(), 3 * template_count);
        for q in &queries {
            let sql = q.to_sql();
            assert!(sql.starts_with("SELECT"));
            assert!(sql.contains("WHERE"));
        }
    }

    #[test]
    fn data_abstract_sampling_respects_ranges() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut abstract_ = DataAbstract::default();
        abstract_
            .ranges
            .insert(("t".to_string(), "c".to_string()), (10.0, 20.0));
        for _ in 0..20 {
            match abstract_.sample_value("t", "c", &mut rng) {
                Value::Int(v) => assert!((10..=20).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
        // unknown column falls back to a default range without panicking
        let _ = abstract_.sample_value("t", "unknown", &mut rng);
    }
}

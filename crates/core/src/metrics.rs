//! Evaluation metrics: q-error, Pearson correlation, percentiles.
//!
//! These are the metrics of Section V-A (Equations 2 and 3) of the paper.

/// Q-error of a single prediction: `max(actual/pred, pred/actual)`, with both
/// sides clamped away from zero. A perfect prediction has q-error 1.0.
pub fn q_error(actual: f64, predicted: f64) -> f64 {
    let a = actual.max(1e-6);
    let p = predicted.max(1e-6);
    (a / p).max(p / a)
}

/// Q-errors of a batch of (actual, predicted) pairs.
pub fn q_errors(actuals: &[f64], predictions: &[f64]) -> Vec<f64> {
    assert_eq!(actuals.len(), predictions.len(), "length mismatch");
    actuals
        .iter()
        .zip(predictions)
        .map(|(a, p)| q_error(*a, *p))
        .collect()
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance of a slice (0 when empty).
pub fn variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64
}

/// The `p`-th percentile (0–100) using nearest-rank on a sorted copy.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Pearson correlation coefficient between actual and predicted values
/// (Equation 3). Returns 0 for degenerate inputs.
pub fn pearson(actuals: &[f64], predictions: &[f64]) -> f64 {
    assert_eq!(actuals.len(), predictions.len(), "length mismatch");
    if actuals.len() < 2 {
        return 0.0;
    }
    let ma = mean(actuals);
    let mp = mean(predictions);
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vp = 0.0;
    for (a, p) in actuals.iter().zip(predictions) {
        cov += (a - ma) * (p - mp);
        va += (a - ma).powi(2);
        vp += (p - mp).powi(2);
    }
    if va < 1e-12 || vp < 1e-12 {
        return 0.0;
    }
    cov / (va.sqrt() * vp.sqrt())
}

/// Summary of an estimator's accuracy on a test set, matching the columns of
/// Table IV / Figure 5 of the paper.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AccuracyReport {
    /// Pearson correlation between actual and predicted cost.
    pub pearson: f64,
    /// Mean q-error.
    pub mean_q_error: f64,
    /// Median (50th percentile) q-error.
    pub median_q_error: f64,
    /// 90th percentile q-error.
    pub p90_q_error: f64,
    /// 95th percentile q-error.
    pub p95_q_error: f64,
    /// 25th percentile q-error (for the box plots of Figure 5).
    pub p25_q_error: f64,
    /// 75th percentile q-error (for the box plots of Figure 5).
    pub p75_q_error: f64,
    /// Variance of the q-error.
    pub q_error_variance: f64,
    /// Number of test samples.
    pub samples: usize,
}

impl AccuracyReport {
    /// Compute the report from actual and predicted costs.
    pub fn compute(actuals: &[f64], predictions: &[f64]) -> Self {
        let qs = q_errors(actuals, predictions);
        AccuracyReport {
            pearson: pearson(actuals, predictions),
            mean_q_error: mean(&qs),
            median_q_error: percentile(&qs, 50.0),
            p90_q_error: percentile(&qs, 90.0),
            p95_q_error: percentile(&qs, 95.0),
            p25_q_error: percentile(&qs, 25.0),
            p75_q_error: percentile(&qs, 75.0),
            q_error_variance: variance(&qs),
            samples: actuals.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(10.0, 5.0), 2.0);
        assert_eq!(q_error(5.0, 10.0), 2.0);
        assert!(
            q_error(1.0, 0.0) > 1000.0,
            "zero prediction is clamped, not infinite"
        );
        assert!(q_error(0.0, 0.0).is_finite());
    }

    #[test]
    fn mean_variance_percentile() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(mean(&v), 3.0);
        assert_eq!(variance(&v), 2.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn pearson_correlation_extremes() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let perfect: Vec<f64> = a.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((pearson(&a, &perfect) - 1.0).abs() < 1e-12);
        let inverse: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson(&a, &inverse) + 1.0).abs() < 1e-12);
        let constant = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&a, &constant), 0.0);
        assert_eq!(pearson(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn accuracy_report_summarises_distribution() {
        let actual: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // predictions off by a factor of 1.1
        let preds: Vec<f64> = actual.iter().map(|a| a * 1.1).collect();
        let rep = AccuracyReport::compute(&actual, &preds);
        assert!((rep.mean_q_error - 1.1).abs() < 1e-9);
        assert!((rep.median_q_error - 1.1).abs() < 1e-9);
        assert!(rep.pearson > 0.999);
        assert_eq!(rep.samples, 100);
        assert!(rep.p95_q_error >= rep.p90_q_error);
        assert!(rep.p25_q_error <= rep.p75_q_error);
        assert!(rep.q_error_variance < 1e-9);
    }
}

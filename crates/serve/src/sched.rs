//! Multi-tenant admission control and deadline-aware micro-batch
//! scheduling: the policy layer between [`ServiceHandle`] submission and
//! the worker pool.
//!
//! The subsystem has two halves, both driven by explicit `now: Instant`
//! arguments so every decision is deterministic under test (virtual
//! clocks) and cheap in production (one `Instant::now()` per call site,
//! taken under the queue lock the service already holds):
//!
//! * [`AdmissionControl`] — per-tenant token buckets (sustained rate +
//!   burst) and bounded per-tenant queue shares. Over-quota submissions
//!   are rejected *immediately* with a typed error carrying the observed
//!   depth and the configured limit; they are never parked.
//! * [`EdfQueue`] — earliest-deadline-first ordering for admitted
//!   requests. Deadline-carrying entries pop in `(deadline, seq)` order;
//!   deadline-less entries sort last, FIFO among themselves, but a
//!   starvation guard ages them into the front once they have waited
//!   [`SchedPolicy::age_after`]. Entries whose deadline has already
//!   passed are not served: they surface as [`Popped::Expired`] so the
//!   worker can fail them typed instead of burning inference cycles on
//!   answers nobody can use.
//!
//! Both halves are configured by one [`SchedPolicy`]. The default policy
//! is **disabled**: every entry (even one carrying a deadline) is queued
//! FIFO, no quota is enforced and nothing expires at pop — bit-for-bit
//! the pre-scheduling service behaviour, so existing single-tenant
//! callers are untouched until a deployment opts in via
//! `GatewayBuilder::scheduling`.
//!
//! [`ServiceHandle`]: crate::service::ServiceHandle

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::{Duration, Instant};

/// A tenant identity carried on every request. `0` is the anonymous /
/// default tenant: all pre-scheduling callers land there, and the QCFP
/// wire codec encodes it as "no tenant tag".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant of every request that does not name one.
    pub const ANONYMOUS: TenantId = TenantId(0);

    /// Whether this is the anonymous/default tenant.
    pub fn is_anonymous(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_anonymous() {
            write!(f, "tenant(anonymous)")
        } else {
            write!(f, "tenant({})", self.0)
        }
    }
}

/// Per-tenant admission limits: a token bucket (sustained `rate_per_s`
/// with `burst` capacity) plus a bound on how many of the tenant's
/// requests may occupy the queue at once.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained admissions per second refilled into the bucket.
    /// `f64::INFINITY` disables rate limiting.
    pub rate_per_s: f64,
    /// Bucket capacity: the largest instantaneous burst admitted after an
    /// idle period. `f64::INFINITY` disables rate limiting.
    pub burst: f64,
    /// Maximum queued-but-undrained requests the tenant may hold
    /// (its share of the bounded queue). `usize::MAX` disables the bound.
    pub max_queued: usize,
}

impl TenantQuota {
    /// No limits: every submission is admitted (capacity permitting).
    pub fn unlimited() -> Self {
        TenantQuota {
            rate_per_s: f64::INFINITY,
            burst: f64::INFINITY,
            max_queued: usize::MAX,
        }
    }

    /// A bounded quota.
    pub fn new(rate_per_s: f64, burst: f64, max_queued: usize) -> Self {
        TenantQuota {
            rate_per_s,
            burst,
            max_queued,
        }
    }

    /// The bucket capacity the token bucket actually enforces. A finite
    /// `burst` is used as-is; a non-finite `burst` (infinite or NaN)
    /// combined with a *finite* rate defaults to one second of refill
    /// (at least one request) so the sustained rate still limits — a
    /// tenant must never escape a finite rate by configuring an infinite
    /// burst. Only with the rate non-finite too is the bucket unbounded.
    pub fn effective_burst(&self) -> f64 {
        if self.burst.is_finite() {
            self.burst
        } else if self.rate_per_s.is_finite() {
            self.rate_per_s.max(1.0)
        } else {
            f64::INFINITY
        }
    }

    /// The bucket capacity as a request count, for `QueueFull { limit }`
    /// faults. Well-defined for every quota: non-finite capacities report
    /// `usize::MAX` (unlimited) instead of relying on float-cast
    /// saturation of `ceil()` on infinity or NaN.
    pub fn limit_requests(&self) -> usize {
        let cap = self.effective_burst();
        if cap.is_finite() {
            cap.max(0.0).ceil() as usize
        } else {
            usize::MAX
        }
    }
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota::unlimited()
    }
}

/// The scheduling policy of one estimation service: whether the
/// admission/EDF pipeline is active, the per-tenant quotas, and the
/// starvation guard for deadline-less requests.
#[derive(Debug, Clone)]
pub struct SchedPolicy {
    /// Master switch. Disabled (the default) preserves the original blind
    /// FIFO service: no quotas, no deadline ordering, no expiry at pop.
    pub enabled: bool,
    /// How long a deadline-less entry may wait behind deadline-carrying
    /// entries before the starvation guard ages it into the front.
    pub age_after: Duration,
    /// Quota applied to tenants without an explicit entry (including the
    /// anonymous tenant). Unlimited by default.
    pub default_quota: TenantQuota,
    quotas: Vec<(TenantId, TenantQuota)>,
}

impl SchedPolicy {
    /// The legacy policy: scheduling disabled, plain FIFO.
    pub fn fifo() -> Self {
        SchedPolicy {
            enabled: false,
            age_after: Duration::from_millis(25),
            default_quota: TenantQuota::unlimited(),
            quotas: Vec::new(),
        }
    }

    /// Admission control + EDF enabled with no quotas configured yet.
    pub fn edf() -> Self {
        SchedPolicy {
            enabled: true,
            ..SchedPolicy::fifo()
        }
    }

    /// Set the quota of one tenant (replacing any earlier entry).
    pub fn with_quota(mut self, tenant: TenantId, quota: TenantQuota) -> Self {
        self.quotas.retain(|(t, _)| *t != tenant);
        self.quotas.push((tenant, quota));
        self
    }

    /// Set the quota applied to tenants without an explicit entry.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Set the starvation-guard bound for deadline-less entries.
    pub fn with_age_after(mut self, age_after: Duration) -> Self {
        self.age_after = age_after;
        self
    }

    /// The quota governing `tenant`.
    pub fn quota_for(&self, tenant: TenantId) -> TenantQuota {
        self.quotas
            .iter()
            .find(|(t, _)| *t == tenant)
            .map(|(_, q)| *q)
            .unwrap_or(self.default_quota)
    }
}

impl Default for SchedPolicy {
    fn default() -> Self {
        SchedPolicy::fifo()
    }
}

/// Why admission refused a submission. Both variants carry the observed
/// per-tenant queue depth and the limit that tripped, so the service can
/// surface them through the enriched `QueueFull { depth, limit }` fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// The tenant's token bucket is empty: sustained rate exceeded. The
    /// limit reported is the bucket's burst capacity in requests.
    RateExceeded { depth: usize, limit: usize },
    /// The tenant already holds its whole queue share.
    ShareExhausted { depth: usize, limit: usize },
}

impl AdmitError {
    /// The observed per-tenant queue depth at rejection time.
    pub fn depth(self) -> usize {
        match self {
            AdmitError::RateExceeded { depth, .. } | AdmitError::ShareExhausted { depth, .. } => {
                depth
            }
        }
    }

    /// The configured limit that tripped.
    pub fn limit(self) -> usize {
        match self {
            AdmitError::RateExceeded { limit, .. } | AdmitError::ShareExhausted { limit, .. } => {
                limit
            }
        }
    }
}

struct LaneState {
    tokens: f64,
    refilled_at: Instant,
    queued: usize,
}

/// Per-tenant token buckets and queue-share accounting. One instance
/// lives inside the service's queue mutex; `try_admit` runs at submit,
/// `release` when a worker pops the entry (served or expired).
#[derive(Default)]
pub struct AdmissionControl {
    lanes: HashMap<TenantId, LaneState>,
}

impl AdmissionControl {
    pub fn new() -> Self {
        AdmissionControl::default()
    }

    /// Admit one submission from `tenant` under `quota` at time `now`, or
    /// reject it immediately — admission never blocks. A fresh tenant
    /// starts with a full bucket (`quota.burst` tokens).
    pub fn try_admit(
        &mut self,
        tenant: TenantId,
        quota: &TenantQuota,
        now: Instant,
    ) -> Result<(), AdmitError> {
        let cap = quota.effective_burst();
        let lane = self.lanes.entry(tenant).or_insert_with(|| LaneState {
            tokens: if cap.is_finite() { cap } else { f64::MAX },
            refilled_at: now,
            queued: 0,
        });
        if quota.rate_per_s.is_finite() {
            // A finite rate limits regardless of the configured burst:
            // with a non-finite burst the bucket cap merely defaults to
            // one second of refill (`effective_burst`). The old
            // both-finite condition let `rate + infinite burst` pin the
            // bucket at `f64::MAX` and disabled rate limiting entirely.
            let dt = now
                .saturating_duration_since(lane.refilled_at)
                .as_secs_f64();
            lane.tokens = (lane.tokens + dt * quota.rate_per_s).min(cap);
        } else {
            // Unlimited rate: keep the bucket brim-full (finite, so the
            // arithmetic below can never produce NaN).
            lane.tokens = f64::MAX;
        }
        lane.refilled_at = now;
        if lane.queued >= quota.max_queued {
            return Err(AdmitError::ShareExhausted {
                depth: lane.queued,
                limit: quota.max_queued,
            });
        }
        if lane.tokens < 1.0 {
            return Err(AdmitError::RateExceeded {
                depth: lane.queued,
                limit: quota.limit_requests(),
            });
        }
        lane.tokens -= 1.0;
        lane.queued += 1;
        Ok(())
    }

    /// Return one queue slot to `tenant` (its entry left the queue).
    pub fn release(&mut self, tenant: TenantId) {
        if let Some(lane) = self.lanes.get_mut(&tenant) {
            lane.queued = lane.queued.saturating_sub(1);
        }
    }

    /// The tenant's current queued-but-undrained count.
    pub fn queued(&self, tenant: TenantId) -> usize {
        self.lanes.get(&tenant).map_or(0, |lane| lane.queued)
    }
}

/// One queued entry with its scheduling envelope.
#[derive(Debug)]
pub struct EdfEntry<T> {
    pub item: T,
    pub tenant: TenantId,
    /// Absolute deadline; `None` sorts last (FIFO among themselves).
    pub deadline: Option<Instant>,
    pub enqueued_at: Instant,
    /// Global submission sequence number — the FIFO tiebreak.
    pub seq: u64,
}

/// Result of one [`EdfQueue::pop`].
#[derive(Debug)]
pub enum Popped<T> {
    /// The entry should be served.
    Ready(EdfEntry<T>),
    /// The entry's deadline passed while it was queued: drop it with the
    /// typed deadline fault instead of running inference for it.
    Expired(EdfEntry<T>),
}

/// Heap node ordered by `(deadline, seq)`; the payload does not
/// participate in the ordering.
struct Deadlined<T> {
    deadline: Instant,
    entry: EdfEntry<T>,
}

impl<T> Deadlined<T> {
    fn key(&self) -> (Instant, u64) {
        (self.deadline, self.entry.seq)
    }
}

impl<T> PartialEq for Deadlined<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<T> Eq for Deadlined<T> {}

impl<T> PartialOrd for Deadlined<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Deadlined<T> {
    /// Reversed so `BinaryHeap` (a max-heap) pops the *earliest*
    /// `(deadline, seq)` first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.key().cmp(&self.key())
    }
}

/// The earliest-deadline-first queue. Deadline-carrying entries pop in
/// `(deadline, submission seq)` order; deadline-less entries pop FIFO
/// after them, unless the starvation guard (`age_after` on pop) promotes
/// an old one to the front. All time comes in through `now` parameters —
/// the queue never reads the clock itself.
pub struct EdfQueue<T> {
    deadlined: BinaryHeap<Deadlined<T>>,
    fifo: VecDeque<EdfEntry<T>>,
    next_seq: u64,
}

impl<T> Default for EdfQueue<T> {
    fn default() -> Self {
        EdfQueue::new()
    }
}

impl<T> EdfQueue<T> {
    pub fn new() -> Self {
        EdfQueue {
            deadlined: BinaryHeap::new(),
            fifo: VecDeque::new(),
            next_seq: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.deadlined.len() + self.fifo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue one entry submitted at `now`. Returns its sequence number.
    pub fn push(
        &mut self,
        item: T,
        tenant: TenantId,
        deadline: Option<Instant>,
        now: Instant,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let entry = EdfEntry {
            item,
            tenant,
            deadline,
            enqueued_at: now,
            seq,
        };
        match deadline {
            Some(deadline) => self.deadlined.push(Deadlined { deadline, entry }),
            None => self.fifo.push_back(entry),
        }
        seq
    }

    /// Pop the next entry to act on at time `now`:
    ///
    /// 1. a deadline-less entry that has waited ≥ `age_after` (the
    ///    starvation guard) — oldest first;
    /// 2. otherwise the earliest-deadline entry, tagged
    ///    [`Popped::Expired`] if its deadline already passed;
    /// 3. otherwise the oldest deadline-less entry.
    pub fn pop(&mut self, now: Instant, age_after: Duration) -> Option<Popped<T>> {
        if let Some(front) = self.fifo.front() {
            let aged = now.saturating_duration_since(front.enqueued_at) >= age_after;
            if aged || self.deadlined.is_empty() {
                return self.fifo.pop_front().map(Popped::Ready);
            }
        }
        if let Some(next) = self.deadlined.pop() {
            if next.deadline <= now {
                return Some(Popped::Expired(next.entry));
            }
            return Some(Popped::Ready(next.entry));
        }
        None
    }

    /// Remove and return every queued entry (shutdown/abort path; order
    /// is unspecified).
    pub fn drain_all(&mut self) -> Vec<EdfEntry<T>> {
        let mut out: Vec<EdfEntry<T>> = self.fifo.drain(..).collect();
        out.extend(self.deadlined.drain().map(|d| d.entry));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Instant {
        Instant::now()
    }

    const AGE: Duration = Duration::from_millis(25);

    #[test]
    fn deadlines_pop_earliest_first_with_seq_tiebreak() {
        let base = t0();
        let mut q = EdfQueue::new();
        q.push(
            "late",
            TenantId(1),
            Some(base + Duration::from_millis(30)),
            base,
        );
        q.push(
            "early",
            TenantId(2),
            Some(base + Duration::from_millis(10)),
            base,
        );
        q.push(
            "tie-a",
            TenantId(3),
            Some(base + Duration::from_millis(20)),
            base,
        );
        q.push(
            "tie-b",
            TenantId(3),
            Some(base + Duration::from_millis(20)),
            base,
        );
        let mut order = Vec::new();
        while let Some(Popped::Ready(e)) = q.pop(base, AGE) {
            order.push(e.item);
        }
        assert_eq!(order, vec!["early", "tie-a", "tie-b", "late"]);
    }

    #[test]
    fn deadline_less_entries_sort_last_fifo() {
        let base = t0();
        let mut q = EdfQueue::new();
        q.push("fifo-1", TenantId::ANONYMOUS, None, base);
        q.push(
            "edf",
            TenantId(1),
            Some(base + Duration::from_secs(1)),
            base,
        );
        q.push("fifo-2", TenantId::ANONYMOUS, None, base);
        let mut order = Vec::new();
        while let Some(Popped::Ready(e)) = q.pop(base, AGE) {
            order.push(e.item);
        }
        assert_eq!(order, vec!["edf", "fifo-1", "fifo-2"]);
    }

    #[test]
    fn starvation_guard_ages_deadline_less_entries_into_the_front() {
        let base = t0();
        let mut q = EdfQueue::new();
        q.push("old-fifo", TenantId::ANONYMOUS, None, base);
        q.push(
            "edf",
            TenantId(1),
            Some(base + Duration::from_secs(5)),
            base,
        );
        // Before the aging bound the deadline entry wins; at the bound the
        // starved FIFO entry jumps ahead of it.
        let now = base + AGE;
        match q.pop(now, AGE) {
            Some(Popped::Ready(e)) => assert_eq!(e.item, "old-fifo"),
            other => panic!("expected the aged FIFO entry, got {other:?}"),
        }
        match q.pop(now, AGE) {
            Some(Popped::Ready(e)) => assert_eq!(e.item, "edf"),
            other => panic!("expected the deadline entry, got {other:?}"),
        }
    }

    #[test]
    fn expired_entries_surface_as_expired_not_ready() {
        let base = t0();
        let mut q = EdfQueue::new();
        q.push(
            "dead",
            TenantId(1),
            Some(base + Duration::from_millis(1)),
            base,
        );
        q.push(
            "alive",
            TenantId(1),
            Some(base + Duration::from_secs(5)),
            base,
        );
        let now = base + Duration::from_millis(2);
        match q.pop(now, AGE) {
            Some(Popped::Expired(e)) => assert_eq!(e.item, "dead"),
            other => panic!("expected an expired pop, got {other:?}"),
        }
        match q.pop(now, AGE) {
            Some(Popped::Ready(e)) => assert_eq!(e.item, "alive"),
            other => panic!("expected a ready pop, got {other:?}"),
        }
    }

    #[test]
    fn token_bucket_admits_burst_then_rate() {
        let base = t0();
        let quota = TenantQuota::new(10.0, 2.0, usize::MAX);
        let mut admission = AdmissionControl::new();
        let tenant = TenantId(7);
        // Full bucket: the burst is admitted.
        assert!(admission.try_admit(tenant, &quota, base).is_ok());
        assert!(admission.try_admit(tenant, &quota, base).is_ok());
        // Bucket empty, no time elapsed: typed rate rejection.
        match admission.try_admit(tenant, &quota, base) {
            Err(AdmitError::RateExceeded { limit, .. }) => assert_eq!(limit, 2),
            other => panic!("expected RateExceeded, got {other:?}"),
        }
        // 100 ms at 10/s refills one token.
        assert!(admission
            .try_admit(tenant, &quota, base + Duration::from_millis(100))
            .is_ok());
    }

    #[test]
    fn queue_share_bounds_queued_entries_and_release_returns_slots() {
        let base = t0();
        let quota = TenantQuota::new(f64::INFINITY, f64::INFINITY, 2);
        let mut admission = AdmissionControl::new();
        let tenant = TenantId(9);
        assert!(admission.try_admit(tenant, &quota, base).is_ok());
        assert!(admission.try_admit(tenant, &quota, base).is_ok());
        match admission.try_admit(tenant, &quota, base) {
            Err(AdmitError::ShareExhausted { depth, limit }) => {
                assert_eq!((depth, limit), (2, 2));
            }
            other => panic!("expected ShareExhausted, got {other:?}"),
        }
        admission.release(tenant);
        assert_eq!(admission.queued(tenant), 1);
        assert!(admission.try_admit(tenant, &quota, base).is_ok());
    }

    #[test]
    fn finite_rate_with_infinite_burst_still_rate_limits() {
        // Regression: the bucket only refilled when *both* rate and burst
        // were finite, and an infinite burst seeded `tokens = f64::MAX` —
        // a finite rate with an infinite burst therefore never rejected.
        let base = t0();
        let quota = TenantQuota::new(5.0, f64::INFINITY, usize::MAX);
        let mut admission = AdmissionControl::new();
        let tenant = TenantId(3);
        // The effective bucket is one second of refill: five admissions.
        for i in 0..5 {
            assert!(
                admission.try_admit(tenant, &quota, base).is_ok(),
                "admission {i} fits the one-second bucket"
            );
        }
        match admission.try_admit(tenant, &quota, base) {
            Err(AdmitError::RateExceeded { limit, .. }) => assert_eq!(limit, 5),
            other => panic!("expected RateExceeded, got {other:?}"),
        }
        // 400 ms at 5/s refills two tokens — and only two.
        let later = base + Duration::from_millis(400);
        assert!(admission.try_admit(tenant, &quota, later).is_ok());
        assert!(admission.try_admit(tenant, &quota, later).is_ok());
        assert!(matches!(
            admission.try_admit(tenant, &quota, later),
            Err(AdmitError::RateExceeded { .. })
        ));
    }

    #[test]
    fn non_finite_burst_limits_are_well_defined() {
        // `limit_requests` replaces the raw `burst.ceil() as usize`,
        // which was ill-defined for infinity and NaN bursts.
        assert_eq!(TenantQuota::new(3.2, f64::INFINITY, 4).limit_requests(), 4);
        assert_eq!(TenantQuota::new(3.2, f64::NAN, 4).limit_requests(), 4);
        assert_eq!(TenantQuota::new(0.4, f64::INFINITY, 4).limit_requests(), 1);
        assert_eq!(TenantQuota::new(f64::INFINITY, 7.5, 1).limit_requests(), 8);
        assert_eq!(TenantQuota::unlimited().limit_requests(), usize::MAX);
        assert!(TenantQuota::unlimited().effective_burst().is_infinite());

        // A NaN burst behaves exactly like an infinite one: the finite
        // rate still limits.
        let base = t0();
        let quota = TenantQuota::new(2.0, f64::NAN, usize::MAX);
        let mut admission = AdmissionControl::new();
        assert!(admission.try_admit(TenantId(4), &quota, base).is_ok());
        assert!(admission.try_admit(TenantId(4), &quota, base).is_ok());
        assert!(matches!(
            admission.try_admit(TenantId(4), &quota, base),
            Err(AdmitError::RateExceeded { limit: 2, .. })
        ));
    }

    #[test]
    fn unlimited_quota_never_rejects() {
        let base = t0();
        let quota = TenantQuota::unlimited();
        let mut admission = AdmissionControl::new();
        for i in 0..10_000 {
            assert!(admission
                .try_admit(TenantId(1), &quota, base + Duration::from_micros(i))
                .is_ok());
        }
    }

    #[test]
    fn policy_quota_lookup_falls_back_to_default() {
        let policy = SchedPolicy::edf()
            .with_quota(TenantId(1), TenantQuota::new(5.0, 5.0, 8))
            .with_default_quota(TenantQuota::new(1.0, 1.0, 2));
        assert_eq!(policy.quota_for(TenantId(1)).max_queued, 8);
        assert_eq!(policy.quota_for(TenantId(2)).max_queued, 2);
        assert_eq!(policy.quota_for(TenantId::ANONYMOUS).max_queued, 2);
        // Re-setting a tenant replaces its entry.
        let policy = policy.with_quota(TenantId(1), TenantQuota::unlimited());
        assert_eq!(policy.quota_for(TenantId(1)).max_queued, usize::MAX);
    }
}

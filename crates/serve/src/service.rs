//! The estimation service: a worker-thread pool draining a bounded request
//! queue with micro-batched inference.
//!
//! Requests (physical plans) are pushed by any number of client threads via
//! a cloneable [`ServiceHandle`]. Workers drain up to
//! [`ServiceConfig::max_batch`] queued requests at a time and push the whole
//! drained batch through the model's **uniform batch API**
//! ([`CostModel::predict_batch`]) — every registered model batches, whether
//! it is a flat MLP (one matrix pass over all encodings), a tree-structured
//! QPPNet (staged operator-grouped forwards across all plans in the batch)
//! or the analytical baseline. Models exposing a flat encoding
//! ([`CostModel::has_flat_encoding`]) additionally route through the LRU
//! plan-encoding cache so repeated plans skip the encoding work entirely.
//!
//! Backpressure: [`ServiceHandle::estimate`] blocks while the queue is at
//! capacity (closed-loop clients), [`ServiceHandle::try_estimate`] returns
//! [`ServiceError::QueueFull`] instead (open-loop clients that shed load).
//!
//! # Scheduling
//!
//! The queue between submissions and the workers is a
//! [`crate::sched::EdfQueue`] governed by a [`SchedPolicy`]
//! ([`EstimationService::start_with_policy`]). With the default (disabled)
//! policy every request queues FIFO — the original behaviour, bit for bit.
//! With scheduling enabled, submissions pass per-tenant admission control
//! (token-bucket rate + queue share; over-quota requests are rejected
//! immediately with the typed [`ServiceError::QueueFull`], never parked),
//! workers drain micro-batches earliest-deadline-first with a starvation
//! guard for deadline-less requests, and entries whose deadline passed
//! while queued are dropped at pop with the typed
//! [`ServiceError::DeadlineExpired`] instead of wasting inference on them.
//!
//! # Live snapshot swaps
//!
//! The feature snapshot a service serves under is *replaceable at runtime*
//! ([`ServiceHandle::install_snapshot`]) — the mechanism behind the
//! gateway's online refinement, which refits a snapshot from observed
//! labels and swaps it into the running shard without a restart. The swap
//! is torn-read-free: every drained micro-batch reads the snapshot `Arc`
//! exactly once, so a batch is predicted entirely under the old snapshot or
//! entirely under the new one, never a mixture. The plan-encoding cache is
//! epoch-guarded for the same reason — encodings embed snapshot
//! coefficients, so a swap bumps the snapshot epoch and workers neither
//! read nor populate cache entries from another epoch.

use crate::lru::LruCache;
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::sched::{AdmissionControl, EdfEntry, EdfQueue, Popped, SchedPolicy, TenantId};
use qcfe_core::cost_model::CostModel;
use qcfe_core::snapshot::FeatureSnapshot;
use qcfe_db::env::Fnv1a;
use qcfe_db::plan::PlanNode;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one estimation service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity (admission control).
    pub queue_capacity: usize,
    /// Maximum requests coalesced into one inference batch.
    pub max_batch: usize,
    /// Capacity of the LRU plan-encoding cache.
    pub encoding_cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 4,
            queue_capacity: 256,
            max_batch: 32,
            encoding_cache_capacity: 4096,
        }
    }
}

/// One answered estimation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Predicted query latency in milliseconds.
    pub cost_ms: f64,
    /// Size of the micro-batch this request was served in.
    pub batch_size: usize,
    /// Whether the plan encoding came from the cache.
    pub encoding_cache_hit: bool,
}

/// Service-side request failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// The service is shut down (or shut down while the request was queued).
    Closed,
    /// A load-shedding submission was rejected: the bounded queue was full,
    /// or (with scheduling enabled) the tenant exhausted its quota. Carries
    /// the observed depth and the limit that tripped, so clients can tell
    /// transient pressure from misconfiguration.
    QueueFull {
        /// Queue depth observed at rejection (global for a capacity
        /// rejection, per-tenant for a quota rejection).
        depth: usize,
        /// The configured limit that tripped (queue capacity, tenant queue
        /// share, or token-bucket burst).
        limit: usize,
    },
    /// The request's deadline passed before a worker served it: rejected
    /// at admission with an exhausted budget, or dropped at pop after
    /// expiring in the queue. Only produced with scheduling enabled.
    DeadlineExpired {
        /// How long the request waited in the queue.
        waited: Duration,
        /// The deadline budget the request carried at submission.
        deadline: Duration,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Closed => write!(f, "estimation service is closed"),
            ServiceError::QueueFull { depth, limit } => {
                write!(
                    f,
                    "estimation queue is full ({depth} queued, limit {limit})"
                )
            }
            ServiceError::DeadlineExpired { waited, deadline } => write!(
                f,
                "deadline of {:.3} ms expired in queue after {:.3} ms",
                deadline.as_secs_f64() * 1e3,
                waited.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A stable 64-bit key of a plan's cost-relevant structure, used by the
/// encoding cache. Two plans with equal keys encode identically.
pub fn plan_key(root: &PlanNode) -> u64 {
    fn walk(node: &PlanNode, h: &mut Fnv1a) {
        h.write_u64(node.op.kind().index() as u64);
        if let Some(table) = node.op.scanned_table() {
            h.write_bytes(table.as_bytes());
            h.write_bytes(b"\0");
        }
        // The index column is part of the encoder's one-hot blocks, so it
        // must be part of the cache key too.
        if let qcfe_db::plan::PhysicalOp::IndexScan { column, .. } = &node.op {
            h.write_bytes(column.as_bytes());
            h.write_bytes(b"\0");
        }
        h.write_u64(node.est_rows.to_bits());
        h.write_u64(node.est_width.to_bits());
        h.write_u64(node.est_cost.to_bits());
        h.write_u64(node.predicates.len() as u64);
        h.write_u64(node.children.len() as u64);
        for child in &node.children {
            walk(child, h);
        }
    }
    let mut h = Fnv1a::new();
    walk(root, &mut h);
    h.finish()
}

/// A completion hook attached to a submission: invoked exactly once when
/// the request leaves the service, whether it completed normally or was
/// dropped by an abort. Used by event-loop front-ends (one reactor thread
/// parking thousands of pending estimates) to wake their poller instead of
/// blocking a thread per request. The hook runs on a worker thread and
/// must be cheap and non-blocking (e.g. a self-pipe write).
pub type CompletionNotify = Arc<dyn Fn() + Send + Sync>;

/// What a worker sends back per request: the estimate, or the typed fault
/// of a request the scheduler dropped (deadline expired in queue).
type Reply = Result<Estimate, ServiceError>;

struct Job {
    plan: PlanNode,
    /// `Some` until the job leaves the service; [`Job::drop`] takes it so
    /// the channel closes *before* the completion hook runs.
    reply: Option<mpsc::Sender<Reply>>,
    notify: Option<CompletionNotify>,
}

impl Drop for Job {
    /// Fire the completion hook when the job leaves the service — after
    /// [`Shared::complete`] sent the reply (normal path) *and* when an
    /// abort drops queued jobs (their reply senders close, so a subsequent
    /// `try_wait` observes [`ServiceError::Closed`]). Running from `Drop`
    /// makes the notification unconditional: no exit path can strand a
    /// poller waiting for a wakeup that never comes.
    ///
    /// The reply sender is dropped *before* the hook fires. Otherwise a
    /// poller woken by the hook could race ahead of this struct's field
    /// drops and observe the channel still open — `try_wait` returning
    /// "in flight" for a request the service has already abandoned.
    fn drop(&mut self) {
        drop(self.reply.take());
        if let Some(notify) = self.notify.take() {
            notify();
        }
    }
}

struct QueueState {
    jobs: EdfQueue<Job>,
    admission: AdmissionControl,
    closed: bool,
}

/// The swappable serving snapshot plus its epoch. The epoch ties the
/// plan-encoding cache to the snapshot that produced its entries: a swap
/// bumps it, instantly invalidating every cached encoding.
struct SnapshotSlot {
    snapshot: Option<Arc<FeatureSnapshot>>,
    epoch: u64,
}

/// The plan-encoding cache, tagged with the snapshot epoch its entries were
/// encoded under. Workers holding a different epoch treat every probe as a
/// miss and never insert — a stale encoding can neither be served nor
/// poison the cache across a swap.
struct EncodingCache {
    epoch: u64,
    cache: LruCache<u64, Vec<f64>>,
}

struct Shared {
    config: ServiceConfig,
    policy: SchedPolicy,
    model: Arc<dyn CostModel>,
    snapshot: RwLock<SnapshotSlot>,
    queue: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
    encoding_cache: Mutex<EncodingCache>,
    metrics: ServiceMetrics,
}

impl Shared {
    /// Whether per-tenant metric lanes are kept for `tenant`: always under
    /// an enabled policy, and for any named tenant even under FIFO (so a
    /// tenant-tagged wire request is observable before scheduling is
    /// turned on). The anonymous tenant under the default policy tracks
    /// nothing — the legacy single-tenant hot path stays lock-free.
    fn lanes_tracked(&self, tenant: TenantId) -> bool {
        self.policy.enabled || !tenant.is_anonymous()
    }

    fn worker_loop(&self) {
        loop {
            let mut expired: Vec<EdfEntry<Job>> = Vec::new();
            let batch: Vec<EdfEntry<Job>> = {
                let mut queue = self.queue.lock().expect("service queue poisoned");
                loop {
                    let now = Instant::now();
                    let mut batch: Vec<EdfEntry<Job>> = Vec::new();
                    while batch.len() < self.config.max_batch {
                        match queue.jobs.pop(now, self.policy.age_after) {
                            Some(Popped::Ready(entry)) => {
                                queue.admission.release(entry.tenant);
                                batch.push(entry);
                            }
                            Some(Popped::Expired(entry)) => {
                                queue.admission.release(entry.tenant);
                                expired.push(entry);
                            }
                            None => break,
                        }
                    }
                    if !batch.is_empty() || !expired.is_empty() {
                        if !batch.is_empty() {
                            self.metrics.record_batch(batch.len(), queue.jobs.len());
                            self.record_batch_lanes(&batch, now);
                        }
                        break batch;
                    }
                    if queue.closed {
                        return;
                    }
                    queue = self.not_empty.wait(queue).expect("service queue poisoned");
                }
            };
            // Space freed: wake every blocked submitter.
            self.not_full.notify_all();
            // Expired entries never reach the model: fail them typed, after
            // releasing the lock (the reply send and notify hook run here).
            for entry in expired {
                self.fail_expired(entry);
            }
            if !batch.is_empty() {
                self.process_batch(batch);
            }
        }
    }

    /// Per-tenant bookkeeping of one drained batch: queue-wait histograms
    /// for every tracked request, plus one `batches_formed` tick per
    /// distinct tenant in the batch.
    fn record_batch_lanes(&self, batch: &[EdfEntry<Job>], now: Instant) {
        let mut tenants: Vec<TenantId> = Vec::new();
        for entry in batch {
            if !self.lanes_tracked(entry.tenant) {
                continue;
            }
            let wait_us = now
                .saturating_duration_since(entry.enqueued_at)
                .as_secs_f64()
                * 1e6;
            self.metrics.record_tenant_wait(entry.tenant, wait_us);
            if !tenants.contains(&entry.tenant) {
                tenants.push(entry.tenant);
            }
        }
        for tenant in tenants {
            self.metrics.record_tenant_batch(tenant);
        }
    }

    /// Drop one entry whose deadline passed while it was queued: reply
    /// with the typed fault instead of serving (or silently dropping) it.
    fn fail_expired(&self, mut entry: EdfEntry<Job>) {
        if self.lanes_tracked(entry.tenant) {
            self.metrics.record_tenant_shed_deadline(entry.tenant);
        }
        let waited = entry.enqueued_at.elapsed();
        let deadline = entry
            .deadline
            .map(|d| d.saturating_duration_since(entry.enqueued_at))
            .unwrap_or_default();
        if let Some(reply) = entry.item.reply.take() {
            let _ = reply.send(Err(ServiceError::DeadlineExpired { waited, deadline }));
        }
    }

    /// Run one drained micro-batch through the model's uniform batch API
    /// and complete every request. All models batch; the only per-model
    /// difference is whether the plan-encoding cache applies.
    fn process_batch(&self, batch: Vec<EdfEntry<Job>>) {
        let batch_size = batch.len();
        let (predictions, hits) = self.batched_predictions(&batch);
        // A wrong-length result would otherwise leave the truncated jobs
        // un-replied and their clients blocked forever; panicking drops the
        // whole batch's reply senders and (via the worker's abort-on-panic
        // guard) closes the service, failing every current and future
        // waiter with `Closed` and surfacing the broken model.
        assert_eq!(
            predictions.len(),
            batch_size,
            "{} predict_batch returned {} predictions for {batch_size} plans",
            self.model.name(),
            predictions.len(),
        );
        for ((job, cost_ms), hit) in batch.into_iter().zip(predictions).zip(hits) {
            self.complete(
                job,
                Estimate {
                    cost_ms,
                    batch_size,
                    encoding_cache_hit: hit,
                },
            );
        }
    }

    /// Batched inference for one drained micro-batch, returning one
    /// prediction and one cache-hit flag per request. Models with a flat
    /// encoding go through the LRU plan-encoding cache and predict over
    /// encodings; everything else predicts straight over the plans.
    ///
    /// The snapshot slot is read exactly once per batch, so a concurrent
    /// [`Shared::install_snapshot`] can never split a batch across two
    /// snapshots: every prediction in the batch is made under one snapshot,
    /// bit-for-bit.
    fn batched_predictions(&self, batch: &[EdfEntry<Job>]) -> (Vec<f64>, Vec<bool>) {
        let (snapshot, epoch) = {
            let slot = self.snapshot.read().expect("snapshot slot poisoned");
            (slot.snapshot.clone(), slot.epoch)
        };
        let snapshot = snapshot.as_deref();
        if !self.model.has_flat_encoding() {
            let plans: Vec<&PlanNode> = batch.iter().map(|entry| &entry.item.plan).collect();
            return (
                self.model.predict_batch(&plans, snapshot),
                vec![false; batch.len()],
            );
        }
        // Two lock acquisitions per drained batch (probe, then insert
        // misses), not per request — encoding itself runs unlocked. A cache
        // whose epoch differs from this batch's snapshot belongs to another
        // snapshot: probe nothing, insert nothing.
        let keys: Vec<u64> = batch
            .iter()
            .map(|entry| plan_key(&entry.item.plan))
            .collect();
        let mut rows: Vec<Option<Vec<f64>>> = {
            let mut cache = self.encoding_cache.lock().expect("encoding cache poisoned");
            if cache.epoch == epoch {
                keys.iter()
                    .map(|key| cache.cache.get(key).cloned())
                    .collect()
            } else {
                vec![None; keys.len()]
            }
        };
        let hits: Vec<bool> = rows.iter().map(Option::is_some).collect();
        let mut fresh: Vec<(u64, Vec<f64>)> = Vec::new();
        for ((slot, entry), key) in rows.iter_mut().zip(batch).zip(&keys) {
            if slot.is_none() {
                let encoding = self
                    .model
                    .encode_plan(&entry.item.plan, snapshot)
                    .expect("flat-encoding model must encode");
                fresh.push((*key, encoding.clone()));
                *slot = Some(encoding);
            }
        }
        if !fresh.is_empty() {
            let mut cache = self.encoding_cache.lock().expect("encoding cache poisoned");
            if cache.epoch == epoch {
                for (key, encoding) in fresh {
                    cache.cache.insert(key, encoding);
                }
            }
        }
        for &hit in &hits {
            self.metrics.record_cache(hit);
        }
        let rows: Vec<Vec<f64>> = rows.into_iter().map(|r| r.expect("filled")).collect();
        (self.model.predict_encoded(&rows), hits)
    }

    /// Replace the serving snapshot without stopping the service. In-flight
    /// batches finish under the snapshot they already read; every batch
    /// drained after the swap predicts under the new one. The encoding
    /// cache is invalidated by advancing its epoch (cached encodings embed
    /// the old snapshot's coefficients) — the `<` guard keeps a slow
    /// concurrent swapper from rolling a newer epoch back.
    fn install_snapshot(&self, snapshot: Option<Arc<FeatureSnapshot>>) {
        let epoch = {
            let mut slot = self.snapshot.write().expect("snapshot slot poisoned");
            slot.snapshot = snapshot;
            slot.epoch += 1;
            slot.epoch
        };
        let mut cache = self.encoding_cache.lock().expect("encoding cache poisoned");
        if cache.epoch < epoch {
            cache.epoch = epoch;
            cache.cache.clear();
        }
        drop(cache);
        self.metrics.record_snapshot_swap();
    }

    /// The snapshot currently being served (shared, not cloned).
    fn snapshot(&self) -> Option<Arc<FeatureSnapshot>> {
        self.snapshot
            .read()
            .expect("snapshot slot poisoned")
            .snapshot
            .clone()
    }

    fn complete(&self, mut entry: EdfEntry<Job>, estimate: Estimate) {
        self.metrics
            .record_completion(entry.enqueued_at.elapsed().as_secs_f64() * 1e6);
        // Take the sender out so it closes here, before the job drops and
        // fires the completion hook; a hook-woken poller must find the
        // reply already in the channel (or the channel closed), never a
        // still-open empty channel.
        // A client that gave up (dropped the receiver) is not an error.
        if let Some(reply) = entry.item.reply.take() {
            let _ = reply.send(Ok(estimate));
        }
    }

    fn close(&self) {
        self.queue.lock().expect("service queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Close the service *and* drop every queued job so their clients
    /// observe [`ServiceError::Closed`] instead of waiting for a worker
    /// that no longer exists. Called when a worker dies on a model panic;
    /// tolerates a poisoned queue lock because it runs during unwinding.
    fn abort(&self) {
        let dropped: Vec<EdfEntry<Job>> = {
            let mut queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            queue.closed = true;
            queue.jobs.drain_all()
        };
        self.not_empty.notify_all();
        self.not_full.notify_all();
        // Dropping the jobs drops their reply senders, failing the waiters.
        drop(dropped);
    }
}

/// An in-flight estimation request: the ticket returned by
/// [`ServiceHandle::submit_async`]. Dropping it abandons the request (the
/// worker's reply is discarded).
#[derive(Debug)]
pub struct PendingEstimate {
    response: mpsc::Receiver<Reply>,
}

impl PendingEstimate {
    /// Block until the estimate is ready. A request the scheduler dropped
    /// (deadline expired in queue) fails with its typed fault.
    pub fn wait(self) -> Result<Estimate, ServiceError> {
        match self.response.recv() {
            Ok(reply) => reply,
            Err(_) => Err(ServiceError::Closed),
        }
    }

    /// Block at most `timeout`; `Ok(None)` when it elapses first. The
    /// request stays in flight — its eventual reply is discarded — so a
    /// deadline-bound caller can stop waiting without wedging the worker.
    pub fn wait_timeout(
        self,
        timeout: std::time::Duration,
    ) -> Result<Option<Estimate>, ServiceError> {
        match self.response.recv_timeout(timeout) {
            Ok(reply) => reply.map(Some),
            Err(mpsc::RecvTimeoutError::Timeout) => Ok(None),
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(ServiceError::Closed),
        }
    }

    /// Poll without blocking: `Ok(Some)` when the estimate is ready,
    /// `Ok(None)` while it is still in flight, [`ServiceError::Closed`]
    /// once the service dropped the request (shutdown or worker abort),
    /// or the scheduler's typed fault for a request it dropped. The
    /// accessor event-loop front-ends pair with a [`CompletionNotify`]
    /// hook: park the ticket, poll it on wakeup.
    pub fn try_wait(&self) -> Result<Option<Estimate>, ServiceError> {
        match self.response.try_recv() {
            Ok(reply) => reply.map(Some),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(ServiceError::Closed),
        }
    }
}

/// The scheduling envelope of one submission: which tenant it belongs
/// to, how much deadline budget it has left, and whether a full queue
/// blocks it or sheds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SubmitSpec {
    pub tenant: TenantId,
    /// Remaining deadline budget at submission, if the request carries a
    /// deadline. Ignored (FIFO) when the service's policy is disabled.
    pub deadline: Option<Duration>,
    pub block_on_full: bool,
}

impl SubmitSpec {
    /// The legacy single-tenant envelope: anonymous, no deadline.
    pub(crate) fn anonymous(block_on_full: bool) -> Self {
        SubmitSpec {
            tenant: TenantId::ANONYMOUS,
            deadline: None,
            block_on_full,
        }
    }
}

/// A cloneable client handle onto a running [`EstimationService`].
#[derive(Clone)]
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Submit a plan and block until its estimate is ready. Applies
    /// backpressure: blocks while the queue is at capacity.
    pub fn estimate(&self, plan: PlanNode) -> Result<Estimate, ServiceError> {
        self.submit(plan, SubmitSpec::anonymous(true), None)?.wait()
    }

    /// Submit without blocking on a full queue.
    pub fn try_estimate(&self, plan: PlanNode) -> Result<Estimate, ServiceError> {
        self.submit(plan, SubmitSpec::anonymous(false), None)?
            .wait()
    }

    /// Enqueue a plan and return immediately with a [`PendingEstimate`]
    /// ticket (still applying backpressure while the queue is at
    /// capacity). Submitting a whole burst before waiting lets one client
    /// fill a micro-batch on its own — the gateway's multi-plan requests
    /// flow through here.
    pub fn submit_async(&self, plan: PlanNode) -> Result<PendingEstimate, ServiceError> {
        self.submit(plan, SubmitSpec::anonymous(true), None)
    }

    /// [`ServiceHandle::submit_async`] with a [`CompletionNotify`] hook:
    /// the hook fires exactly once when the request leaves the service
    /// (reply sent, or dropped by shutdown/abort), after which
    /// [`PendingEstimate::try_wait`] is guaranteed to make progress. The
    /// submission half of the event-loop contract.
    pub fn submit_async_with_notify(
        &self,
        plan: PlanNode,
        notify: CompletionNotify,
    ) -> Result<PendingEstimate, ServiceError> {
        self.submit(plan, SubmitSpec::anonymous(true), Some(notify))
    }

    /// Asynchronous submission with explicit admission policy: blocking
    /// backpressure (`block_on_full`) or load shedding, plus the request's
    /// scheduling envelope (tenant, remaining deadline budget). The
    /// gateway routes all of its admission modes through here.
    ///
    /// Quota rejections are immediate even for blocking submissions — a
    /// request over its tenant's quota is never parked. Only global queue
    /// capacity applies backpressure.
    pub(crate) fn submit(
        &self,
        plan: PlanNode,
        spec: SubmitSpec,
        notify: Option<CompletionNotify>,
    ) -> Result<PendingEstimate, ServiceError> {
        let shared = &self.shared;
        let (reply, response) = mpsc::channel();
        {
            let mut queue = shared.queue.lock().expect("service queue poisoned");
            while queue.jobs.len() >= shared.config.queue_capacity && !queue.closed {
                if !spec.block_on_full {
                    shared.metrics.record_reject();
                    if shared.lanes_tracked(spec.tenant) {
                        shared.metrics.record_tenant_shed_quota(spec.tenant);
                    }
                    return Err(ServiceError::QueueFull {
                        depth: queue.jobs.len(),
                        limit: shared.config.queue_capacity,
                    });
                }
                queue = shared.not_full.wait(queue).expect("service queue poisoned");
            }
            if queue.closed {
                shared.metrics.record_reject();
                return Err(ServiceError::Closed);
            }
            let now = Instant::now();
            if shared.policy.enabled {
                // A budget that is already exhausted can only expire in the
                // queue: reject it up front instead of queuing it.
                if let Some(budget) = spec.deadline {
                    if budget.is_zero() {
                        shared.metrics.record_reject();
                        shared.metrics.record_tenant_shed_deadline(spec.tenant);
                        return Err(ServiceError::DeadlineExpired {
                            waited: Duration::ZERO,
                            deadline: budget,
                        });
                    }
                }
                let quota = shared.policy.quota_for(spec.tenant);
                if let Err(err) = queue.admission.try_admit(spec.tenant, &quota, now) {
                    shared.metrics.record_reject();
                    shared.metrics.record_tenant_shed_quota(spec.tenant);
                    return Err(ServiceError::QueueFull {
                        depth: err.depth(),
                        limit: err.limit(),
                    });
                }
            }
            // Under the disabled (FIFO) policy every entry queues
            // deadline-less: legacy ordering, no expiry at pop.
            let deadline = if shared.policy.enabled {
                spec.deadline.map(|budget| now + budget)
            } else {
                None
            };
            queue.jobs.push(
                Job {
                    plan,
                    reply: Some(reply),
                    notify,
                },
                spec.tenant,
                deadline,
                now,
            );
            shared.metrics.record_submit(queue.jobs.len());
            if shared.lanes_tracked(spec.tenant) {
                shared.metrics.record_tenant_admit(spec.tenant);
            }
        }
        shared.not_empty.notify_one();
        Ok(PendingEstimate { response })
    }

    /// Live metrics of the service.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Swap the serving snapshot in place (online refinement). Batches
    /// already drained finish under the old snapshot; later batches predict
    /// under the new one — no torn state in between. Invalidates the
    /// plan-encoding cache, whose entries embed snapshot coefficients.
    pub fn install_snapshot(&self, snapshot: Option<Arc<FeatureSnapshot>>) {
        self.shared.install_snapshot(snapshot);
    }

    /// The snapshot the service currently serves under.
    pub fn snapshot(&self) -> Option<Arc<FeatureSnapshot>> {
        self.shared.snapshot()
    }
}

/// A running estimation service (worker pool + queue + cache + metrics).
///
/// Dropping the service shuts it down: queued requests are drained, new
/// submissions fail with [`ServiceError::Closed`].
pub struct EstimationService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl EstimationService {
    /// Start the worker pool for `model` under `snapshot` with the default
    /// (disabled/FIFO) scheduling policy — the legacy single-tenant
    /// service, unchanged.
    pub fn start(
        model: Arc<dyn CostModel>,
        snapshot: Option<FeatureSnapshot>,
        config: ServiceConfig,
    ) -> Self {
        Self::start_with_policy(model, snapshot, config, SchedPolicy::default())
    }

    /// Start the worker pool with an explicit [`SchedPolicy`] — the
    /// admission-control + EDF pipeline when `policy.enabled`, plain FIFO
    /// otherwise.
    pub fn start_with_policy(
        model: Arc<dyn CostModel>,
        snapshot: Option<FeatureSnapshot>,
        config: ServiceConfig,
        policy: SchedPolicy,
    ) -> Self {
        let shared = Arc::new(Shared {
            config: ServiceConfig {
                workers: config.workers.max(1),
                queue_capacity: config.queue_capacity.max(1),
                max_batch: config.max_batch.max(1),
                encoding_cache_capacity: config.encoding_cache_capacity.max(1),
            },
            policy,
            model,
            snapshot: RwLock::new(SnapshotSlot {
                snapshot: snapshot.map(Arc::new),
                epoch: 0,
            }),
            queue: Mutex::new(QueueState {
                jobs: EdfQueue::new(),
                admission: AdmissionControl::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            encoding_cache: Mutex::new(EncodingCache {
                epoch: 0,
                cache: LruCache::new(config.encoding_cache_capacity.max(1)),
            }),
            metrics: ServiceMetrics::new(),
        });
        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qcfe-serve-{i}"))
                    .spawn(move || {
                        // If a worker dies (a model panicking inside
                        // predict_batch), close the service and fail queued
                        // requests rather than leaving clients blocked on a
                        // queue nobody drains.
                        struct AbortOnPanic(Arc<Shared>);
                        impl Drop for AbortOnPanic {
                            fn drop(&mut self) {
                                if std::thread::panicking() {
                                    self.0.abort();
                                }
                            }
                        }
                        let _guard = AbortOnPanic(Arc::clone(&shared));
                        shared.worker_loop();
                    })
                    .expect("spawn worker")
            })
            .collect();
        EstimationService { shared, workers }
    }

    /// A cloneable client handle.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Live metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The service configuration in effect.
    pub fn config(&self) -> ServiceConfig {
        self.shared.config
    }

    /// Stop accepting work, drain queued requests and join the workers.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.shutdown_in_place();
        self.shared.metrics.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for EstimationService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::plan::PhysicalOp;

    /// A deterministic stub: cost = 2 * est_rows, flat encoding optional.
    /// Records the size of every `predict_batch` call it receives.
    #[derive(Debug)]
    struct DoubleRows {
        flat_encoding: bool,
        largest_batch: std::sync::atomic::AtomicUsize,
    }

    impl DoubleRows {
        fn new(flat_encoding: bool) -> Self {
            DoubleRows {
                flat_encoding,
                largest_batch: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl CostModel for DoubleRows {
        fn name(&self) -> &'static str {
            "DoubleRows"
        }

        fn predict_plan(&self, root: &PlanNode, _snapshot: Option<&FeatureSnapshot>) -> f64 {
            2.0 * root.est_rows
        }

        fn predict_batch(
            &self,
            plans: &[&PlanNode],
            _snapshot: Option<&FeatureSnapshot>,
        ) -> Vec<f64> {
            self.largest_batch
                .fetch_max(plans.len(), std::sync::atomic::Ordering::Relaxed);
            plans.iter().map(|p| 2.0 * p.est_rows).collect()
        }

        fn encode_plan(
            &self,
            root: &PlanNode,
            _snapshot: Option<&FeatureSnapshot>,
        ) -> Option<Vec<f64>> {
            self.flat_encoding.then(|| vec![root.est_rows])
        }

        fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
            rows.iter().map(|r| 2.0 * r[0]).collect()
        }

        fn has_flat_encoding(&self) -> bool {
            self.flat_encoding
        }
    }

    fn scan_plan(rows: f64) -> PlanNode {
        let mut node = PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![]);
        node.est_rows = rows;
        node.est_cost = rows * 0.01;
        node
    }

    fn start(flat_encoding: bool, config: ServiceConfig) -> EstimationService {
        EstimationService::start(Arc::new(DoubleRows::new(flat_encoding)), None, config)
    }

    #[test]
    fn estimates_flow_through_the_encoded_path() {
        let service = start(true, ServiceConfig::default());
        let handle = service.handle();
        for rows in [1.0, 10.0, 250.0] {
            let estimate = handle.estimate(scan_plan(rows)).unwrap();
            assert_eq!(estimate.cost_ms, 2.0 * rows);
            assert!(estimate.batch_size >= 1);
        }
        let metrics = service.shutdown();
        assert_eq!(metrics.completed, 3);
        assert_eq!(metrics.rejected, 0);
    }

    #[test]
    fn estimates_flow_through_the_uniform_batch_api() {
        let service = start(
            false,
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let estimate = handle.estimate(scan_plan(7.0)).unwrap();
        assert_eq!(estimate.cost_ms, 14.0);
        assert!(!estimate.encoding_cache_hit);
        let metrics = service.shutdown();
        assert_eq!(
            metrics.cache_hit_rate, 0.0,
            "no cache traffic without a flat encoding"
        );
    }

    /// Models without a flat encoding receive the whole drained micro-batch
    /// in one `predict_batch` call rather than per-plan scalar calls.
    #[test]
    fn queued_requests_reach_the_model_as_one_batch() {
        let model = Arc::new(DoubleRows::new(false));
        let service = EstimationService::start(
            Arc::clone(&model) as Arc<dyn CostModel>,
            None,
            ServiceConfig {
                workers: 1,
                queue_capacity: 256,
                max_batch: 64,
                encoding_cache_capacity: 16,
            },
        );
        let handle = service.handle();
        let clients: Vec<_> = (0..32)
            .map(|i| {
                let h = handle.clone();
                std::thread::spawn(move || h.estimate(scan_plan(i as f64 + 1.0)).unwrap())
            })
            .collect();
        for (i, c) in clients.into_iter().enumerate() {
            assert_eq!(c.join().unwrap().cost_ms, 2.0 * (i as f64 + 1.0));
        }
        let metrics = service.shutdown();
        let largest = model
            .largest_batch
            .load(std::sync::atomic::Ordering::Relaxed);
        assert!(largest >= 1);
        assert_eq!(
            largest, metrics.max_batch_size,
            "the model must see exactly the drained batches"
        );
    }

    #[test]
    fn repeated_plans_hit_the_encoding_cache() {
        let service = start(
            true,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let first = handle.estimate(scan_plan(42.0)).unwrap();
        assert!(!first.encoding_cache_hit, "cold cache");
        for _ in 0..5 {
            let again = handle.estimate(scan_plan(42.0)).unwrap();
            assert!(again.encoding_cache_hit, "warm cache");
        }
        assert!(service.metrics().cache_hit_rate > 0.7);
    }

    /// A model violating the predict_batch length contract must fail the
    /// affected requests (via the worker panic dropping their reply
    /// senders), not leave clients blocked forever.
    #[test]
    fn wrong_length_predict_batch_fails_requests_instead_of_hanging() {
        #[derive(Debug)]
        struct ShortBatch;
        impl CostModel for ShortBatch {
            fn name(&self) -> &'static str {
                "ShortBatch"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                1.0
            }
            fn predict_batch(&self, _: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                Vec::new() // always the wrong length
            }
        }
        // One worker: after its panic nobody else could drain the queue, so
        // this also exercises the abort-on-panic guard that closes the
        // service instead of leaving it a zombie.
        let service = EstimationService::start(
            Arc::new(ShortBatch),
            None,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        assert_eq!(handle.estimate(scan_plan(1.0)), Err(ServiceError::Closed));
        // Subsequent requests must fail fast, not hang on a dead worker.
        assert_eq!(handle.estimate(scan_plan(2.0)), Err(ServiceError::Closed));
        assert_eq!(
            handle.try_estimate(scan_plan(3.0)),
            Err(ServiceError::Closed)
        );
    }

    /// One client submitting a burst asynchronously fills a multi-request
    /// micro-batch on its own — no concurrent clients needed.
    #[test]
    fn submit_async_lets_one_client_fill_a_micro_batch() {
        /// Doubles rows like `DoubleRows`, but holds each batch briefly so
        /// a burst queues behind the first drain.
        #[derive(Debug)]
        struct SlowDoubleRows(std::sync::atomic::AtomicUsize);
        impl CostModel for SlowDoubleRows {
            fn name(&self) -> &'static str {
                "SlowDoubleRows"
            }
            fn predict_plan(&self, root: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                2.0 * root.est_rows
            }
            fn predict_batch(&self, plans: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                self.0
                    .fetch_max(plans.len(), std::sync::atomic::Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(20));
                plans.iter().map(|p| 2.0 * p.est_rows).collect()
            }
        }
        let model = Arc::new(SlowDoubleRows(std::sync::atomic::AtomicUsize::new(0)));
        let service = EstimationService::start(
            Arc::clone(&model) as Arc<dyn CostModel>,
            None,
            ServiceConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 64,
                encoding_cache_capacity: 16,
            },
        );
        let handle = service.handle();
        let pending: Vec<PendingEstimate> = (0..16)
            .map(|i| handle.submit_async(scan_plan(i as f64 + 1.0)).unwrap())
            .collect();
        for (i, p) in pending.into_iter().enumerate() {
            let estimate = p.wait().unwrap();
            assert_eq!(estimate.cost_ms, 2.0 * (i as f64 + 1.0));
        }
        drop(service);
        assert!(
            model.0.load(std::sync::atomic::Ordering::Relaxed) >= 2,
            "an async burst must coalesce into multi-request batches"
        );
    }

    /// Satellite acceptance (event-loop front-end contract): `try_wait`
    /// never blocks, the completion hook fires exactly once when the reply
    /// lands, and after the hook a `try_wait` yields the estimate.
    #[test]
    fn try_wait_with_notify_polls_without_blocking() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let service = start(
            true,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = Arc::clone(&fired);
        let pending = handle
            .submit_async_with_notify(
                scan_plan(21.0),
                Arc::new(move || {
                    hook.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        // Poll until the hook reports completion; every poll must return
        // instantly (None or the result), never block.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "completion hook never fired");
            let _ = pending.try_wait().unwrap();
            std::thread::yield_now();
        }
        let estimate = pending
            .try_wait()
            .unwrap()
            .expect("notified ticket must hold its estimate");
        assert_eq!(estimate.cost_ms, 42.0);
        assert_eq!(fired.load(Ordering::SeqCst), 1, "hook fires exactly once");
        // A consumed single-reply ticket reads as closed, not as pending.
        assert_eq!(pending.try_wait(), Err(ServiceError::Closed));
    }

    /// The completion hook must also fire when the service aborts with the
    /// request still queued — the poller wakes and observes `Closed`
    /// instead of waiting forever on a dropped job.
    #[test]
    fn notify_fires_when_an_abort_drops_the_request() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        #[derive(Debug)]
        struct PanickingModel;
        impl CostModel for PanickingModel {
            fn name(&self) -> &'static str {
                "PanickingModel"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                panic!("model failure");
            }
            fn predict_batch(&self, _: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                panic!("model failure");
            }
        }
        let service = EstimationService::start(
            Arc::new(PanickingModel),
            None,
            ServiceConfig {
                workers: 1,
                max_batch: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let fired = Arc::new(AtomicUsize::new(0));
        let hook = Arc::clone(&fired);
        let pending = handle
            .submit_async_with_notify(
                scan_plan(1.0),
                Arc::new(move || {
                    hook.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while fired.load(Ordering::SeqCst) == 0 {
            assert!(Instant::now() < deadline, "abort must fire the hook");
            std::thread::yield_now();
        }
        assert_eq!(pending.try_wait(), Err(ServiceError::Closed));
    }

    /// Regression: the reply channel must already be closed when the abort
    /// notify fires. A poller that polls from inside the wakeup (the
    /// reactor pattern) would otherwise observe a still-open empty channel
    /// — "in flight" — for a request the service has already dropped, and
    /// misreport the abort.
    #[test]
    fn reply_channel_is_closed_before_the_abort_notify_fires() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;
        /// Panics like `PanickingModel`, but only once the gate opens — so
        /// the test can park the ticket where the hook can reach it before
        /// the worker drops the job.
        #[derive(Debug)]
        struct GatedPanic(Arc<AtomicBool>);
        impl CostModel for GatedPanic {
            fn name(&self) -> &'static str {
                "GatedPanic"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                panic!("model failure");
            }
            fn predict_batch(&self, _: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                while !self.0.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                panic!("model failure");
            }
        }
        let gate = Arc::new(AtomicBool::new(false));
        let service = EstimationService::start(
            Arc::new(GatedPanic(Arc::clone(&gate))),
            None,
            ServiceConfig {
                workers: 1,
                max_batch: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        let slot: Arc<Mutex<Option<PendingEstimate>>> = Arc::new(Mutex::new(None));
        type Observed = Result<Option<Estimate>, ServiceError>;
        let seen: Arc<Mutex<Option<Observed>>> = Arc::new(Mutex::new(None));
        let hook_slot = Arc::clone(&slot);
        let hook_seen = Arc::clone(&seen);
        let pending = handle
            .submit_async_with_notify(
                scan_plan(1.0),
                Arc::new(move || {
                    if let Some(ticket) = hook_slot.lock().unwrap().as_ref() {
                        *hook_seen.lock().unwrap() = Some(ticket.try_wait());
                    }
                }),
            )
            .unwrap();
        *slot.lock().unwrap() = Some(pending);
        gate.store(true, Ordering::SeqCst);
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        loop {
            if let Some(observed) = seen.lock().unwrap().take() {
                assert_eq!(
                    observed,
                    Err(ServiceError::Closed),
                    "the hook must find the reply channel already closed"
                );
                break;
            }
            assert!(Instant::now() < deadline, "hook never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn submissions_after_shutdown_fail_closed() {
        let service = start(true, ServiceConfig::default());
        let handle = service.handle();
        assert!(handle.estimate(scan_plan(1.0)).is_ok());
        drop(service);
        assert_eq!(handle.estimate(scan_plan(1.0)), Err(ServiceError::Closed));
        assert_eq!(
            handle.try_estimate(scan_plan(1.0)),
            Err(ServiceError::Closed)
        );
    }

    /// A model whose prediction is read straight off the snapshot: the
    /// SeqScan c1 intercept. Lets swap tests assert *which* snapshot served
    /// a request, bit-for-bit.
    #[derive(Debug)]
    struct SnapshotIntercept {
        flat_encoding: bool,
    }

    impl SnapshotIntercept {
        fn value(snapshot: Option<&FeatureSnapshot>) -> f64 {
            snapshot.map_or(-1.0, |s| {
                s.coefficients(qcfe_db::plan::OperatorKind::SeqScan)[1]
            })
        }
    }

    impl CostModel for SnapshotIntercept {
        fn name(&self) -> &'static str {
            "SnapshotIntercept"
        }
        fn predict_plan(&self, _: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
            Self::value(snapshot)
        }
        fn encode_plan(
            &self,
            _: &PlanNode,
            snapshot: Option<&FeatureSnapshot>,
        ) -> Option<Vec<f64>> {
            self.flat_encoding.then(|| vec![Self::value(snapshot)])
        }
        fn predict_encoded(&self, rows: &[Vec<f64>]) -> Vec<f64> {
            rows.iter().map(|r| r[0]).collect()
        }
        fn has_flat_encoding(&self) -> bool {
            self.flat_encoding
        }
    }

    fn intercept_snapshot(intercept: f64) -> FeatureSnapshot {
        use qcfe_core::snapshot::OperatorSample;
        let samples: Vec<OperatorSample> = (1..=10)
            .map(|i| OperatorSample {
                kind: qcfe_db::plan::OperatorKind::SeqScan,
                n1: (i * 100) as f64,
                n2: 0.0,
                self_ms: 0.001 * (i * 100) as f64 + intercept,
            })
            .collect();
        FeatureSnapshot::fit(&samples)
    }

    /// `install_snapshot` takes effect on the running service without a
    /// restart, for both the direct-batch and the cached-encoding paths —
    /// and the encoding cache never serves an encoding made under the old
    /// snapshot.
    #[test]
    fn installed_snapshots_take_effect_without_restart() {
        for flat_encoding in [false, true] {
            let before = intercept_snapshot(2.0);
            let after = intercept_snapshot(8.0);
            let expect_before = SnapshotIntercept::value(Some(&before));
            let expect_after = SnapshotIntercept::value(Some(&after));
            assert_ne!(expect_before.to_bits(), expect_after.to_bits());

            let service = EstimationService::start(
                Arc::new(SnapshotIntercept { flat_encoding }),
                Some(before),
                ServiceConfig {
                    workers: 1,
                    ..ServiceConfig::default()
                },
            );
            let handle = service.handle();
            // Warm the encoding cache under the old snapshot.
            for _ in 0..3 {
                let estimate = handle.estimate(scan_plan(42.0)).unwrap();
                assert_eq!(estimate.cost_ms.to_bits(), expect_before.to_bits());
            }
            handle.install_snapshot(Some(Arc::new(after.clone())));
            assert_eq!(service.metrics().snapshot_swaps, 1);
            assert_eq!(
                handle.snapshot().expect("snapshot installed").to_bytes(),
                after.to_bytes()
            );
            // The very same plan — a guaranteed cache key hit before the
            // swap — must now predict under the new snapshot.
            for _ in 0..3 {
                let estimate = handle.estimate(scan_plan(42.0)).unwrap();
                assert_eq!(
                    estimate.cost_ms.to_bits(),
                    expect_after.to_bits(),
                    "flat_encoding={flat_encoding}: stale snapshot served after swap"
                );
            }
        }
    }

    /// Satellite acceptance (deadline gap from the gateway PR): a
    /// [`PendingEstimate`] whose deadline budget is already exhausted
    /// returns promptly — bounded wall-clock — even while the worker is
    /// stuck in slow inference, instead of queuing behind it.
    #[test]
    fn wait_timeout_with_exhausted_budget_returns_promptly() {
        #[derive(Debug)]
        struct SlowModel;
        impl CostModel for SlowModel {
            fn name(&self) -> &'static str {
                "SlowModel"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                std::thread::sleep(std::time::Duration::from_millis(200));
                1.0
            }
        }
        let service = EstimationService::start(
            Arc::new(SlowModel),
            None,
            ServiceConfig {
                workers: 1,
                max_batch: 1,
                ..ServiceConfig::default()
            },
        );
        let handle = service.handle();
        // Occupy the single worker, then queue a second request behind it.
        let busy = handle.submit_async(scan_plan(1.0)).unwrap();
        let stuck = handle.submit_async(scan_plan(2.0)).unwrap();
        let waited = Instant::now();
        let outcome = stuck.wait_timeout(std::time::Duration::ZERO).unwrap();
        assert_eq!(outcome, None, "an expired budget must not yield a result");
        assert!(
            waited.elapsed() < std::time::Duration::from_millis(100),
            "a zero budget must return promptly, not wait out inference ({:?})",
            waited.elapsed()
        );
        assert!(busy.wait().is_ok(), "the in-flight request still completes");
    }

    #[test]
    fn plan_keys_distinguish_structure_but_not_actuals() {
        let a = scan_plan(10.0);
        let b = scan_plan(10.0);
        assert_eq!(plan_key(&a), plan_key(&b));
        let mut c = scan_plan(10.0);
        c.est_rows = 11.0;
        assert_ne!(plan_key(&a), plan_key(&c));
        let mut d = scan_plan(10.0);
        d.actual_rows = 999.0; // actuals do not exist at serving time
        assert_eq!(plan_key(&a), plan_key(&d));
        // index scans on the same table via different columns encode
        // differently, so they must key differently
        let index_scan = |column: &str| {
            let mut node = PlanNode::new(
                PhysicalOp::IndexScan {
                    table: "t".into(),
                    column: column.into(),
                },
                vec![],
            );
            node.est_rows = 10.0;
            node.est_cost = 0.1;
            node
        };
        assert_ne!(plan_key(&index_scan("a")), plan_key(&index_scan("b")));
        let join = PlanNode::new(
            PhysicalOp::NestedLoop { condition: None },
            vec![scan_plan(10.0), scan_plan(10.0)],
        );
        assert_ne!(plan_key(&a), plan_key(&join));
    }

    #[test]
    fn try_estimate_sheds_load_when_the_queue_is_full() {
        // One worker, tiny queue: stall the worker with a burst from
        // background threads, then check try_estimate rejects.
        let service = start(
            true,
            ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                max_batch: 1,
                encoding_cache_capacity: 16,
            },
        );
        let handle = service.handle();
        let mut clients = Vec::new();
        for i in 0..64 {
            let h = handle.clone();
            clients.push(std::thread::spawn(move || {
                h.estimate(scan_plan(i as f64)).unwrap()
            }));
        }
        // With 64 closed-loop submissions racing a single worker over a
        // 2-slot queue, an open-loop prober should observe QueueFull at
        // least once.
        let mut saw_full = false;
        for _ in 0..200 {
            match handle.try_estimate(scan_plan(5.0)) {
                Err(ServiceError::QueueFull { depth, limit }) => {
                    assert_eq!(limit, 2, "the shed fault names the configured capacity");
                    assert!(depth >= limit, "the shed fault reports the observed depth");
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
                Ok(_) => {}
            }
        }
        for c in clients {
            c.join().unwrap();
        }
        let metrics = service.shutdown();
        assert!(metrics.completed >= 64);
        if saw_full {
            assert!(metrics.rejected >= 1);
        }
    }

    /// With scheduling enabled, a tenant over its token-bucket quota is
    /// rejected immediately with the typed, enriched `QueueFull` — even
    /// though the global queue has plenty of room — and the rejection
    /// lands in the tenant's shed counters.
    #[test]
    fn over_quota_tenants_are_shed_typed_not_parked() {
        use crate::sched::TenantQuota;
        let tenant = TenantId(5);
        let service = EstimationService::start_with_policy(
            Arc::new(DoubleRows::new(false)),
            None,
            ServiceConfig::default(),
            SchedPolicy::edf().with_quota(tenant, TenantQuota::new(0.0, 2.0, usize::MAX)),
        );
        let handle = service.handle();
        let spec = SubmitSpec {
            tenant,
            deadline: None,
            block_on_full: true,
        };
        // The burst (bucket capacity 2) is admitted...
        let a = handle.submit(scan_plan(1.0), spec, None).unwrap();
        let b = handle.submit(scan_plan(2.0), spec, None).unwrap();
        // ...and the third submission rejects instantly despite
        // `block_on_full`: quota violations never park.
        let started = Instant::now();
        match handle.submit(scan_plan(3.0), spec, None) {
            Err(ServiceError::QueueFull { limit, .. }) => {
                assert_eq!(limit, 2, "the fault names the burst limit");
            }
            other => panic!("expected a typed quota rejection, got {other:?}"),
        }
        assert!(
            started.elapsed() < std::time::Duration::from_millis(100),
            "a quota rejection must be immediate"
        );
        assert!(a.wait().is_ok());
        assert!(b.wait().is_ok());
        let metrics = service.shutdown();
        let lane = metrics
            .tenants
            .iter()
            .find(|lane| lane.tenant == tenant)
            .expect("tenant lane recorded");
        assert_eq!(lane.admitted, 2);
        assert_eq!(lane.shed_quota, 1);
        assert_eq!(lane.shed_deadline, 0);
        assert!(lane.batches_formed >= 1);
    }

    /// A request whose deadline passes while it waits in the queue is
    /// dropped at pop with the typed `DeadlineExpired` fault — it never
    /// reaches the model.
    #[test]
    fn queued_requests_past_their_deadline_are_dropped_typed() {
        #[derive(Debug)]
        struct SlowModel;
        impl CostModel for SlowModel {
            fn name(&self) -> &'static str {
                "SlowModel"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                1.0
            }
            fn predict_batch(&self, plans: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                std::thread::sleep(std::time::Duration::from_millis(150));
                vec![1.0; plans.len()]
            }
        }
        let service = EstimationService::start_with_policy(
            Arc::new(SlowModel),
            None,
            ServiceConfig {
                workers: 1,
                max_batch: 1,
                ..ServiceConfig::default()
            },
            SchedPolicy::edf(),
        );
        let handle = service.handle();
        // Occupy the single worker, and wait until it has actually drained
        // the busy job so the deadlined one sits in the queue behind it.
        let busy = handle
            .submit(scan_plan(1.0), SubmitSpec::anonymous(true), None)
            .unwrap();
        let parked = Instant::now();
        while service.metrics().queue_depth > 0 {
            assert!(
                parked.elapsed() < std::time::Duration::from_secs(5),
                "worker never drained the busy job"
            );
            std::thread::yield_now();
        }
        let doomed = handle
            .submit(
                scan_plan(2.0),
                SubmitSpec {
                    tenant: TenantId(9),
                    deadline: Some(Duration::from_millis(1)),
                    block_on_full: true,
                },
                None,
            )
            .unwrap();
        match doomed.wait() {
            Err(ServiceError::DeadlineExpired { waited, deadline }) => {
                assert!(waited >= deadline, "the drop happens after expiry");
                assert_eq!(deadline, Duration::from_millis(1));
            }
            other => panic!("expected a typed deadline drop, got {other:?}"),
        }
        assert!(busy.wait().is_ok(), "the in-flight request still completes");
        let metrics = service.shutdown();
        let lane = metrics
            .tenants
            .iter()
            .find(|lane| lane.tenant == TenantId(9))
            .expect("tenant lane recorded");
        assert_eq!(lane.shed_deadline, 1);
        assert_eq!(
            metrics.completed, 1,
            "the expired request never reached the model"
        );
    }

    /// EDF ordering end to end: with one worker stalled, a later
    /// tight-deadline submission is served before an earlier loose one.
    #[test]
    fn earlier_deadlines_are_served_first() {
        #[derive(Debug)]
        struct Recorder(std::sync::Mutex<Vec<f64>>);
        impl CostModel for Recorder {
            fn name(&self) -> &'static str {
                "Recorder"
            }
            fn predict_plan(&self, root: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                root.est_rows
            }
            fn predict_batch(&self, plans: &[&PlanNode], _: Option<&FeatureSnapshot>) -> Vec<f64> {
                std::thread::sleep(std::time::Duration::from_millis(30));
                let mut seen = self.0.lock().unwrap();
                plans
                    .iter()
                    .map(|p| {
                        seen.push(p.est_rows);
                        p.est_rows
                    })
                    .collect()
            }
        }
        let model = Arc::new(Recorder(std::sync::Mutex::new(Vec::new())));
        let service = EstimationService::start_with_policy(
            Arc::clone(&model) as Arc<dyn CostModel>,
            None,
            ServiceConfig {
                workers: 1,
                max_batch: 1,
                ..ServiceConfig::default()
            },
            SchedPolicy::edf(),
        );
        let handle = service.handle();
        // Park the worker on a filler job, then queue loose before tight.
        let filler = handle
            .submit(scan_plan(0.0), SubmitSpec::anonymous(true), None)
            .unwrap();
        let parked = Instant::now();
        while service.metrics().queue_depth > 0 {
            assert!(
                parked.elapsed() < std::time::Duration::from_secs(5),
                "worker never drained the filler job"
            );
            std::thread::yield_now();
        }
        let loose = handle
            .submit(
                scan_plan(1.0),
                SubmitSpec {
                    tenant: TenantId(1),
                    deadline: Some(Duration::from_secs(30)),
                    block_on_full: true,
                },
                None,
            )
            .unwrap();
        let tight = handle
            .submit(
                scan_plan(2.0),
                SubmitSpec {
                    tenant: TenantId(2),
                    deadline: Some(Duration::from_secs(5)),
                    block_on_full: true,
                },
                None,
            )
            .unwrap();
        assert!(filler.wait().is_ok());
        assert!(tight.wait().is_ok());
        assert!(loose.wait().is_ok());
        drop(service);
        let seen = model.0.lock().unwrap();
        let loose_at = seen.iter().position(|&r| r == 1.0).unwrap();
        let tight_at = seen.iter().position(|&r| r == 2.0).unwrap();
        assert!(
            tight_at < loose_at,
            "the tighter deadline must be served first (order {seen:?})"
        );
    }
}

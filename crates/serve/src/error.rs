//! The unified error taxonomy of the serving front door.
//!
//! Every fallible gateway operation returns [`QcfeError`]: the lower-level
//! [`ServiceError`] (queue/lifecycle failures) and [`StoreError`]
//! (snapshot persistence failures) convert into it via `From`, and the
//! gateway adds the routing-level failures — a missing model, an
//! unresolvable snapshot, a blown deadline. Clients match one enum instead
//! of threading three error types through their call sites.

use crate::registry::ModelKey;
use crate::service::ServiceError;
use crate::store::StoreError;
use qcfe_db::env::EnvFingerprint;
use qcfe_workloads::BenchmarkKind;
use std::time::Duration;

/// Any failure of the serving front door.
#[derive(Debug)]
pub enum QcfeError {
    /// The shard's estimation service failed the request (queue full on a
    /// load-shedding submit, or the service closed mid-flight).
    Service(ServiceError),
    /// The snapshot store failed (I/O, codec or knob-vector corruption).
    Store(StoreError),
    /// A QCFE estimator was requested for an environment with no persisted
    /// snapshot and no transfer candidate (or transfer was disabled).
    SnapshotMissing {
        /// The benchmark the request targeted.
        benchmark: BenchmarkKind,
        /// The fingerprint no snapshot could be resolved for.
        fingerprint: EnvFingerprint,
    },
    /// No model is registered under the request's serving key and the
    /// gateway has no model provider that can supply one.
    ModelMissing {
        /// The serving key that could not be resolved.
        key: ModelKey,
    },
    /// The request's deadline elapsed before an estimate was produced.
    DeadlineExceeded {
        /// Time spent inside the gateway when the deadline fired.
        elapsed: Duration,
        /// The deadline the request carried.
        deadline: Duration,
    },
}

impl std::fmt::Display for QcfeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QcfeError::Service(e) => write!(f, "estimation service error: {e}"),
            QcfeError::Store(e) => write!(f, "{e}"),
            QcfeError::SnapshotMissing {
                benchmark,
                fingerprint,
            } => write!(
                f,
                "no feature snapshot resolvable for {} environment {fingerprint}",
                benchmark.name()
            ),
            QcfeError::ModelMissing { key } => write!(
                f,
                "no {} model registered for {} environment {} and no provider supplied one",
                key.estimator.name(),
                key.benchmark.name(),
                key.fingerprint
            ),
            QcfeError::DeadlineExceeded { elapsed, deadline } => write!(
                f,
                "deadline of {:.3} ms exceeded after {:.3} ms",
                deadline.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ),
        }
    }
}

impl std::error::Error for QcfeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QcfeError::Service(e) => Some(e),
            QcfeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServiceError> for QcfeError {
    fn from(e: ServiceError) -> Self {
        match e {
            // A scheduler deadline drop is the same caller-visible failure
            // as the gateway's own deadline check: surface it as the one
            // deadline error of the taxonomy.
            ServiceError::DeadlineExpired { waited, deadline } => QcfeError::DeadlineExceeded {
                elapsed: waited,
                deadline,
            },
            other => QcfeError::Service(other),
        }
    }
}

impl From<StoreError> for QcfeError {
    fn from(e: StoreError) -> Self {
        QcfeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::pipeline::EstimatorKind;
    use qcfe_db::DbEnvironment;
    use std::error::Error;

    #[test]
    fn lower_level_errors_convert_and_expose_sources() {
        let service: QcfeError = ServiceError::QueueFull {
            depth: 256,
            limit: 256,
        }
        .into();
        assert!(matches!(
            service,
            QcfeError::Service(ServiceError::QueueFull {
                depth: 256,
                limit: 256
            })
        ));
        assert!(service.source().is_some());
        assert!(service.to_string().contains("queue is full"));
        assert!(
            service.to_string().contains("256"),
            "the shed fault carries depth and limit: {service}"
        );

        // A scheduler deadline drop converts into the taxonomy's one
        // deadline error, not a nested service error.
        let expired: QcfeError = ServiceError::DeadlineExpired {
            waited: Duration::from_millis(9),
            deadline: Duration::from_millis(5),
        }
        .into();
        assert!(matches!(
            expired,
            QcfeError::DeadlineExceeded {
                elapsed,
                deadline,
            } if elapsed == Duration::from_millis(9) && deadline == Duration::from_millis(5)
        ));

        let store: QcfeError = StoreError::Io(std::io::Error::other("disk gone")).into();
        assert!(matches!(store, QcfeError::Store(_)));
        assert!(store.source().is_some());
        assert!(store.to_string().contains("disk gone"));
    }

    #[test]
    fn routing_errors_render_their_context() {
        let fingerprint = DbEnvironment::reference().fingerprint();
        let missing = QcfeError::SnapshotMissing {
            benchmark: BenchmarkKind::Tpch,
            fingerprint,
        };
        assert!(missing.to_string().contains(&fingerprint.to_hex()));
        assert!(missing.source().is_none());

        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::QcfeMscn,
            fingerprint,
        );
        let model = QcfeError::ModelMissing { key };
        assert!(model.to_string().contains("QCFE(mscn)"));

        let deadline = QcfeError::DeadlineExceeded {
            elapsed: Duration::from_micros(1500),
            deadline: Duration::from_micros(1000),
        };
        assert!(deadline.to_string().contains("deadline"));
    }
}

//! A small least-recently-used map used by the model registry and the
//! plan-encoding cache.
//!
//! Implemented as a `HashMap` plus a `BTreeMap` recency index (logical
//! clock → key), giving `O(log n)` touch/evict without external crates.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// A bounded map that evicts the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    clock: u64,
    map: HashMap<K, (V, u64)>,
    recency: BTreeMap<u64, K>,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Create a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            clock: 0,
            map: HashMap::new(),
            recency: BTreeMap::new(),
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total evictions since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Whether `key` is resident (does not touch recency).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Look up `key` without touching recency (diagnostics reads that must
    /// not distort the eviction order).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|(value, _)| value)
    }

    /// Look up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let (value, stamp) = self.map.get_mut(key)?;
        self.recency.remove(stamp);
        self.recency.insert(clock, key.clone());
        *stamp = clock;
        Some(value)
    }

    /// Insert or replace `key`, marking it most recently used. Returns the
    /// evicted `(key, value)` pair when the insert pushed the cache over
    /// capacity.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        if let Some((_, stamp)) = self.map.get(&key) {
            self.recency.remove(stamp);
        }
        self.map.insert(key.clone(), (value, self.clock));
        self.recency.insert(self.clock, key);
        if self.map.len() > self.capacity {
            let (_, victim) = self.recency.pop_first().expect("cache non-empty");
            let (value, _) = self.map.remove(&victim).expect("victim resident");
            self.evictions += 1;
            return Some((victim, value));
        }
        None
    }

    /// Remove `key` if resident.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let (value, stamp) = self.map.remove(key)?;
        self.recency.remove(&stamp);
        Some(value)
    }

    /// Keys ordered from least to most recently used (tests/diagnostics).
    pub fn keys_by_recency(&self) -> Vec<K> {
        self.recency.values().cloned().collect()
    }

    /// Drop every entry (capacity and the eviction counter are kept —
    /// invalidation is not eviction).
    pub fn clear(&mut self) {
        self.map.clear();
        self.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        assert!(lru.insert("a", 1).is_none());
        assert!(lru.insert("b", 2).is_none());
        // touch "a" so "b" becomes the victim
        assert_eq!(lru.get(&"a"), Some(&1));
        let evicted = lru.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert_eq!(lru.len(), 2);
        assert!(lru.contains(&"a") && lru.contains(&"c"));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut lru = LruCache::new(2);
        lru.insert("a", 1);
        lru.insert("b", 2);
        assert!(lru.insert("a", 10).is_none());
        assert_eq!(lru.get(&"a"), Some(&10));
        assert_eq!(lru.len(), 2);
        assert_eq!(lru.evictions(), 0);
    }

    #[test]
    fn remove_and_recency_order() {
        let mut lru = LruCache::new(3);
        lru.insert(1, "x");
        lru.insert(2, "y");
        lru.insert(3, "z");
        lru.get(&1);
        assert_eq!(lru.keys_by_recency(), vec![2, 3, 1]);
        assert_eq!(lru.remove(&3), Some("z"));
        assert_eq!(lru.remove(&3), None);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn clear_drops_entries_but_keeps_eviction_history() {
        let mut lru = LruCache::new(1);
        lru.insert(1, "x");
        lru.insert(2, "y"); // evicts 1
        assert_eq!(lru.evictions(), 1);
        lru.clear();
        assert!(lru.is_empty());
        assert!(lru.keys_by_recency().is_empty());
        assert_eq!(lru.evictions(), 1, "invalidation is not eviction");
        assert!(lru.insert(3, "z").is_none(), "cleared cache has room");
    }

    #[test]
    fn capacity_is_at_least_one() {
        let mut lru = LruCache::new(0);
        assert_eq!(lru.capacity(), 1);
        lru.insert(1, 1);
        let evicted = lru.insert(2, 2);
        assert_eq!(evicted, Some((1, 1)));
    }
}

//! Online snapshot refinement: the label buffer and policy knobs behind
//! [`crate::QcfeGateway::record_execution`].
//!
//! The paper's transfer workflow (Table VII) is a loop: a cold environment
//! warm-starts from the nearest neighbour's feature snapshot, then keeps
//! collecting its *own* labeled operator executions and refits from them
//! until the snapshot is as good as a locally trained one. This module
//! holds the serving-side state of that loop — a bounded per-shard
//! [`LabelBuffer`] of observed [`OperatorSample`]s, the
//! [`RefinementConfig`] that decides when enough labels have accumulated to
//! refit, and the [`FeedbackOutcome`] each feedback call reports back. The
//! refit itself (fit, persist, live snapshot swap, `Transferred →
//! TrainedHere` promotion) lives in the gateway.

use qcfe_core::snapshot::OperatorSample;
use std::collections::VecDeque;

/// Policy knobs of the gateway's online refinement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefinementConfig {
    /// Observed operator samples that must accumulate (since the last refit
    /// attempt) before a refit is triggered. Minimum 1.
    pub refit_threshold: usize,
    /// Optional drift gate: with a positive value, a triggered refit is
    /// only *installed* when
    /// [`qcfe_core::snapshot::FeatureSnapshot::relative_difference`]
    /// between the candidate and the serving snapshot reaches it — feedback
    /// that merely confirms the current snapshot does not churn the store.
    /// Zero installs every triggered refit.
    pub min_drift: f64,
    /// Most recent samples the per-shard [`LabelBuffer`] retains (older
    /// labels fall off the front). Refits always fit over the whole
    /// retained window. Minimum [`RefinementConfig::refit_threshold`].
    pub buffer_capacity: usize,
}

impl Default for RefinementConfig {
    fn default() -> Self {
        RefinementConfig {
            refit_threshold: 256,
            min_drift: 0.0,
            buffer_capacity: 4096,
        }
    }
}

impl RefinementConfig {
    /// The configuration with its invariants applied (threshold ≥ 1,
    /// capacity ≥ threshold, non-negative finite drift).
    pub(crate) fn normalized(self) -> Self {
        let refit_threshold = self.refit_threshold.max(1);
        RefinementConfig {
            refit_threshold,
            min_drift: if self.min_drift.is_finite() {
                self.min_drift.max(0.0)
            } else {
                0.0
            },
            buffer_capacity: self.buffer_capacity.max(refit_threshold),
        }
    }
}

/// A bounded sliding window of observed operator labels for one shard.
///
/// Feedback pushes samples at the back; once the window exceeds its
/// capacity the oldest labels fall off the front, so a long-running shard
/// refits from its *recent* behaviour. The buffer also counts samples
/// accumulated since the last refit attempt — the trigger the gateway's
/// [`RefinementConfig::refit_threshold`] compares against.
#[derive(Debug)]
pub struct LabelBuffer {
    samples: VecDeque<OperatorSample>,
    capacity: usize,
    since_refit: usize,
    total: u64,
}

impl LabelBuffer {
    /// An empty buffer retaining at most `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LabelBuffer {
            samples: VecDeque::new(),
            capacity: capacity.max(1),
            since_refit: 0,
            total: 0,
        }
    }

    /// Append observed samples, dropping the oldest beyond capacity.
    pub fn push(&mut self, samples: &[OperatorSample]) {
        self.samples.extend(samples.iter().copied());
        while self.samples.len() > self.capacity {
            self.samples.pop_front();
        }
        self.since_refit += samples.len();
        self.total += samples.len() as u64;
    }

    /// Samples accumulated since the last [`LabelBuffer::take_window`].
    pub fn since_refit(&self) -> usize {
        self.since_refit
    }

    /// Samples ever pushed (monotonic, unaffected by the window bound).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The retained window as a fitting set, resetting the since-refit
    /// counter (the samples stay in the window — refinement is a sliding
    /// fit, not a drain).
    pub fn take_window(&mut self) -> Vec<OperatorSample> {
        self.since_refit = 0;
        self.samples.iter().copied().collect()
    }
}

/// What one [`crate::QcfeGateway::record_execution`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedbackOutcome {
    /// Operator samples extracted from the executed query.
    pub samples: usize,
    /// Resident shards of the `(benchmark, fingerprint)` that received the
    /// samples. Zero means the labels had no owner (no shard running) and
    /// were dropped — feed labels to environments you are serving.
    pub shards: usize,
    /// Refits this call performed (fitted, persisted and swapped live).
    pub refits: usize,
    /// `Transferred → TrainedHere` promotions this call performed.
    pub promotions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::plan::OperatorKind;

    fn sample(n1: f64) -> OperatorSample {
        OperatorSample {
            kind: OperatorKind::SeqScan,
            n1,
            n2: 0.0,
            self_ms: 0.001 * n1,
        }
    }

    #[test]
    fn buffer_bounds_retention_and_counts_pushes() {
        let mut buffer = LabelBuffer::new(3);
        assert!(buffer.is_empty());
        buffer.push(&[sample(1.0), sample(2.0)]);
        buffer.push(&[sample(3.0), sample(4.0)]);
        assert_eq!(buffer.len(), 3, "oldest sample fell off");
        assert_eq!(
            buffer.since_refit(),
            4,
            "trigger counts pushes, not retention"
        );
        assert_eq!(buffer.total(), 4);
        let window = buffer.take_window();
        assert_eq!(
            window.iter().map(|s| s.n1).collect::<Vec<_>>(),
            vec![2.0, 3.0, 4.0],
            "window keeps the most recent samples in order"
        );
        assert_eq!(
            buffer.since_refit(),
            0,
            "taking the window resets the trigger"
        );
        assert_eq!(buffer.len(), 3, "the window is not drained");
        buffer.push(&[sample(5.0)]);
        assert_eq!(buffer.since_refit(), 1);
        assert_eq!(buffer.total(), 5);
    }

    #[test]
    fn config_normalization_applies_floors() {
        let cfg = RefinementConfig {
            refit_threshold: 0,
            min_drift: f64::NAN,
            buffer_capacity: 0,
        }
        .normalized();
        assert_eq!(cfg.refit_threshold, 1);
        assert_eq!(cfg.min_drift, 0.0);
        assert_eq!(cfg.buffer_capacity, 1);
        let cfg = RefinementConfig {
            refit_threshold: 100,
            min_drift: -0.5,
            buffer_capacity: 10,
        }
        .normalized();
        assert_eq!(cfg.buffer_capacity, 100, "window always covers a trigger");
        assert_eq!(cfg.min_drift, 0.0);
    }
}

//! # qcfe-serve — the online cost-estimation service layer
//!
//! The QCFE paper frames snapshot-based cost estimation as something a
//! *running database* consults per query, yet the experiment pipeline
//! (`qcfe_core::pipeline`) builds, trains and discards everything per call.
//! This crate supplies the serving substrate that turns those trained
//! artifacts into a long-lived, concurrent estimation node:
//!
//! * [`store::SnapshotStore`] — feature snapshots persisted to disk in the
//!   versioned `QCFS` binary codec, keyed by the
//!   [`qcfe_db::EnvFingerprint`] derived from knobs + hardware + storage
//!   format. Snapshots survive restarts and transfer across machines with
//!   matching environments (the paper's FST workflow), and round-trip
//!   bit-exactly: a reloaded snapshot produces identical estimates.
//! * [`registry::ModelRegistry`] — trained estimators behind
//!   `Arc<dyn CostModel + Send + Sync>` keyed by
//!   `(benchmark, estimator, fingerprint)`, with LRU eviction bounding
//!   resident models.
//! * [`service::EstimationService`] — a worker-thread pool draining a
//!   bounded request queue with **micro-batched inference**: every drained
//!   batch flows through the uniform `CostModel::predict_batch` API, so
//!   flat models run one matrix pass over all encodings (through an LRU
//!   plan-encoding cache) and tree-structured QPPNet models run staged
//!   operator-grouped forwards across every plan in the batch.
//! * [`metrics::ServiceMetrics`] — lock-free throughput, latency
//!   percentiles, queue depth, batch sizes and cache hit rate.
//!
//! ## Quick start
//!
//! ```no_run
//! use qcfe_serve::prelude::*;
//! use qcfe_core::pipeline::{prepare_context, ContextConfig, EstimatorKind};
//! use qcfe_core::estimators::MscnEstimator;
//! use qcfe_core::encoding::FeatureEncoder;
//! use qcfe_workloads::BenchmarkKind;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // Train once …
//! let kind = BenchmarkKind::Sysbench;
//! let ctx = prepare_context(kind, &ContextConfig::quick(kind));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
//! let (model, _) =
//!     MscnEstimator::train(encoder, &ctx.workload, Some(&ctx.snapshots_fso), None, 30, &mut rng);
//!
//! // … persist the environment's snapshot …
//! let env = &ctx.workload.environments[0];
//! let store = SnapshotStore::open("target/snapshots").unwrap();
//! let snapshot = ctx.snapshots_fso[0].clone().unwrap();
//! store.save(kind, env.fingerprint(), &snapshot).unwrap();
//!
//! // … register the model and serve concurrently.
//! let registry = ModelRegistry::new(8);
//! let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint());
//! registry.insert(key, Arc::new(model));
//! let service = EstimationService::start(
//!     registry.get(&key).unwrap(),
//!     Some(snapshot),
//!     ServiceConfig::default(),
//! );
//! let handle = service.handle();
//! // handle.estimate(plan) from any number of client threads …
//! ```

pub mod lru;
pub mod metrics;
pub mod registry;
pub mod service;
pub mod store;

pub use lru::LruCache;
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use registry::{ModelKey, ModelRegistry, RegistryStats};
pub use service::{
    plan_key, Estimate, EstimationService, ServiceConfig, ServiceError, ServiceHandle,
};
pub use store::{SnapshotStore, StoreError};

/// Convenient glob import for downstream crates, benches and examples.
pub mod prelude {
    pub use crate::metrics::MetricsSnapshot;
    pub use crate::registry::{ModelKey, ModelRegistry};
    pub use crate::service::{
        Estimate, EstimationService, ServiceConfig, ServiceError, ServiceHandle,
    };
    pub use crate::store::SnapshotStore;
}

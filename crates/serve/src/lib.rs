//! # qcfe-serve — the online cost-estimation service layer
//!
//! The QCFE paper frames snapshot-based cost estimation as something a
//! *running database* consults per query, across many concurrent
//! environments — each `(benchmark, knob configuration)` pair with its own
//! feature snapshot and trained estimator. This crate's front door is the
//! [`gateway::QcfeGateway`]: one routed, typed API that owns the
//! persistence, the model registry and a shard of per-environment
//! inference services, so callers submit requests instead of wiring
//! infrastructure.
//!
//! * [`gateway::QcfeGateway`] (built via [`gateway::GatewayBuilder`]) —
//!   routes a typed [`request::EstimateRequest`] to a lazily-started
//!   per-`(benchmark, estimator, fingerprint)` shard, warm-starts unseen
//!   environments from the nearest persisted fingerprint in knob-vector
//!   space (the paper's Table VII snapshot-transfer workflow, online),
//!   retires idle shards under an LRU cap, and answers with an
//!   [`request::EstimateResponse`] carrying full provenance.
//! * [`gateway::QcfeGateway::record_execution`] + [`refine`] — the online
//!   refinement loop: observed executions stream labels into bounded
//!   per-shard buffers; accumulating past the refit threshold refits the
//!   shard's snapshot from its own labels, persists it, swaps it into the
//!   running service without a restart, and promotes a transferred shard's
//!   provenance `Transferred → TrainedHere` (the paper's full Table VII
//!   transfer loop, online).
//! * [`error::QcfeError`] — the one error taxonomy every fallible gateway
//!   operation returns; [`service::ServiceError`] and [`store::StoreError`]
//!   convert into it via `From`.
//! * [`store::SnapshotStore`] — feature snapshots persisted to disk in the
//!   versioned `QCFS` binary codec, keyed by the
//!   [`qcfe_db::EnvFingerprint`], with knob-vector sidecars (`QVEC`) that
//!   make fingerprints searchable for nearest-neighbour transfer, and
//!   model-weight sidecars (`QCFW`) that persist trained estimators
//!   bit-exactly so a restarted node serves without retraining.
//! * [`registry::ModelRegistry`] — trained estimators behind
//!   `Arc<dyn CostModel + Send + Sync>` keyed by
//!   `(benchmark, estimator, fingerprint)`, with LRU eviction bounding
//!   resident models and an installable loader that lazily reloads
//!   evicted models from the store's `QCFW` sidecars
//!   (load-before-rebuild).
//! * [`service::EstimationService`] — a worker-thread pool draining a
//!   bounded request queue with **micro-batched inference** through the
//!   uniform `CostModel::predict_batch` API (the per-shard engine behind
//!   the gateway; still usable standalone).
//! * [`sched`] — multi-tenant admission control and deadline-aware batch
//!   formation between submission and the workers, configured via
//!   [`gateway::GatewayBuilder::scheduling`]. The pipeline is
//!   **admission → EDF → batch**: (1) *admission* — every request carries
//!   a [`sched::TenantId`] ([`sched::TenantId::ANONYMOUS`] by default, so
//!   single-tenant callers are untouched) checked against its tenant's
//!   token-bucket rate and bounded queue share; over-quota and
//!   exhausted-deadline submissions are rejected immediately with the
//!   typed, depth-and-limit-carrying [`service::ServiceError::QueueFull`]
//!   / [`error::QcfeError::DeadlineExceeded`], never parked; (2) *EDF* —
//!   admitted requests queue earliest-deadline-first (deadline-less
//!   requests sort last, FIFO among themselves, and age into the front
//!   after [`sched::SchedPolicy::age_after`] so they cannot starve);
//!   entries whose deadline passes while queued are dropped at pop with
//!   the typed fault instead of wasting inference; (3) *batch* — workers
//!   drain up to `max_batch` entries in that order into one batched
//!   inference call. The default policy is disabled: plain FIFO,
//!   bit-for-bit the pre-scheduling service.
//! * [`metrics::ServiceMetrics`] — lock-free throughput, latency
//!   percentiles, queue depth, batch sizes and cache hit rate, surfaced
//!   per shard via [`gateway::QcfeGateway::shard_metrics`]; with
//!   scheduling on, per-tenant [`metrics::TenantLane`]s (admitted,
//!   shed_quota, shed_deadline, batches_formed, queue-wait percentiles)
//!   make fairness measurable rather than asserted.
//! * [`replica`] — replicated serving across a static peer set:
//!   rendezvous (HRW) shard placement over `(benchmark, estimator,
//!   fingerprint)` keys with an advisory liveness mask
//!   ([`replica::ReplicaSet`]), and fire-and-forget state shipping
//!   ([`replica::ShipEvent`] through a [`replica::ReplicationSink`]) of
//!   the exact persisted `QCFS`/`QCFW` bytes on every publish and refit,
//!   so surviving peers can absorb a dead peer's shards bit-identically
//!   ([`gateway::QcfeGateway::apply_shipped_snapshot`] /
//!   [`gateway::QcfeGateway::apply_shipped_model`]). Revival is
//!   anti-entropic: a peer seen dead→alive parks in a *reviving* state
//!   (excluded from placement) while the observer diffs store manifests
//!   ([`store::SnapshotStore::manifest`]) and re-ships divergent keys,
//!   promoting it back only once the diff drains. The network layer
//!   (`qcfe-net`) provides the QCFP transport and failover routing.
//!
//! ## Quick start
//!
//! ```no_run
//! use qcfe_serve::prelude::*;
//! use qcfe_core::pipeline::{prepare_context, ContextConfig, EstimatorKind};
//! use qcfe_core::estimators::MscnEstimator;
//! use qcfe_core::encoding::FeatureEncoder;
//! use qcfe_workloads::BenchmarkKind;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! // Train once …
//! let kind = BenchmarkKind::Sysbench;
//! let ctx = prepare_context(kind, &ContextConfig::quick(kind));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
//! let (model, _) =
//!     MscnEstimator::train(encoder, &ctx.workload, Some(&ctx.snapshots_fso), None, 30, &mut rng);
//!
//! // … build the gateway, publish the environment, register the model …
//! let env = ctx.workload.environments[0].clone();
//! let snapshot = ctx.snapshots_fso[0].clone().unwrap();
//! let gateway = QcfeGateway::builder("target/snapshots").build().unwrap();
//! gateway.publish_snapshot(kind, &env, &snapshot).unwrap();
//! let key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint());
//! gateway.register_model(key, Arc::new(model));
//!
//! // … and serve typed requests from any number of client threads.
//! # let plan: qcfe_db::plan::PlanNode = unimplemented!();
//! let response = gateway
//!     .estimate(EstimateRequest::new(kind, env, plan))
//!     .unwrap();
//! println!("{} ms via {:?}", response.cost_ms, response.provenance.snapshot_origin);
//! ```

pub mod error;
pub mod gateway;
pub mod lru;
pub mod metrics;
pub mod refine;
pub mod registry;
pub mod replica;
pub mod request;
pub mod sched;
pub mod service;
pub mod store;
#[cfg(test)]
mod test_support;

pub use error::QcfeError;
pub use gateway::{GatewayBuilder, GatewayStats, ModelProvider, PendingResponse, QcfeGateway};
pub use lru::LruCache;
pub use metrics::TenantLane;
pub use metrics::{MetricsSnapshot, ReplicationHealth, ServiceMetrics};
pub use refine::{FeedbackOutcome, LabelBuffer, RefinementConfig};
pub use registry::{
    EvictedModel, ModelKey, ModelLoader, ModelRegistry, ModelSource, RegistryStats, ResolvedModel,
};
pub use replica::{ReplicaError, ReplicaSet, ReplicationSink, ShipEvent};
pub use request::{EstimateRequest, EstimateResponse, Provenance, RequestOptions, SnapshotOrigin};
pub use sched::{SchedPolicy, TenantId, TenantQuota};
pub use service::{
    plan_key, CompletionNotify, Estimate, EstimationService, PendingEstimate, ServiceConfig,
    ServiceError, ServiceHandle,
};
pub use store::{ManifestEntry, SnapshotStore, StoreError};

/// Convenient glob import for downstream crates, benches and examples.
pub mod prelude {
    pub use crate::error::QcfeError;
    pub use crate::gateway::{GatewayBuilder, GatewayStats, PendingResponse, QcfeGateway};
    pub use crate::metrics::{MetricsSnapshot, ReplicationHealth, TenantLane};
    pub use crate::refine::{FeedbackOutcome, RefinementConfig};
    pub use crate::registry::{ModelKey, ModelRegistry};
    pub use crate::replica::{ReplicaSet, ReplicationSink, ShipEvent};
    pub use crate::request::{
        EstimateRequest, EstimateResponse, Provenance, RequestOptions, SnapshotOrigin,
    };
    pub use crate::sched::{SchedPolicy, TenantId, TenantQuota};
    pub use crate::service::{
        Estimate, EstimationService, ServiceConfig, ServiceError, ServiceHandle,
    };
    pub use crate::store::{ManifestEntry, SnapshotStore};
}

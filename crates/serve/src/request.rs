//! Typed requests and responses of the serving front door.
//!
//! An [`EstimateRequest`] names *what* to estimate (a physical plan), *for
//! which deployment* (`benchmark` + the full [`DbEnvironment`] the client
//! runs under) and *how* ([`RequestOptions`]: estimator family, transfer
//! policy, load-shedding, plus an optional deadline). The gateway answers
//! with an [`EstimateResponse`] carrying the prediction and its
//! [`Provenance`] — which model produced it, where the feature snapshot
//! came from ([`SnapshotOrigin`]), and where the time went.

use crate::registry::ModelKey;
use crate::sched::TenantId;
use qcfe_core::pipeline::EstimatorKind;
use qcfe_db::env::EnvFingerprint;
use qcfe_db::plan::PlanNode;
use qcfe_db::DbEnvironment;
use qcfe_workloads::BenchmarkKind;
use std::sync::Arc;
use std::time::Duration;

/// Per-request policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOptions {
    /// Which estimator family serves the request.
    pub estimator: EstimatorKind,
    /// Whether an unseen environment may warm-start from the nearest
    /// persisted fingerprint (the paper's snapshot-transfer workflow).
    /// With transfer disabled, QCFE estimators fail fast with
    /// [`crate::QcfeError::SnapshotMissing`] instead.
    pub allow_transfer: bool,
    /// `true` submits open-loop: a full shard queue fails the request with
    /// [`crate::service::ServiceError::QueueFull`] instead of blocking.
    pub shed_load: bool,
    /// The tenant the request is accounted to. Defaults to
    /// [`TenantId::ANONYMOUS`], under which all pre-scheduling callers
    /// run. With a `GatewayBuilder::scheduling` policy in force, the
    /// tenant selects the admission quota and the per-tenant metric lane.
    pub tenant: TenantId,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            estimator: EstimatorKind::QcfeMscn,
            allow_transfer: true,
            shed_load: false,
            tenant: TenantId::ANONYMOUS,
        }
    }
}

/// One typed estimation request.
#[derive(Debug, Clone)]
pub struct EstimateRequest {
    /// The benchmark/schema the plan belongs to.
    pub benchmark: BenchmarkKind,
    /// The complete environment the client runs under. The gateway derives
    /// the routing fingerprint and — for unseen environments — the
    /// knob vector used for nearest-fingerprint transfer from it. Shared
    /// via `Arc` so steady-state clients re-submit their environment
    /// without deep-cloning knobs and hardware per request.
    pub environment: Arc<DbEnvironment>,
    /// The physical plan to estimate.
    pub plan: PlanNode,
    /// Optional end-to-end deadline. When it elapses before the estimate
    /// is produced, the request fails with
    /// [`crate::QcfeError::DeadlineExceeded`].
    pub deadline: Option<Duration>,
    /// Policy knobs.
    pub options: RequestOptions,
}

impl EstimateRequest {
    /// A request with default options and no deadline. Accepts either an
    /// owned [`DbEnvironment`] or a pre-shared `Arc<DbEnvironment>` — hot
    /// loops should build the `Arc` once and clone the pointer per request.
    pub fn new(
        benchmark: BenchmarkKind,
        environment: impl Into<Arc<DbEnvironment>>,
        plan: PlanNode,
    ) -> Self {
        EstimateRequest {
            benchmark,
            environment: environment.into(),
            plan,
            deadline: None,
            options: RequestOptions::default(),
        }
    }

    /// Set the estimator family.
    pub fn with_estimator(mut self, estimator: EstimatorKind) -> Self {
        self.options.estimator = estimator;
        self
    }

    /// Set the end-to-end deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Account the request to a tenant (admission quota + metric lane).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.options.tenant = tenant;
        self
    }

    /// Replace the full option set.
    pub fn with_options(mut self, options: RequestOptions) -> Self {
        self.options = options;
        self
    }
}

/// Where the serving snapshot behind a response came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SnapshotOrigin {
    /// The snapshot was persisted under the request's own fingerprint —
    /// this environment was profiled (or published) here.
    TrainedHere,
    /// The environment was unseen; the shard warm-started from the nearest
    /// persisted fingerprint.
    Transferred {
        /// The fingerprint the snapshot was transferred from.
        source: EnvFingerprint,
        /// Knob-vector distance between the request's environment and the
        /// source environment.
        distance: f64,
    },
    /// The shard's serving state was restored from persisted `QCFW` model
    /// weights (plus the fingerprint's own snapshot, when the estimator
    /// needs one) — a cold-restarted gateway answering *without
    /// retraining*. Estimates are bit-identical to the pre-restart model.
    /// When the snapshot itself was transferred from a neighbour, the
    /// origin stays [`SnapshotOrigin::Transferred`] (preserving its
    /// observables) and the disk load is reported through
    /// [`Provenance::model_from_disk`] instead.
    LoadedFromDisk,
    /// The shard serves without a snapshot (non-QCFE baselines only).
    None,
}

impl SnapshotOrigin {
    /// Whether the snapshot was transferred from another fingerprint.
    pub fn is_transferred(&self) -> bool {
        matches!(self, SnapshotOrigin::Transferred { .. })
    }

    /// Whether the shard's model weights were reloaded from disk instead of
    /// trained (or registered) in this process.
    pub fn is_from_disk(&self) -> bool {
        matches!(self, SnapshotOrigin::LoadedFromDisk)
    }
}

/// How a response was produced.
///
/// The snapshot provenance (`snapshot_origin`, `refined`) is read from the
/// shard when the reply is consumed. A refit landing *concurrently* with an
/// in-flight request can therefore label that one response with the
/// neighbouring snapshot generation (the estimate itself is never torn —
/// each inference batch runs entirely under one snapshot). Once a caller
/// has observed the promoted provenance, it never regresses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provenance {
    /// The serving key — benchmark, estimator family and environment
    /// fingerprint — that answered.
    pub model_key: ModelKey,
    /// Where the shard's feature snapshot came from.
    pub snapshot_origin: SnapshotOrigin,
    /// Whether the shard's model weights were restored from a persisted
    /// `QCFW` sidecar. Carried separately from [`SnapshotOrigin`] so a
    /// transferred snapshot keeps its `source`/`distance` observables even
    /// when the model came from disk (in that combination
    /// `snapshot_origin` stays [`SnapshotOrigin::Transferred`] and this
    /// flag records the disk load).
    pub model_from_disk: bool,
    /// Whether the serving snapshot has been refined online from this
    /// environment's own observed labels
    /// ([`crate::QcfeGateway::record_execution`]): set when a resident
    /// shard's snapshot was refit and swapped live, and restored across
    /// restarts from the persisted snapshot's
    /// [`qcfe_core::snapshot::FeatureSnapshot::refined`] bit. A promoted
    /// shard reports `TrainedHere` + `refined = true` — the completed
    /// Table VII loop.
    pub refined: bool,
    /// Whether this request started the shard (cold start) rather than
    /// reusing a running one.
    pub cold_start: bool,
    /// Microseconds from shard submission until this reply was consumed:
    /// queue wait plus batched inference. For a
    /// [`crate::QcfeGateway::estimate_many`] burst the whole burst is
    /// submitted up front and replies are consumed in plan order, so later
    /// responses include time spent waiting behind earlier replies.
    pub service_us: u64,
    /// Microseconds end-to-end inside the gateway, including routing and
    /// any cold-start work.
    pub total_us: u64,
}

/// One answered estimation request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateResponse {
    /// Predicted query latency in milliseconds.
    pub cost_ms: f64,
    /// Size of the micro-batch the request was served in.
    pub batch_size: usize,
    /// Whether the plan encoding came from the shard's encoding cache.
    pub encoding_cache_hit: bool,
    /// How the estimate was produced.
    pub provenance: Provenance,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_db::plan::PhysicalOp;

    fn plan() -> PlanNode {
        PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![])
    }

    #[test]
    fn request_builders_compose() {
        let request =
            EstimateRequest::new(BenchmarkKind::Sysbench, DbEnvironment::reference(), plan())
                .with_estimator(EstimatorKind::Pgsql)
                .with_deadline(Duration::from_millis(5));
        assert_eq!(request.options.estimator, EstimatorKind::Pgsql);
        assert_eq!(request.deadline, Some(Duration::from_millis(5)));
        assert!(request.options.allow_transfer, "defaults preserved");
        assert!(!request.options.shed_load);

        let strict = request.with_options(RequestOptions {
            estimator: EstimatorKind::QcfeMscn,
            allow_transfer: false,
            shed_load: true,
            ..RequestOptions::default()
        });
        assert!(!strict.options.allow_transfer);
        assert!(strict.options.shed_load);
        assert!(strict.options.tenant.is_anonymous(), "default tenant");

        let tenanted = strict.with_tenant(TenantId(7));
        assert_eq!(tenanted.options.tenant, TenantId(7));
    }

    #[test]
    fn snapshot_origin_classification() {
        assert!(!SnapshotOrigin::TrainedHere.is_transferred());
        assert!(!SnapshotOrigin::None.is_transferred());
        assert!(SnapshotOrigin::Transferred {
            source: EnvFingerprint(7),
            distance: 0.25
        }
        .is_transferred());
    }
}

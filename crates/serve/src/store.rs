//! Disk persistence for feature snapshots, keyed by environment fingerprint.
//!
//! The paper's FST workflow fits a snapshot once per environment and reuses
//! it for every model trained under that environment — including after a
//! restart or on a different machine with the same configuration. The store
//! lays snapshots out as
//!
//! ```text
//! <root>/<benchmark>/<fingerprint>.qcfs
//! ```
//!
//! using the versioned `QCFS` binary codec of
//! [`qcfe_core::snapshot::FeatureSnapshot::to_bytes`], which round-trips
//! coefficients bit-exactly: a reloaded snapshot yields *identical*
//! estimates, not merely close ones. Writes go through a temp file plus
//! rename so a crashed writer never leaves a torn snapshot behind.

use qcfe_core::snapshot::{FeatureSnapshot, SnapshotCodecError};
use qcfe_db::env::{knob_distance, EnvFingerprint};
use qcfe_db::DbEnvironment;
use qcfe_workloads::BenchmarkKind;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of knob-vector sidecar files.
const VECTOR_MAGIC: &[u8; 4] = b"QVEC";
/// Current knob-vector codec version.
const VECTOR_VERSION: u16 = 1;

/// Errors from the snapshot store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but does not decode (corruption or version skew).
    Codec(SnapshotCodecError),
    /// A knob-vector sidecar file exists but does not decode.
    Vector(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "snapshot store codec error: {e}"),
            StoreError::Vector(e) => write!(f, "snapshot store knob-vector error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Vector(_) => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotCodecError> for StoreError {
    fn from(e: SnapshotCodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// Decode a knob-vector sidecar file.
fn decode_vector(bytes: &[u8]) -> Result<Vec<f64>, StoreError> {
    if bytes.len() < 8 || &bytes[..4] != VECTOR_MAGIC {
        return Err(StoreError::Vector("not a QVEC file (bad magic)".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VECTOR_VERSION {
        return Err(StoreError::Vector(format!(
            "unsupported knob-vector version {version}"
        )));
    }
    let dim = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    let body = &bytes[8..];
    if body.len() != dim * 8 {
        return Err(StoreError::Vector(format!(
            "knob-vector body is {} bytes, expected {} for dim {dim}",
            body.len(),
            dim * 8
        )));
    }
    Ok(body
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

/// File-system slug for a benchmark directory.
fn benchmark_slug(kind: BenchmarkKind) -> &'static str {
    match kind {
        BenchmarkKind::Tpch => "tpch",
        BenchmarkKind::JobLight => "joblight",
        BenchmarkKind::Sysbench => "sysbench",
    }
}

/// A directory of persisted feature snapshots keyed by
/// `(benchmark, environment fingerprint)`.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    root: PathBuf,
}

impl SnapshotStore {
    /// Extension of snapshot files.
    pub const EXTENSION: &'static str = "qcfs";

    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(SnapshotStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path a snapshot is stored at.
    pub fn path_for(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}",
            fingerprint.to_hex(),
            Self::EXTENSION
        ))
    }

    /// Persist a snapshot (atomic temp-file + rename).
    ///
    /// The temp name is unique per process *and* per call so concurrent
    /// savers of the same key never interleave writes into one file; the
    /// final rename is atomic, last writer wins.
    pub fn save(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, StoreError> {
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = self.path_for(benchmark, fingerprint);
        let dir = path.parent().expect("store paths have a parent");
        std::fs::create_dir_all(dir)?;
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            fingerprint.to_hex(),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, snapshot.to_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(path)
    }

    /// Load a snapshot; `Ok(None)` when never persisted.
    pub fn load(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<FeatureSnapshot>, StoreError> {
        let path = self.path_for(benchmark, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(FeatureSnapshot::from_bytes(&bytes)?))
    }

    /// Whether a snapshot is persisted for the key.
    pub fn contains(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> bool {
        self.path_for(benchmark, fingerprint).is_file()
    }

    /// Delete a persisted snapshot; returns whether one existed.
    pub fn remove(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<bool, StoreError> {
        match std::fs::remove_file(self.path_for(benchmark, fingerprint)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Fingerprints persisted for a benchmark, in ascending order.
    pub fn list(&self, benchmark: BenchmarkKind) -> Result<Vec<EnvFingerprint>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::EXTENSION) {
                continue;
            }
            if let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(EnvFingerprint::from_hex)
            {
                out.push(fp);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Extension of knob-vector sidecar files.
    pub const VECTOR_EXTENSION: &'static str = "qvec";

    /// Path an environment's knob vector is stored at.
    pub fn vector_path_for(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}",
            fingerprint.to_hex(),
            Self::VECTOR_EXTENSION
        ))
    }

    /// Persist an environment's knob vector next to its snapshot (atomic
    /// temp-file + rename, like [`SnapshotStore::save`]). The vector makes
    /// the fingerprint *searchable*: nearest-neighbour lookups over
    /// persisted vectors drive the gateway's cross-environment snapshot
    /// transfer.
    pub fn save_vector(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        vector: &[f64],
    ) -> Result<PathBuf, StoreError> {
        static VECTOR_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = self.vector_path_for(benchmark, fingerprint);
        let dir = path.parent().expect("store paths have a parent");
        std::fs::create_dir_all(dir)?;
        let mut bytes = Vec::with_capacity(8 + 8 * vector.len());
        bytes.extend_from_slice(VECTOR_MAGIC);
        bytes.extend_from_slice(&VECTOR_VERSION.to_le_bytes());
        let dim = u16::try_from(vector.len())
            .map_err(|_| StoreError::Vector(format!("vector dim {} too large", vector.len())))?;
        bytes.extend_from_slice(&dim.to_le_bytes());
        for v in vector {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let seq = VECTOR_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.{}.{}.vtmp",
            fingerprint.to_hex(),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(path)
    }

    /// Load a persisted knob vector; `Ok(None)` when never persisted.
    pub fn load_vector(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<Vec<f64>>, StoreError> {
        let path = self.vector_path_for(benchmark, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(decode_vector(&bytes)?))
    }

    /// Persist both halves of an environment's serving state — its feature
    /// snapshot and its knob vector — under the environment's fingerprint.
    /// This is the publication path the gateway uses; environments saved
    /// this way participate in nearest-fingerprint transfer.
    pub fn save_env(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let fingerprint = environment.fingerprint();
        let path = self.save(benchmark, fingerprint, snapshot)?;
        self.save_vector(benchmark, fingerprint, &environment.knob_vector())?;
        Ok(path)
    }

    /// Every persisted `(fingerprint, knob vector)` pair for a benchmark,
    /// in ascending fingerprint order. Unreadable or corrupt sidecar files
    /// are skipped — a damaged vector must degrade transfer candidates, not
    /// fail lookups.
    pub fn list_vectors(
        &self,
        benchmark: BenchmarkKind,
    ) -> Result<Vec<(EnvFingerprint, Vec<f64>)>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::VECTOR_EXTENSION) {
                continue;
            }
            let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(EnvFingerprint::from_hex)
            else {
                continue;
            };
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Ok(vector) = decode_vector(&bytes) {
                out.push((fp, vector));
            }
        }
        out.sort_by_key(|(fp, _)| *fp);
        Ok(out)
    }

    /// The persisted environment nearest to `query` in knob-vector space,
    /// as a `(fingerprint, distance)` pair.
    ///
    /// Only environments with *both* a knob vector and a decodable snapshot
    /// count as candidates (a vector without its snapshot cannot seed a
    /// warm start), and `exclude` — normally the querying environment's own
    /// fingerprint — never matches itself.
    pub fn nearest_environment(
        &self,
        benchmark: BenchmarkKind,
        query: &[f64],
        exclude: EnvFingerprint,
    ) -> Result<Option<(EnvFingerprint, f64)>, StoreError> {
        let mut best: Option<(EnvFingerprint, f64)> = None;
        for (fp, vector) in self.list_vectors(benchmark)? {
            if fp == exclude || !self.contains(benchmark, fp) {
                continue;
            }
            let d = knob_distance(query, &vector);
            if !d.is_finite() {
                continue;
            }
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((fp, d));
            }
        }
        Ok(best)
    }

    /// Load the snapshot for an environment, or fit one with `fit` and
    /// persist it — the serving layer's "warm start after restart" path.
    pub fn load_or_insert_with<F>(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        fit: F,
    ) -> Result<FeatureSnapshot, StoreError>
    where
        F: FnOnce() -> FeatureSnapshot,
    {
        if let Some(snapshot) = self.load(benchmark, fingerprint)? {
            return Ok(snapshot);
        }
        let snapshot = fit();
        self.save(benchmark, fingerprint, &snapshot)?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::snapshot::OperatorSample;
    use qcfe_db::plan::OperatorKind;
    use qcfe_db::DbEnvironment;

    fn sample_snapshot(slope: f64) -> FeatureSnapshot {
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 50) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: slope * n + 0.25,
                }
            })
            .collect();
        FeatureSnapshot::fit(&samples)
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("qcfe-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("store opens")
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let store = temp_store("roundtrip");
        let fp = DbEnvironment::reference().fingerprint();
        let snap = sample_snapshot(0.004);
        let path = store.save(BenchmarkKind::Sysbench, fp, &snap).unwrap();
        assert!(path.is_file());
        let loaded = store
            .load(BenchmarkKind::Sysbench, fp)
            .unwrap()
            .expect("present");
        assert_eq!(loaded, snap);
        assert_eq!(loaded.relative_difference(&snap), 0.0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_snapshots_read_as_none_and_listing_tracks_saves() {
        let store = temp_store("listing");
        let fp1 = DbEnvironment::reference().fingerprint();
        let mut env2 = DbEnvironment::reference();
        env2.os_overhead = 1.07;
        let fp2 = env2.fingerprint();
        assert!(store.load(BenchmarkKind::Tpch, fp1).unwrap().is_none());
        assert!(store.list(BenchmarkKind::Tpch).unwrap().is_empty());
        store
            .save(BenchmarkKind::Tpch, fp1, &sample_snapshot(0.001))
            .unwrap();
        store
            .save(BenchmarkKind::Tpch, fp2, &sample_snapshot(0.002))
            .unwrap();
        let mut expected = vec![fp1, fp2];
        expected.sort();
        assert_eq!(store.list(BenchmarkKind::Tpch).unwrap(), expected);
        assert!(store.contains(BenchmarkKind::Tpch, fp1));
        assert!(
            !store.contains(BenchmarkKind::Sysbench, fp1),
            "keys are per benchmark"
        );
        assert!(store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        assert!(!store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_or_insert_fits_once_then_reuses() {
        let store = temp_store("loi");
        let fp = DbEnvironment::reference().fingerprint();
        let mut fits = 0;
        let first = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.003)
            })
            .unwrap();
        let second = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.009)
            })
            .unwrap();
        assert_eq!(fits, 1, "second call must come from disk");
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn knob_vectors_roundtrip_and_list() {
        let store = temp_store("vectors");
        let env = DbEnvironment::reference();
        let fp = env.fingerprint();
        assert!(store
            .load_vector(BenchmarkKind::Tpch, fp)
            .unwrap()
            .is_none());
        assert!(store.list_vectors(BenchmarkKind::Tpch).unwrap().is_empty());
        store
            .save_env(BenchmarkKind::Tpch, &env, &sample_snapshot(0.002))
            .unwrap();
        let loaded = store
            .load_vector(BenchmarkKind::Tpch, fp)
            .unwrap()
            .expect("vector persisted");
        assert_eq!(loaded, env.knob_vector());
        assert_eq!(
            store.list_vectors(BenchmarkKind::Tpch).unwrap(),
            vec![(fp, env.knob_vector())]
        );
        // Corrupt sidecars are skipped by listing but surfaced by load.
        std::fs::write(store.vector_path_for(BenchmarkKind::Tpch, fp), b"junk").unwrap();
        assert!(store.list_vectors(BenchmarkKind::Tpch).unwrap().is_empty());
        match store.load_vector(BenchmarkKind::Tpch, fp) {
            Err(StoreError::Vector(_)) => {}
            other => panic!("expected vector error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn nearest_environment_finds_the_closest_persisted_fingerprint() {
        let store = temp_store("nearest");
        let kind = BenchmarkKind::Sysbench;
        let reference = DbEnvironment::reference();
        let mut far = reference.clone();
        far.os_overhead = 1.5;
        let mut near = reference.clone();
        near.os_overhead = 1.01;
        store.save_env(kind, &far, &sample_snapshot(0.001)).unwrap();
        store
            .save_env(kind, &near, &sample_snapshot(0.002))
            .unwrap();

        let query = reference.knob_vector();
        let (fp, d) = store
            .nearest_environment(kind, &query, reference.fingerprint())
            .unwrap()
            .expect("two candidates persisted");
        assert_eq!(fp, near.fingerprint(), "closest os_overhead must win");
        assert!(d > 0.0 && d < reference.distance_to(&far));

        // The querying environment never matches itself.
        let (self_fp, self_d) = store
            .nearest_environment(kind, &near.knob_vector(), near.fingerprint())
            .unwrap()
            .expect("other candidate remains");
        assert_eq!(self_fp, far.fingerprint());
        assert!(self_d > 0.0);

        // A vector whose snapshot was deleted is no longer a candidate.
        store.remove(kind, near.fingerprint()).unwrap();
        let (fp, _) = store
            .nearest_environment(kind, &query, reference.fingerprint())
            .unwrap()
            .expect("far candidate remains");
        assert_eq!(fp, far.fingerprint());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_files_surface_codec_errors() {
        let store = temp_store("corrupt");
        let fp = DbEnvironment::reference().fingerprint();
        let path = store.path_for(BenchmarkKind::Sysbench, fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        match store.load(BenchmarkKind::Sysbench, fp) {
            Err(StoreError::Codec(_)) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}

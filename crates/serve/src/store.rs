//! Disk persistence for feature snapshots, keyed by environment fingerprint.
//!
//! The paper's FST workflow fits a snapshot once per environment and reuses
//! it for every model trained under that environment — including after a
//! restart or on a different machine with the same configuration. The store
//! lays an environment's serving state out as sibling files:
//!
//! ```text
//! <root>/<benchmark>/<fingerprint>.qcfs             feature snapshot (QCFS)
//! <root>/<benchmark>/<fingerprint>.qvec             knob vector (QVEC)
//! <root>/<benchmark>/<fingerprint>.<estimator>.qcfw trained weights (QCFW)
//! ```
//!
//! using the versioned binary codec family (`QCFS` in
//! [`qcfe_core::snapshot`], `QCFW` in [`qcfe_core::model_codec`] /
//! `qcfe_nn::codec`, `QVEC` below), which round-trips every coefficient and
//! weight bit-exactly: a reloaded snapshot or model yields *identical*
//! estimates, not merely close ones. The weight sidecars are what make a
//! restarted estimator self-serving — [`SnapshotStore::load_model`] hands
//! back a ready [`PersistedModel`] instead of forcing a retrain. All writes
//! go through a temp file plus rename so a crashed writer never leaves a
//! torn file behind, and concurrent readers only ever observe complete
//! frames.

use qcfe_core::model_codec::{ModelCodecError, PersistedModel};
use qcfe_core::pipeline::EstimatorKind;
use qcfe_core::snapshot::{FeatureSnapshot, SnapshotCodecError};
use qcfe_db::env::{knob_distance, EnvFingerprint};
use qcfe_db::DbEnvironment;
use qcfe_workloads::BenchmarkKind;
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of knob-vector sidecar files.
const VECTOR_MAGIC: &[u8; 4] = b"QVEC";
/// Current knob-vector codec version.
const VECTOR_VERSION: u16 = 1;

/// Errors from the snapshot store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but does not decode (corruption or version skew).
    Codec(SnapshotCodecError),
    /// A knob-vector sidecar file exists but does not decode.
    Vector(String),
    /// A model-weight sidecar file exists but does not decode, or the
    /// save/load request is inconsistent with the estimator family.
    Model(ModelCodecError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "snapshot store codec error: {e}"),
            StoreError::Vector(e) => write!(f, "snapshot store knob-vector error: {e}"),
            StoreError::Model(e) => write!(f, "snapshot store model-weight error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec(e) => Some(e),
            StoreError::Vector(_) => None,
            StoreError::Model(e) => Some(e),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotCodecError> for StoreError {
    fn from(e: SnapshotCodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<ModelCodecError> for StoreError {
    fn from(e: ModelCodecError) -> Self {
        StoreError::Model(e)
    }
}

/// Decode a knob-vector sidecar file.
fn decode_vector(bytes: &[u8]) -> Result<Vec<f64>, StoreError> {
    if bytes.len() < 8 || &bytes[..4] != VECTOR_MAGIC {
        return Err(StoreError::Vector("not a QVEC file (bad magic)".into()));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VECTOR_VERSION {
        return Err(StoreError::Vector(format!(
            "unsupported knob-vector version {version}"
        )));
    }
    let dim = u16::from_le_bytes([bytes[6], bytes[7]]) as usize;
    let body = &bytes[8..];
    if body.len() != dim * 8 {
        return Err(StoreError::Vector(format!(
            "knob-vector body is {} bytes, expected {} for dim {dim}",
            body.len(),
            dim * 8
        )));
    }
    Ok(body
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect())
}

/// File-system slug for a benchmark directory.
fn benchmark_slug(kind: BenchmarkKind) -> &'static str {
    match kind {
        BenchmarkKind::Tpch => "tpch",
        BenchmarkKind::JobLight => "joblight",
        BenchmarkKind::Sysbench => "sysbench",
    }
}

/// File-system slug of an estimator family (embedded in weight-sidecar
/// names).
fn estimator_slug(kind: EstimatorKind) -> &'static str {
    match kind {
        EstimatorKind::Pgsql => "pgsql",
        EstimatorKind::Mscn => "mscn",
        EstimatorKind::QppNet => "qppnet",
        EstimatorKind::QcfeMscn => "qcfe-mscn",
        EstimatorKind::QcfeQpp => "qcfe-qpp",
    }
}

/// Inverse of [`estimator_slug`], used when listing persisted weights.
fn estimator_from_slug(slug: &str) -> Option<EstimatorKind> {
    EstimatorKind::ALL
        .iter()
        .copied()
        .find(|k| estimator_slug(*k) == slug)
}

/// Whether a decoded weight payload belongs to the estimator family it was
/// requested (or is being saved) under. The analytical `PGSQL` baseline has
/// no weights at all.
fn model_matches_estimator(model: &PersistedModel, estimator: EstimatorKind) -> bool {
    matches!(
        (model, estimator),
        (
            PersistedModel::Mscn(_) | PersistedModel::MscnInt8(_),
            EstimatorKind::Mscn | EstimatorKind::QcfeMscn
        ) | (
            PersistedModel::QppNet(_) | PersistedModel::QppNetInt8(_),
            EstimatorKind::QppNet | EstimatorKind::QcfeQpp
        )
    )
}

/// One entry of a store manifest: the identity of a persisted artifact
/// plus a CRC-32 over its *verbatim file bytes* — the exact `QCFS`/`QCFW`
/// payload replication ships. Two stores hold bit-identical state for a
/// key exactly when their entries for it carry equal CRCs, which is what
/// the revival catch-up handshake diffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManifestEntry {
    /// A persisted feature snapshot (`<fp>.qcfs`).
    Snapshot {
        /// The benchmark directory the snapshot lives under.
        benchmark: BenchmarkKind,
        /// The environment fingerprint it is keyed by.
        fingerprint: EnvFingerprint,
        /// CRC-32 over the verbatim `QCFS` file bytes.
        crc: u32,
    },
    /// Persisted model weights (`<fp>.<estimator>.qcfw`).
    Model {
        /// The benchmark directory the weights live under.
        benchmark: BenchmarkKind,
        /// The estimator family of the serving key.
        estimator: EstimatorKind,
        /// The environment fingerprint of the serving key.
        fingerprint: EnvFingerprint,
        /// CRC-32 over the verbatim `QCFW` file bytes.
        crc: u32,
    },
}

/// A directory of persisted feature snapshots keyed by
/// `(benchmark, environment fingerprint)`.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    root: PathBuf,
}

impl SnapshotStore {
    /// Extension of snapshot files.
    pub const EXTENSION: &'static str = "qcfs";

    /// The crash-safe write shared by every sidecar kind: a temp file
    /// unique per process *and* per call (pid + process-wide sequence
    /// number, so concurrent savers of the same key never interleave
    /// writes into one file) followed by an atomic rename — last writer
    /// wins and readers only ever observe complete files.
    fn write_atomic(path: &Path, tmp_tag: &str, bytes: &[u8]) -> Result<(), StoreError> {
        static WRITE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = path.parent().expect("store paths have a parent");
        std::fs::create_dir_all(dir)?;
        let seq = WRITE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(".{tmp_tag}.{}.{}.tmp", std::process::id(), seq));
        std::fs::write(&tmp, bytes)?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(())
    }

    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(SnapshotStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path a snapshot is stored at.
    pub fn path_for(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}",
            fingerprint.to_hex(),
            Self::EXTENSION
        ))
    }

    /// Persist a snapshot (atomic temp-file + rename via
    /// [`SnapshotStore::write_atomic`]).
    pub fn save(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let path = self.path_for(benchmark, fingerprint);
        Self::write_atomic(&path, &fingerprint.to_hex(), &snapshot.to_bytes())?;
        Ok(path)
    }

    /// Load a snapshot; `Ok(None)` when never persisted.
    pub fn load(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<FeatureSnapshot>, StoreError> {
        let path = self.path_for(benchmark, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(FeatureSnapshot::from_bytes(&bytes)?))
    }

    /// Whether a snapshot is persisted for the key.
    pub fn contains(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> bool {
        self.path_for(benchmark, fingerprint).is_file()
    }

    /// Delete a persisted snapshot; returns whether one existed.
    pub fn remove(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<bool, StoreError> {
        match std::fs::remove_file(self.path_for(benchmark, fingerprint)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Fingerprints persisted for a benchmark, in ascending order.
    pub fn list(&self, benchmark: BenchmarkKind) -> Result<Vec<EnvFingerprint>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::EXTENSION) {
                continue;
            }
            if let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(EnvFingerprint::from_hex)
            {
                out.push(fp);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Extension of knob-vector sidecar files.
    pub const VECTOR_EXTENSION: &'static str = "qvec";

    /// Path an environment's knob vector is stored at.
    pub fn vector_path_for(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}",
            fingerprint.to_hex(),
            Self::VECTOR_EXTENSION
        ))
    }

    /// Persist an environment's knob vector next to its snapshot (atomic
    /// temp-file + rename, like [`SnapshotStore::save`]). The vector makes
    /// the fingerprint *searchable*: nearest-neighbour lookups over
    /// persisted vectors drive the gateway's cross-environment snapshot
    /// transfer.
    pub fn save_vector(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        vector: &[f64],
    ) -> Result<PathBuf, StoreError> {
        let path = self.vector_path_for(benchmark, fingerprint);
        let mut bytes = Vec::with_capacity(8 + 8 * vector.len());
        bytes.extend_from_slice(VECTOR_MAGIC);
        bytes.extend_from_slice(&VECTOR_VERSION.to_le_bytes());
        let dim = u16::try_from(vector.len())
            .map_err(|_| StoreError::Vector(format!("vector dim {} too large", vector.len())))?;
        bytes.extend_from_slice(&dim.to_le_bytes());
        for v in vector {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        Self::write_atomic(&path, &format!("{}.qvec", fingerprint.to_hex()), &bytes)?;
        Ok(path)
    }

    /// Load a persisted knob vector; `Ok(None)` when never persisted.
    pub fn load_vector(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<Vec<f64>>, StoreError> {
        let path = self.vector_path_for(benchmark, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(decode_vector(&bytes)?))
    }

    /// Persist both halves of an environment's serving state — its feature
    /// snapshot and its knob vector — under the environment's fingerprint.
    /// This is the publication path the gateway uses; environments saved
    /// this way participate in nearest-fingerprint transfer.
    pub fn save_env(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, StoreError> {
        let fingerprint = environment.fingerprint();
        let path = self.save(benchmark, fingerprint, snapshot)?;
        self.save_vector(benchmark, fingerprint, &environment.knob_vector())?;
        Ok(path)
    }

    /// Every persisted `(fingerprint, knob vector)` pair for a benchmark,
    /// in ascending fingerprint order. Unreadable or corrupt sidecar files
    /// are skipped — a damaged vector must degrade transfer candidates, not
    /// fail lookups.
    pub fn list_vectors(
        &self,
        benchmark: BenchmarkKind,
    ) -> Result<Vec<(EnvFingerprint, Vec<f64>)>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::VECTOR_EXTENSION) {
                continue;
            }
            let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(EnvFingerprint::from_hex)
            else {
                continue;
            };
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            if let Ok(vector) = decode_vector(&bytes) {
                out.push((fp, vector));
            }
        }
        out.sort_by_key(|(fp, _)| *fp);
        Ok(out)
    }

    /// The persisted environment nearest to `query` in knob-vector space,
    /// as a `(fingerprint, distance)` pair.
    ///
    /// Only environments with *both* a knob vector and a decodable snapshot
    /// count as candidates (a vector without its snapshot cannot seed a
    /// warm start), and `exclude` — normally the querying environment's own
    /// fingerprint — never matches itself.
    ///
    /// Deterministic under ties: candidates at exactly equal distance
    /// resolve to the smallest fingerprint, independent of directory
    /// enumeration or save order, so transfer provenance is reproducible
    /// across runs.
    pub fn nearest_environment(
        &self,
        benchmark: BenchmarkKind,
        query: &[f64],
        exclude: EnvFingerprint,
    ) -> Result<Option<(EnvFingerprint, f64)>, StoreError> {
        let mut best: Option<(EnvFingerprint, f64)> = None;
        for (fp, vector) in self.list_vectors(benchmark)? {
            if fp == exclude || !self.contains(benchmark, fp) {
                continue;
            }
            let d = knob_distance(query, &vector);
            if !d.is_finite() {
                continue;
            }
            // The explicit fingerprint tie-break keeps the result stable
            // even if the candidate iteration order ever stops being
            // fingerprint-sorted.
            if best
                .map(|(bfp, bd)| d < bd || (d == bd && fp < bfp))
                .unwrap_or(true)
            {
                best = Some((fp, d));
            }
        }
        Ok(best)
    }

    /// Extension of model-weight sidecar files.
    pub const MODEL_EXTENSION: &'static str = "qcfw";

    /// Path a trained model's weights are stored at. The estimator family
    /// is part of the file name because one environment can serve several
    /// families concurrently.
    pub fn model_path_for(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}.{}",
            fingerprint.to_hex(),
            estimator_slug(estimator),
            Self::MODEL_EXTENSION
        ))
    }

    /// Persist a trained model's weights next to the environment's snapshot
    /// (atomic temp-file + rename, like [`SnapshotStore::save`]): readers
    /// never observe a partially written weight file. Rejects saving a
    /// model under an estimator family it does not belong to.
    pub fn save_model(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
        model: &PersistedModel,
    ) -> Result<PathBuf, StoreError> {
        if !model_matches_estimator(model, estimator) {
            return Err(StoreError::Model(ModelCodecError::Malformed(format!(
                "a {} payload cannot be saved under the {} estimator key",
                model.name(),
                estimator.name()
            ))));
        }
        let path = self.model_path_for(benchmark, estimator, fingerprint);
        let tag = format!("{}.{}", fingerprint.to_hex(), estimator_slug(estimator));
        Self::write_atomic(&path, &tag, &model.to_bytes())?;
        Ok(path)
    }

    /// Load persisted model weights; `Ok(None)` when never persisted. A
    /// present-but-corrupt file (or one holding a different estimator
    /// family than the name claims) surfaces a typed
    /// [`StoreError::Model`] — never garbage weights.
    pub fn load_model(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<PersistedModel>, StoreError> {
        let path = self.model_path_for(benchmark, estimator, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let model = PersistedModel::from_bytes(&bytes)?;
        if !model_matches_estimator(&model, estimator) {
            return Err(StoreError::Model(ModelCodecError::Malformed(format!(
                "weight file for {} holds a {} payload",
                estimator.name(),
                model.name()
            ))));
        }
        Ok(Some(model))
    }

    /// Whether model weights are persisted for the key.
    pub fn contains_model(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> bool {
        self.model_path_for(benchmark, estimator, fingerprint)
            .is_file()
    }

    /// Delete persisted model weights; returns whether a file existed.
    pub fn remove_model(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Result<bool, StoreError> {
        match std::fs::remove_file(self.model_path_for(benchmark, estimator, fingerprint)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Move an *undecodable* weight sidecar aside as `<name>.corrupt`,
    /// returning the new path (`Ok(None)` when no file existed or the
    /// current content loads fine). The gateway's disk loader quarantines
    /// failed files this way: the canonical path reads as a clean miss on
    /// every later restart (no repeated doomed decode), the evidence stays
    /// on disk for inspection, and a later `publish_model` rewrites the
    /// canonical path.
    ///
    /// The file is re-verified immediately before the rename, so a
    /// concurrent republish that already replaced a corrupt sidecar with
    /// valid weights is left untouched instead of being quarantined on the
    /// strength of a stale read.
    pub fn quarantine_model(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<PathBuf>, StoreError> {
        if self.load_model(benchmark, estimator, fingerprint).is_ok() {
            // Absent, or decodes cleanly now (e.g. republished since the
            // caller's failed read): nothing to quarantine.
            return Ok(None);
        }
        let path = self.model_path_for(benchmark, estimator, fingerprint);
        let mut quarantined = path.clone().into_os_string();
        quarantined.push(".corrupt");
        let quarantined = PathBuf::from(quarantined);
        match std::fs::rename(&path, &quarantined) {
            Ok(()) => Ok(Some(quarantined)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Every `(estimator, fingerprint)` pair with persisted weights for a
    /// benchmark, in ascending `(fingerprint, estimator slug)` order.
    /// Files with unparseable names are skipped; contents are *not*
    /// decoded here (listing stays cheap).
    pub fn list_models(
        &self,
        benchmark: BenchmarkKind,
    ) -> Result<Vec<(EstimatorKind, EnvFingerprint)>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::MODEL_EXTENSION) {
                continue;
            }
            // The stem of `<hex>.<slug>.qcfw` is `<hex>.<slug>`.
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some((hex, slug)) = stem.split_once('.') else {
                continue;
            };
            let (Some(fp), Some(estimator)) =
                (EnvFingerprint::from_hex(hex), estimator_from_slug(slug))
            else {
                continue;
            };
            out.push((estimator, fp));
        }
        out.sort_by_key(|(estimator, fp)| (*fp, estimator_slug(*estimator)));
        Ok(out)
    }

    /// The verbatim bytes of a persisted snapshot file; `Ok(None)` when
    /// never persisted. This is the replication payload: shipping the file
    /// bytes untouched (rather than decode + re-encode) keeps the receiver's
    /// copy bit-identical to the sender's, so manifest CRCs agree.
    pub fn snapshot_bytes(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.path_for(benchmark, fingerprint)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// The verbatim bytes of a persisted weight sidecar; `Ok(None)` when
    /// never persisted. See [`SnapshotStore::snapshot_bytes`].
    pub fn model_bytes(
        &self,
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.model_path_for(benchmark, estimator, fingerprint)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// A deterministic manifest of every persisted snapshot and weight
    /// sidecar across all benchmarks: the anti-entropy summary a revived
    /// peer sends so the survivors can diff stores and re-ship exactly the
    /// divergent keys.
    ///
    /// Order is fully determined by the content, never by directory
    /// enumeration: benchmarks in `BenchmarkKind::ALL` order, and within a
    /// benchmark the snapshots (ascending fingerprint, from
    /// [`SnapshotStore::list`]) before the models (ascending
    /// `(fingerprint, estimator slug)`, from [`SnapshotStore::list_models`]).
    /// Each entry's CRC-32 covers the verbatim file bytes. A file that
    /// vanishes between listing and hashing (concurrent republish) is
    /// skipped — it will show up as missing and simply be re-shipped.
    pub fn manifest(&self) -> Result<Vec<ManifestEntry>, StoreError> {
        let mut out = Vec::new();
        for benchmark in BenchmarkKind::ALL {
            for fingerprint in self.list(benchmark)? {
                if let Some(bytes) = self.snapshot_bytes(benchmark, fingerprint)? {
                    out.push(ManifestEntry::Snapshot {
                        benchmark,
                        fingerprint,
                        crc: qcfe_nn::codec::crc32(&bytes),
                    });
                }
            }
            for (estimator, fingerprint) in self.list_models(benchmark)? {
                if let Some(bytes) = self.model_bytes(benchmark, estimator, fingerprint)? {
                    out.push(ManifestEntry::Model {
                        benchmark,
                        estimator,
                        fingerprint,
                        crc: qcfe_nn::codec::crc32(&bytes),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Load the snapshot for an environment, or fit one with `fit` and
    /// persist it — the serving layer's "warm start after restart" path.
    pub fn load_or_insert_with<F>(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        fit: F,
    ) -> Result<FeatureSnapshot, StoreError>
    where
        F: FnOnce() -> FeatureSnapshot,
    {
        if let Some(snapshot) = self.load(benchmark, fingerprint)? {
            return Ok(snapshot);
        }
        let snapshot = fit();
        self.save(benchmark, fingerprint, &snapshot)?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::snapshot::OperatorSample;
    use qcfe_db::plan::OperatorKind;
    use qcfe_db::DbEnvironment;

    fn sample_snapshot(slope: f64) -> FeatureSnapshot {
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 50) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: slope * n + 0.25,
                }
            })
            .collect();
        FeatureSnapshot::fit(&samples)
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("qcfe-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("store opens")
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let store = temp_store("roundtrip");
        let fp = DbEnvironment::reference().fingerprint();
        let snap = sample_snapshot(0.004);
        let path = store.save(BenchmarkKind::Sysbench, fp, &snap).unwrap();
        assert!(path.is_file());
        let loaded = store
            .load(BenchmarkKind::Sysbench, fp)
            .unwrap()
            .expect("present");
        assert_eq!(loaded, snap);
        assert_eq!(loaded.relative_difference(&snap), 0.0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_snapshots_read_as_none_and_listing_tracks_saves() {
        let store = temp_store("listing");
        let fp1 = DbEnvironment::reference().fingerprint();
        let mut env2 = DbEnvironment::reference();
        env2.os_overhead = 1.07;
        let fp2 = env2.fingerprint();
        assert!(store.load(BenchmarkKind::Tpch, fp1).unwrap().is_none());
        assert!(store.list(BenchmarkKind::Tpch).unwrap().is_empty());
        store
            .save(BenchmarkKind::Tpch, fp1, &sample_snapshot(0.001))
            .unwrap();
        store
            .save(BenchmarkKind::Tpch, fp2, &sample_snapshot(0.002))
            .unwrap();
        let mut expected = vec![fp1, fp2];
        expected.sort();
        assert_eq!(store.list(BenchmarkKind::Tpch).unwrap(), expected);
        assert!(store.contains(BenchmarkKind::Tpch, fp1));
        assert!(
            !store.contains(BenchmarkKind::Sysbench, fp1),
            "keys are per benchmark"
        );
        assert!(store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        assert!(!store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_or_insert_fits_once_then_reuses() {
        let store = temp_store("loi");
        let fp = DbEnvironment::reference().fingerprint();
        let mut fits = 0;
        let first = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.003)
            })
            .unwrap();
        let second = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.009)
            })
            .unwrap();
        assert_eq!(fits, 1, "second call must come from disk");
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn knob_vectors_roundtrip_and_list() {
        let store = temp_store("vectors");
        let env = DbEnvironment::reference();
        let fp = env.fingerprint();
        assert!(store
            .load_vector(BenchmarkKind::Tpch, fp)
            .unwrap()
            .is_none());
        assert!(store.list_vectors(BenchmarkKind::Tpch).unwrap().is_empty());
        store
            .save_env(BenchmarkKind::Tpch, &env, &sample_snapshot(0.002))
            .unwrap();
        let loaded = store
            .load_vector(BenchmarkKind::Tpch, fp)
            .unwrap()
            .expect("vector persisted");
        assert_eq!(loaded, env.knob_vector());
        assert_eq!(
            store.list_vectors(BenchmarkKind::Tpch).unwrap(),
            vec![(fp, env.knob_vector())]
        );
        // Corrupt sidecars are skipped by listing but surfaced by load.
        std::fs::write(store.vector_path_for(BenchmarkKind::Tpch, fp), b"junk").unwrap();
        assert!(store.list_vectors(BenchmarkKind::Tpch).unwrap().is_empty());
        match store.load_vector(BenchmarkKind::Tpch, fp) {
            Err(StoreError::Vector(_)) => {}
            other => panic!("expected vector error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn nearest_environment_finds_the_closest_persisted_fingerprint() {
        let store = temp_store("nearest");
        let kind = BenchmarkKind::Sysbench;
        let reference = DbEnvironment::reference();
        let mut far = reference.clone();
        far.os_overhead = 1.5;
        let mut near = reference.clone();
        near.os_overhead = 1.01;
        store.save_env(kind, &far, &sample_snapshot(0.001)).unwrap();
        store
            .save_env(kind, &near, &sample_snapshot(0.002))
            .unwrap();

        let query = reference.knob_vector();
        let (fp, d) = store
            .nearest_environment(kind, &query, reference.fingerprint())
            .unwrap()
            .expect("two candidates persisted");
        assert_eq!(fp, near.fingerprint(), "closest os_overhead must win");
        assert!(d > 0.0 && d < reference.distance_to(&far));

        // The querying environment never matches itself.
        let (self_fp, self_d) = store
            .nearest_environment(kind, &near.knob_vector(), near.fingerprint())
            .unwrap()
            .expect("other candidate remains");
        assert_eq!(self_fp, far.fingerprint());
        assert!(self_d > 0.0);

        // A vector whose snapshot was deleted is no longer a candidate.
        store.remove(kind, near.fingerprint()).unwrap();
        let (fp, _) = store
            .nearest_environment(kind, &query, reference.fingerprint())
            .unwrap()
            .expect("far candidate remains");
        assert_eq!(fp, far.fingerprint());
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// Satellite acceptance: equal knob distances tie-break
    /// deterministically on the fingerprint (smallest wins), regardless of
    /// the order the candidates were persisted in — so transfer provenance
    /// is reproducible across runs.
    #[test]
    fn nearest_environment_tie_breaks_deterministically_on_fingerprint() {
        let kind = BenchmarkKind::Sysbench;
        let query = vec![1.0, 2.0, 3.0];
        // Two synthetic fingerprints sharing one knob vector: both sit at
        // distance zero from the query — a perfect tie.
        let low = EnvFingerprint(0x1111_1111_1111_1111);
        let high = EnvFingerprint(0xeeee_eeee_eeee_eeee);
        let probe = EnvFingerprint(0xabcd_abcd_abcd_abcd);
        for (tag, order) in [("lo-hi", [low, high]), ("hi-lo", [high, low])] {
            let store = temp_store(&format!("tie-{tag}"));
            for fp in order {
                store.save(kind, fp, &sample_snapshot(0.001)).unwrap();
                store.save_vector(kind, fp, &query).unwrap();
            }
            for _ in 0..3 {
                let (fp, d) = store
                    .nearest_environment(kind, &query, probe)
                    .unwrap()
                    .expect("two candidates");
                assert_eq!(d, 0.0, "both candidates are exact matches");
                assert_eq!(
                    fp, low,
                    "equal distances must resolve to the smallest fingerprint \
                     (save order {tag})"
                );
            }
            let _ = std::fs::remove_dir_all(store.root());
        }
    }

    use crate::test_support::tiny_mscn;

    #[test]
    fn model_weights_roundtrip_and_list() {
        let store = temp_store("models");
        let kind = BenchmarkKind::Sysbench;
        let fp = DbEnvironment::reference().fingerprint();
        let estimator = qcfe_core::pipeline::EstimatorKind::QcfeMscn;
        assert!(store.load_model(kind, estimator, fp).unwrap().is_none());
        assert!(store.list_models(kind).unwrap().is_empty());
        let model = tiny_mscn(7);
        let path = store.save_model(kind, estimator, fp, &model).unwrap();
        assert!(path.is_file());
        assert!(store.contains_model(kind, estimator, fp));
        let loaded = store
            .load_model(kind, estimator, fp)
            .unwrap()
            .expect("persisted");
        assert_eq!(loaded.to_bytes(), model.to_bytes(), "bit-exact round-trip");
        assert_eq!(store.list_models(kind).unwrap(), vec![(estimator, fp)]);
        // Weight files are keyed per estimator family.
        assert!(!store.contains_model(kind, qcfe_core::pipeline::EstimatorKind::Mscn, fp));
        assert!(store.remove_model(kind, estimator, fp).unwrap());
        assert!(!store.remove_model(kind, estimator, fp).unwrap());
        assert!(store.list_models(kind).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn model_family_mismatches_are_rejected_typed() {
        let store = temp_store("model-family");
        let kind = BenchmarkKind::Sysbench;
        let fp = DbEnvironment::reference().fingerprint();
        let model = tiny_mscn(9);
        // Saving an MSCN payload under a QPPNet (or weight-free PGSQL) key
        // fails typed.
        for wrong in [
            qcfe_core::pipeline::EstimatorKind::QppNet,
            qcfe_core::pipeline::EstimatorKind::QcfeQpp,
            qcfe_core::pipeline::EstimatorKind::Pgsql,
        ] {
            match store.save_model(kind, wrong, fp, &model) {
                Err(StoreError::Model(_)) => {}
                other => panic!("expected model error, got {other:?}"),
            }
        }
        // A weight file renamed across families is rejected on load.
        let mscn_key = qcfe_core::pipeline::EstimatorKind::QcfeMscn;
        let qpp_key = qcfe_core::pipeline::EstimatorKind::QcfeQpp;
        store.save_model(kind, mscn_key, fp, &model).unwrap();
        std::fs::rename(
            store.model_path_for(kind, mscn_key, fp),
            store.model_path_for(kind, qpp_key, fp),
        )
        .unwrap();
        match store.load_model(kind, qpp_key, fp) {
            Err(StoreError::Model(_)) => {}
            other => panic!("expected model error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn quarantine_only_moves_genuinely_corrupt_files() {
        let store = temp_store("quarantine");
        let kind = BenchmarkKind::Sysbench;
        let fp = DbEnvironment::reference().fingerprint();
        let estimator = qcfe_core::pipeline::EstimatorKind::QcfeMscn;
        // Nothing persisted: nothing to quarantine.
        assert!(store
            .quarantine_model(kind, estimator, fp)
            .unwrap()
            .is_none());
        // A healthy sidecar is re-verified and left untouched — the
        // defence against quarantining a concurrently republished file.
        let path = store
            .save_model(kind, estimator, fp, &tiny_mscn(13))
            .unwrap();
        assert!(store
            .quarantine_model(kind, estimator, fp)
            .unwrap()
            .is_none());
        assert!(path.is_file(), "valid weights must survive");
        // A corrupt sidecar is moved aside.
        std::fs::write(&path, b"garbage").unwrap();
        let quarantined = store
            .quarantine_model(kind, estimator, fp)
            .unwrap()
            .expect("corrupt file quarantined");
        assert!(!path.exists());
        assert!(quarantined.is_file());
        assert!(quarantined.to_string_lossy().ends_with(".corrupt"));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_model_files_surface_typed_errors() {
        let store = temp_store("model-corrupt");
        let kind = BenchmarkKind::Sysbench;
        let fp = DbEnvironment::reference().fingerprint();
        let estimator = qcfe_core::pipeline::EstimatorKind::QcfeMscn;
        let model = tiny_mscn(11);
        let path = store.save_model(kind, estimator, fp, &model).unwrap();
        let valid = std::fs::read(&path).unwrap();

        // Garbage, truncation, flipped magic and a single flipped payload
        // byte all fail typed — never garbage weights, never a panic.
        for corrupt in [
            b"garbage".to_vec(),
            valid[..valid.len() / 2].to_vec(),
            {
                let mut b = valid.clone();
                b[0] = b'X';
                b
            },
            {
                let mut b = valid.clone();
                let last = b.len() - 1;
                b[last] ^= 0x10;
                b
            },
        ] {
            std::fs::write(&path, &corrupt).unwrap();
            match store.load_model(kind, estimator, fp) {
                Err(StoreError::Model(e)) => {
                    assert!(!e.to_string().is_empty());
                }
                other => panic!("expected model error, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    /// The manifest must be a pure function of store *content*: identical
    /// files yield identical, identically ordered entries regardless of
    /// save order, and the CRC tracks the verbatim bytes (a re-publish with
    /// different coefficients changes it; a bit-identical re-save does not).
    #[test]
    fn manifest_is_deterministic_and_tracks_content() {
        let kind = BenchmarkKind::Sysbench;
        let fp1 = EnvFingerprint(0x1111_1111_1111_1111);
        let fp2 = EnvFingerprint(0xeeee_eeee_eeee_eeee);
        let estimator = qcfe_core::pipeline::EstimatorKind::QcfeMscn;
        let build = |tag: &str, order: [EnvFingerprint; 2]| {
            let store = temp_store(&format!("manifest-{tag}"));
            for fp in order {
                store.save(kind, fp, &sample_snapshot(0.004)).unwrap();
            }
            store
                .save_model(kind, estimator, fp1, &tiny_mscn(7))
                .unwrap();
            store
        };
        let a = build("a", [fp1, fp2]);
        let b = build("b", [fp2, fp1]);
        let manifest = a.manifest().unwrap();
        assert_eq!(
            manifest,
            b.manifest().unwrap(),
            "identical content must yield an identical manifest regardless of save order"
        );
        assert_eq!(manifest.len(), 3);
        assert_eq!(
            manifest,
            {
                let mut sorted = manifest.clone();
                sorted.sort_by_key(|e| match *e {
                    ManifestEntry::Snapshot { fingerprint, .. } => (0u8, fingerprint, ""),
                    ManifestEntry::Model {
                        fingerprint,
                        estimator,
                        ..
                    } => (1u8, fingerprint, estimator_slug(estimator)),
                });
                sorted
            },
            "snapshots come before models, each in ascending key order"
        );
        // Re-publishing with different coefficients changes the CRC; a
        // bit-identical re-save does not.
        a.save(kind, fp1, &sample_snapshot(0.009)).unwrap();
        assert_ne!(a.manifest().unwrap(), manifest);
        a.save(kind, fp1, &sample_snapshot(0.004)).unwrap();
        assert_eq!(a.manifest().unwrap(), manifest);
        let _ = std::fs::remove_dir_all(a.root());
        let _ = std::fs::remove_dir_all(b.root());
    }

    #[test]
    fn corrupted_files_surface_codec_errors() {
        let store = temp_store("corrupt");
        let fp = DbEnvironment::reference().fingerprint();
        let path = store.path_for(BenchmarkKind::Sysbench, fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        match store.load(BenchmarkKind::Sysbench, fp) {
            Err(StoreError::Codec(_)) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}

//! Disk persistence for feature snapshots, keyed by environment fingerprint.
//!
//! The paper's FST workflow fits a snapshot once per environment and reuses
//! it for every model trained under that environment — including after a
//! restart or on a different machine with the same configuration. The store
//! lays snapshots out as
//!
//! ```text
//! <root>/<benchmark>/<fingerprint>.qcfs
//! ```
//!
//! using the versioned `QCFS` binary codec of
//! [`qcfe_core::snapshot::FeatureSnapshot::to_bytes`], which round-trips
//! coefficients bit-exactly: a reloaded snapshot yields *identical*
//! estimates, not merely close ones. Writes go through a temp file plus
//! rename so a crashed writer never leaves a torn snapshot behind.

use qcfe_core::snapshot::{FeatureSnapshot, SnapshotCodecError};
use qcfe_db::env::EnvFingerprint;
use qcfe_workloads::BenchmarkKind;
use std::io;
use std::path::{Path, PathBuf};

/// Errors from the snapshot store.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// The file exists but does not decode (corruption or version skew).
    Codec(SnapshotCodecError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot store I/O error: {e}"),
            StoreError::Codec(e) => write!(f, "snapshot store codec error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotCodecError> for StoreError {
    fn from(e: SnapshotCodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// File-system slug for a benchmark directory.
fn benchmark_slug(kind: BenchmarkKind) -> &'static str {
    match kind {
        BenchmarkKind::Tpch => "tpch",
        BenchmarkKind::JobLight => "joblight",
        BenchmarkKind::Sysbench => "sysbench",
    }
}

/// A directory of persisted feature snapshots keyed by
/// `(benchmark, environment fingerprint)`.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    root: PathBuf,
}

impl SnapshotStore {
    /// Extension of snapshot files.
    pub const EXTENSION: &'static str = "qcfs";

    /// Open (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(SnapshotStore { root })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path a snapshot is stored at.
    pub fn path_for(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> PathBuf {
        self.root.join(benchmark_slug(benchmark)).join(format!(
            "{}.{}",
            fingerprint.to_hex(),
            Self::EXTENSION
        ))
    }

    /// Persist a snapshot (atomic temp-file + rename).
    ///
    /// The temp name is unique per process *and* per call so concurrent
    /// savers of the same key never interleave writes into one file; the
    /// final rename is atomic, last writer wins.
    pub fn save(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, StoreError> {
        static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let path = self.path_for(benchmark, fingerprint);
        let dir = path.parent().expect("store paths have a parent");
        std::fs::create_dir_all(dir)?;
        let seq = SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            fingerprint.to_hex(),
            std::process::id(),
            seq
        ));
        std::fs::write(&tmp, snapshot.to_bytes())?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e.into());
        }
        Ok(path)
    }

    /// Load a snapshot; `Ok(None)` when never persisted.
    pub fn load(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<Option<FeatureSnapshot>, StoreError> {
        let path = self.path_for(benchmark, fingerprint);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Ok(Some(FeatureSnapshot::from_bytes(&bytes)?))
    }

    /// Whether a snapshot is persisted for the key.
    pub fn contains(&self, benchmark: BenchmarkKind, fingerprint: EnvFingerprint) -> bool {
        self.path_for(benchmark, fingerprint).is_file()
    }

    /// Delete a persisted snapshot; returns whether one existed.
    pub fn remove(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
    ) -> Result<bool, StoreError> {
        match std::fs::remove_file(self.path_for(benchmark, fingerprint)) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Fingerprints persisted for a benchmark, in ascending order.
    pub fn list(&self, benchmark: BenchmarkKind) -> Result<Vec<EnvFingerprint>, StoreError> {
        let dir = self.root.join(benchmark_slug(benchmark));
        let entries = match std::fs::read_dir(&dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut out = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(Self::EXTENSION) {
                continue;
            }
            if let Some(fp) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(EnvFingerprint::from_hex)
            {
                out.push(fp);
            }
        }
        out.sort();
        Ok(out)
    }

    /// Load the snapshot for an environment, or fit one with `fit` and
    /// persist it — the serving layer's "warm start after restart" path.
    pub fn load_or_insert_with<F>(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        fit: F,
    ) -> Result<FeatureSnapshot, StoreError>
    where
        F: FnOnce() -> FeatureSnapshot,
    {
        if let Some(snapshot) = self.load(benchmark, fingerprint)? {
            return Ok(snapshot);
        }
        let snapshot = fit();
        self.save(benchmark, fingerprint, &snapshot)?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::snapshot::OperatorSample;
    use qcfe_db::plan::OperatorKind;
    use qcfe_db::DbEnvironment;

    fn sample_snapshot(slope: f64) -> FeatureSnapshot {
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 50) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: slope * n + 0.25,
                }
            })
            .collect();
        FeatureSnapshot::fit(&samples)
    }

    fn temp_store(tag: &str) -> SnapshotStore {
        let dir =
            std::env::temp_dir().join(format!("qcfe-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        SnapshotStore::open(dir).expect("store opens")
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let store = temp_store("roundtrip");
        let fp = DbEnvironment::reference().fingerprint();
        let snap = sample_snapshot(0.004);
        let path = store.save(BenchmarkKind::Sysbench, fp, &snap).unwrap();
        assert!(path.is_file());
        let loaded = store
            .load(BenchmarkKind::Sysbench, fp)
            .unwrap()
            .expect("present");
        assert_eq!(loaded, snap);
        assert_eq!(loaded.relative_difference(&snap), 0.0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn missing_snapshots_read_as_none_and_listing_tracks_saves() {
        let store = temp_store("listing");
        let fp1 = DbEnvironment::reference().fingerprint();
        let mut env2 = DbEnvironment::reference();
        env2.os_overhead = 1.07;
        let fp2 = env2.fingerprint();
        assert!(store.load(BenchmarkKind::Tpch, fp1).unwrap().is_none());
        assert!(store.list(BenchmarkKind::Tpch).unwrap().is_empty());
        store
            .save(BenchmarkKind::Tpch, fp1, &sample_snapshot(0.001))
            .unwrap();
        store
            .save(BenchmarkKind::Tpch, fp2, &sample_snapshot(0.002))
            .unwrap();
        let mut expected = vec![fp1, fp2];
        expected.sort();
        assert_eq!(store.list(BenchmarkKind::Tpch).unwrap(), expected);
        assert!(store.contains(BenchmarkKind::Tpch, fp1));
        assert!(
            !store.contains(BenchmarkKind::Sysbench, fp1),
            "keys are per benchmark"
        );
        assert!(store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        assert!(!store.remove(BenchmarkKind::Tpch, fp1).unwrap());
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn load_or_insert_fits_once_then_reuses() {
        let store = temp_store("loi");
        let fp = DbEnvironment::reference().fingerprint();
        let mut fits = 0;
        let first = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.003)
            })
            .unwrap();
        let second = store
            .load_or_insert_with(BenchmarkKind::JobLight, fp, || {
                fits += 1;
                sample_snapshot(0.009)
            })
            .unwrap();
        assert_eq!(fits, 1, "second call must come from disk");
        assert_eq!(first, second);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_files_surface_codec_errors() {
        let store = temp_store("corrupt");
        let fp = DbEnvironment::reference().fingerprint();
        let path = store.path_for(BenchmarkKind::Sysbench, fp);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"garbage").unwrap();
        match store.load(BenchmarkKind::Sysbench, fp) {
            Err(StoreError::Codec(_)) => {}
            other => panic!("expected codec error, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(store.root());
    }
}

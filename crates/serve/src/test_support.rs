//! Shared test-only fixtures for the serving crate.

use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::MscnEstimator;
use qcfe_core::model_codec::PersistedModel;
use qcfe_db::catalog::{Catalog, TableBuilder};
use qcfe_db::types::DataType;
use qcfe_nn::{Activation, Mlp};
use rand::SeedableRng;

/// A deterministic, training-free MSCN estimator assembled from parts
/// (tiny single-table catalog, seeded random weights) — real persistable
/// weights without paying for training.
pub(crate) fn tiny_mscn(seed: u64) -> PersistedModel {
    let mut catalog = Catalog::new();
    catalog.add_table(
        TableBuilder::new("t")
            .column("x", DataType::Int)
            .primary_key("x"),
    );
    let encoder = FeatureEncoder::new(&catalog, false);
    let dim = encoder.plan_dim();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mlp = Mlp::new(&[dim, 6, 1], Activation::Relu, &mut rng);
    PersistedModel::Mscn(
        MscnEstimator::from_parts(encoder, (0..dim).collect(), mlp).expect("consistent parts"),
    )
}

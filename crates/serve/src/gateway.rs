//! The serving front door: one routed, typed gateway over every
//! environment.
//!
//! The paper's deployment story is many concurrent environments — each
//! `(benchmark, knob configuration)` pair has its own feature snapshot and
//! trained estimator. [`QcfeGateway`] turns that story into one object:
//! clients submit a typed [`EstimateRequest`] naming their benchmark and
//! full [`DbEnvironment`], and the gateway
//!
//! 1. **routes** the request to a *shard* — a lazily-started
//!    [`EstimationService`] keyed by `(benchmark, estimator, environment
//!    fingerprint)`, started on first use and retired least-recently-used
//!    when the shard cap is exceeded;
//! 2. **resolves the snapshot**: a fingerprint seen before loads its own
//!    persisted snapshot ([`SnapshotOrigin::TrainedHere`]); an unseen
//!    fingerprint warm-starts from the *nearest* persisted neighbour in
//!    knob-vector space ([`SnapshotOrigin::Transferred`] — the paper's
//!    Table VII snapshot-transfer workflow, online);
//! 3. **resolves the model** from the owned [`ModelRegistry`], falling
//!    back to the store's persisted `QCFW` weight sidecar
//!    (load-before-rebuild: a cold-restarted gateway answers from disk
//!    with provenance [`SnapshotOrigin::LoadedFromDisk`], bit-identical
//!    and without retraining), then to the builder-supplied model
//!    provider (and, for the analytical `PGSQL` baseline, to the built-in
//!    stateless estimator);
//! 4. answers with an [`EstimateResponse`] whose [`Provenance`] records
//!    the serving key, the snapshot origin, whether the shard was
//!    cold-started and where the microseconds went.
//!
//! # The refinement lifecycle: `Transferred` → refit → `TrainedHere`
//!
//! Snapshot transfer is only the first half of the paper's Table VII loop:
//! a shard that warm-started from a neighbour's snapshot serves *borrowed*
//! coefficients, and should graduate to its own once the environment has
//! executed enough queries. [`QcfeGateway::record_execution`] closes that
//! loop online:
//!
//! 1. **feedback** — clients report each observed execution (a plan
//!    annotated with actual rows and timings); the gateway extracts its
//!    [`qcfe_core::snapshot::OperatorSample`]s and routes them to every
//!    resident shard of the `(benchmark, fingerprint)`, which accumulates
//!    them in a bounded per-shard [`crate::refine::LabelBuffer`];
//! 2. **refit** — once [`crate::refine::RefinementConfig::refit_threshold`]
//!    samples accumulate, the shard's current snapshot is refit from its
//!    own labels ([`FeatureSnapshot::refit_with`]: observed operators get
//!    fresh coefficients, uncovered ones keep the warm-start's). An
//!    optional drift gate (`min_drift`) skips installs that would not move
//!    the snapshot. At most one refit runs per trigger, even under
//!    concurrent feedback writers;
//! 3. **persist, then swap** — the refit snapshot (marked
//!    [`FeatureSnapshot::refined`]) is written through the store's atomic
//!    temp-file + rename *first*, then swapped into the running
//!    [`EstimationService`] without a restart
//!    ([`ServiceHandle::install_snapshot`]; in-flight batches finish under
//!    the old snapshot, later batches use the new one — never a mixture),
//!    so persisted state is always at least as fresh as served state and a
//!    restart reloads the refit bit-identically (provenance
//!    [`SnapshotOrigin::LoadedFromDisk`] + [`Provenance::refined`]);
//! 4. **promotion** — a shard serving a transferred snapshot flips its
//!    provenance `Transferred { source, distance }` → `TrainedHere`,
//!    exactly once and never backwards; [`Provenance::refined`] and
//!    [`GatewayStats`]`::{refits, promotions}` make the lifecycle
//!    observable.
//!
//! Construction goes through [`GatewayBuilder`]; every failure is a
//! [`QcfeError`].

use crate::error::QcfeError;
use crate::metrics::{MetricsSnapshot, ReplicationHealth, TenantLane};
use crate::refine::{FeedbackOutcome, LabelBuffer, RefinementConfig};
use crate::registry::{EvictedModel, ModelKey, ModelRegistry, ModelSource, RegistryStats};
use crate::replica::{ReplicaSet, ReplicationSink, ShipEvent};
use crate::request::{EstimateRequest, EstimateResponse, Provenance, SnapshotOrigin};
use crate::sched::{SchedPolicy, TenantId};
use crate::service::{
    CompletionNotify, EstimationService, PendingEstimate, ServiceConfig, ServiceHandle, SubmitSpec,
};
use crate::store::{SnapshotStore, StoreError};
use crate::LruCache;
use qcfe_core::cost_model::CostModel;
use qcfe_core::estimators::PgEstimator;
use qcfe_core::model_codec::PersistedModel;
use qcfe_core::pipeline::EstimatorKind;
use qcfe_core::snapshot::{operator_samples, FeatureSnapshot, OperatorSample};
use qcfe_db::executor::ExecutedQuery;
use qcfe_db::{DbEnvironment, EnvFingerprint};
use qcfe_workloads::BenchmarkKind;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A model provider: called on a registry miss with the serving key and
/// the already-resolved snapshot, it returns a model to register (train,
/// load from disk, …) or `None` when it cannot supply one.
pub type ModelProvider =
    dyn Fn(&ModelKey, Option<&FeatureSnapshot>) -> Option<Arc<dyn CostModel>> + Send + Sync;

/// One running shard: a per-`(benchmark, estimator, fingerprint)`
/// estimation service plus the provenance of the snapshot it serves under.
///
/// Shards are shared as `Arc`s between the routing map and in-flight
/// requests; retiring a shard only drops the map's reference, so requests
/// already holding it finish normally and the service shuts down when the
/// last reference goes away.
struct Shard {
    handle: ServiceHandle,
    /// The snapshot provenance, mutable because online refinement promotes
    /// it (`Transferred` → `TrainedHere`, `refined` → true). One mutex
    /// keeps the pair coherent: a reader sees either the pre-promotion or
    /// the post-promotion state, never a torn mixture.
    provenance: Mutex<ShardProvenance>,
    /// Whether the shard's model weights came from a persisted `QCFW`
    /// sidecar (surfaced as [`Provenance::model_from_disk`]).
    model_from_disk: bool,
    /// Online-refinement state: the label window plus the single-refitter
    /// guard.
    refinement: ShardRefinement,
    /// Owns the worker pool; kept only for its `Drop` (shutdown + join).
    _service: EstimationService,
}

/// The mutable half of a shard's provenance (see [`Shard::provenance`]).
#[derive(Debug, Clone, Copy)]
struct ShardProvenance {
    origin: SnapshotOrigin,
    refined: bool,
}

/// Per-shard refinement state.
struct ShardRefinement {
    /// Observed labels awaiting (or retained across) refits.
    buffer: Mutex<LabelBuffer>,
    /// Held by the one feedback thread performing a triggered refit;
    /// losers of the compare-exchange skip, so a trigger refits at most
    /// once no matter how many writers race on it.
    refitting: AtomicBool,
}

impl ShardRefinement {
    fn new(buffer_capacity: usize) -> Self {
        ShardRefinement {
            buffer: Mutex::new(LabelBuffer::new(buffer_capacity)),
            refitting: AtomicBool::new(false),
        }
    }
}

impl Shard {
    /// A coherent copy of the shard's current provenance pair.
    fn read_provenance(&self) -> ShardProvenance {
        *self.provenance.lock().expect("shard provenance poisoned")
    }
}

/// Monotonic gateway counters (all relaxed atomics; read via
/// [`QcfeGateway::stats`]).
#[derive(Debug, Default)]
struct GatewayCounters {
    requests: AtomicU64,
    shard_starts: AtomicU64,
    shard_retirements: AtomicU64,
    snapshot_transfers: AtomicU64,
    model_evictions: AtomicU64,
    model_loads: AtomicU64,
    /// Incremented by the registry's disk loader (the closure holds its
    /// own `Arc` to this struct).
    model_load_failures: AtomicU64,
    labels_recorded: AtomicU64,
    refits: AtomicU64,
    promotions: AtomicU64,
    ships_emitted: AtomicU64,
    ships_applied: AtomicU64,
}

/// A point-in-time view of the gateway's routing activity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatewayStats {
    /// Estimation requests accepted (including failed ones).
    pub requests: u64,
    /// Shards started (cold starts).
    pub shard_starts: u64,
    /// Currently resident shards.
    pub shards_resident: usize,
    /// Shards retired by the LRU cap.
    pub shard_retirements: u64,
    /// Shard starts that warm-started from a transferred snapshot.
    pub snapshot_transfers: u64,
    /// Models evicted from the registry, as observed through
    /// [`ModelRegistry::insert`]'s return value.
    pub model_evictions: u64,
    /// Shard starts whose model came back from persisted `QCFW` weights
    /// instead of the registry, a provider or a rebuild.
    pub model_loads: u64,
    /// Weight-sidecar loads that failed (corrupt or unreadable `QCFW`
    /// files; each one is quarantined as `<name>.corrupt` and the request
    /// falls through to the model provider). A nonzero value means
    /// persistence is broken for some key and restarts are silently paying
    /// for retraining.
    pub model_load_failures: u64,
    /// Observed operator samples routed to resident shards through
    /// [`QcfeGateway::record_execution`].
    pub labels_recorded: u64,
    /// Online refits performed: a shard's snapshot fitted from its own
    /// observed labels, persisted, and swapped into the running service.
    pub refits: u64,
    /// `Transferred → TrainedHere` provenance promotions — completed
    /// Table VII transfer loops. At most one per shard start, never
    /// reversed.
    pub promotions: u64,
    /// Replication events handed to the configured
    /// [`ReplicationSink`] (published snapshots and models plus
    /// online refits). Zero when replication is not configured.
    pub ships_emitted: u64,
    /// Shipped peer states absorbed through
    /// [`QcfeGateway::apply_shipped_snapshot`] /
    /// [`QcfeGateway::apply_shipped_model`] — each one persisted through
    /// the same codecs the shipping peer wrote, so the absorbed state is
    /// bit-identical or rejected typed.
    pub ships_applied: u64,
    /// The replication sink's own health: queue drops (silent replication
    /// loss an operator must be able to see) and revival catch-up
    /// counters. All zeros when replication is not configured or the sink
    /// does not report (e.g. a plain test sink).
    pub replication: ReplicationHealth,
    /// The owned model registry's lookup/eviction statistics.
    pub registry: RegistryStats,
    /// Per-tenant scheduling lanes aggregated across every resident shard
    /// (counters summed; queue-wait percentiles re-quantiled from the
    /// bucket-wise sum of the shards' wait histograms via
    /// [`TenantLane::merge_from`], so a tenant's pooled p50 reflects all
    /// of its waits rather than the worst shard's), sorted by tenant id.
    /// Empty until a non-anonymous tenant submits or a
    /// [`GatewayBuilder::scheduling`] policy is enabled.
    pub tenants: Vec<TenantLane>,
}

/// Builder for [`QcfeGateway`] — the replacement for hand-wiring
/// [`SnapshotStore`], [`ModelRegistry`] and per-environment
/// [`EstimationService`]s in every caller.
pub struct GatewayBuilder {
    root: PathBuf,
    service_config: ServiceConfig,
    sched: SchedPolicy,
    refinement: RefinementConfig,
    registry_capacity: usize,
    max_shards: usize,
    model_provider: Option<Arc<ModelProvider>>,
    preregistered: Vec<(ModelKey, Arc<dyn CostModel>)>,
    replicas: Option<Arc<ReplicaSet>>,
    ship_sink: Option<Arc<dyn ReplicationSink>>,
}

impl GatewayBuilder {
    /// Start building a gateway whose snapshot store lives at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        GatewayBuilder {
            root: root.into(),
            service_config: ServiceConfig::default(),
            sched: SchedPolicy::default(),
            refinement: RefinementConfig::default(),
            registry_capacity: 64,
            max_shards: 16,
            model_provider: None,
            preregistered: Vec::new(),
            replicas: None,
            ship_sink: None,
        }
    }

    /// Configuration applied to every shard's estimation service.
    pub fn service_config(mut self, config: ServiceConfig) -> Self {
        self.service_config = config;
        self
    }

    /// Scheduling policy applied to every shard's estimation service:
    /// per-tenant admission quotas and earliest-deadline-first micro-batch
    /// formation (see [`crate::sched`]). The default
    /// ([`SchedPolicy::fifo`]) keeps the pre-scheduling FIFO behaviour
    /// bit-for-bit, so existing single-tenant callers are untouched.
    pub fn scheduling(mut self, policy: SchedPolicy) -> Self {
        self.sched = policy;
        self
    }

    /// Online-refinement policy applied to every shard (refit threshold,
    /// drift gate, label-window size). See
    /// [`QcfeGateway::record_execution`].
    pub fn refinement(mut self, config: RefinementConfig) -> Self {
        self.refinement = config;
        self
    }

    /// Capacity of the owned model registry (LRU-bounded, minimum 1).
    pub fn registry_capacity(mut self, capacity: usize) -> Self {
        self.registry_capacity = capacity.max(1);
        self
    }

    /// Maximum concurrently running shards (minimum 1). Exceeding the cap
    /// retires the least-recently-used shard; its in-flight requests
    /// complete and the next request for that fingerprint cold-starts it
    /// again.
    pub fn max_shards(mut self, max_shards: usize) -> Self {
        self.max_shards = max_shards.max(1);
        self
    }

    /// Install a model provider consulted on registry misses (e.g. a
    /// trainer, or a loader for persisted weights).
    pub fn model_provider<F>(mut self, provider: F) -> Self
    where
        F: Fn(&ModelKey, Option<&FeatureSnapshot>) -> Option<Arc<dyn CostModel>>
            + Send
            + Sync
            + 'static,
    {
        self.model_provider = Some(Arc::new(provider));
        self
    }

    /// Pre-register a model under its serving key.
    pub fn with_model(mut self, key: ModelKey, model: Arc<dyn CostModel>) -> Self {
        self.preregistered.push((key, model));
        self
    }

    /// Join a replica set: `replicas` is this node's view of the static
    /// peer set (rendezvous placement + liveness mask), `sink` receives a
    /// [`ShipEvent`] for every snapshot/model publish and every online
    /// refit — the exact persisted `QCFS`/`QCFW` bytes, fire-and-forget,
    /// so peers can absorb this node's shards bit-identically if it dies.
    /// Shipping is strictly after the local persist (the same
    /// persist-before-swap anchor refinement uses), so a shipped state is
    /// never ahead of the shipper's disk.
    pub fn replication(
        mut self,
        replicas: Arc<ReplicaSet>,
        sink: Arc<dyn ReplicationSink>,
    ) -> Self {
        self.replicas = Some(replicas);
        self.ship_sink = Some(sink);
        self
    }

    /// Open the snapshot store and assemble the gateway.
    ///
    /// The owned registry gets a default disk-backed loader over the
    /// store's `QCFW` weight sidecars: any registry miss first tries
    /// [`SnapshotStore::load_model`], so a cold-restarted gateway answers
    /// from persisted weights (provenance
    /// [`SnapshotOrigin::LoadedFromDisk`]) instead of demanding a retrain.
    /// An unreadable or corrupt weight file degrades to a miss and falls
    /// through to the builder's model provider.
    pub fn build(self) -> Result<QcfeGateway, QcfeError> {
        let store = SnapshotStore::open(self.root)?;
        let mut registry = ModelRegistry::new(self.registry_capacity);
        let counters = Arc::new(GatewayCounters::default());
        let loader_store = store.clone();
        let loader_counters = Arc::clone(&counters);
        registry.set_loader(move |key: &ModelKey| {
            match loader_store.load_model(key.benchmark, key.estimator, key.fingerprint) {
                Ok(model) => model.map(PersistedModel::into_cost_model),
                Err(_) => {
                    // Corrupt or unreadable weights: count the failure
                    // (surfaced via GatewayStats::model_load_failures) and
                    // quarantine the file — re-verified before the rename,
                    // so a concurrent republish survives — letting later
                    // restarts see a clean miss instead of silently
                    // retrying a doomed decode.
                    loader_counters
                        .model_load_failures
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = loader_store.quarantine_model(
                        key.benchmark,
                        key.estimator,
                        key.fingerprint,
                    );
                    None
                }
            }
        });
        let gateway = QcfeGateway {
            store,
            registry,
            shards: Mutex::new(LruCache::new(self.max_shards)),
            service_config: self.service_config,
            sched: self.sched,
            refinement: self.refinement.normalized(),
            model_provider: self.model_provider,
            counters,
            replicas: self.replicas,
            ship_sink: self.ship_sink,
        };
        for (key, model) in self.preregistered {
            gateway.register_model(key, model);
        }
        Ok(gateway)
    }
}

/// The routed, typed front door for online cost estimation. See the
/// [module docs](self) for the full routing story.
pub struct QcfeGateway {
    store: SnapshotStore,
    registry: ModelRegistry,
    shards: Mutex<LruCache<ModelKey, Arc<Shard>>>,
    service_config: ServiceConfig,
    sched: SchedPolicy,
    refinement: RefinementConfig,
    model_provider: Option<Arc<ModelProvider>>,
    counters: Arc<GatewayCounters>,
    replicas: Option<Arc<ReplicaSet>>,
    ship_sink: Option<Arc<dyn ReplicationSink>>,
}

impl std::fmt::Debug for QcfeGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("QcfeGateway")
            .field("store_root", &self.store.root())
            .field("shards_resident", &stats.shards_resident)
            .field("shard_starts", &stats.shard_starts)
            .field("requests", &stats.requests)
            .finish()
    }
}

impl QcfeGateway {
    /// Start building a gateway rooted at `root`.
    pub fn builder(root: impl Into<PathBuf>) -> GatewayBuilder {
        GatewayBuilder::new(root)
    }

    /// Estimate one plan. Routes to the environment's shard (starting or
    /// warm-starting it if needed), submits, and returns the prediction
    /// with full [`Provenance`]. A deadline bounds the wait itself: the
    /// call returns [`QcfeError::DeadlineExceeded`] as soon as the deadline
    /// fires, even while the shard is still working (the in-flight reply is
    /// discarded).
    pub fn estimate(&self, request: EstimateRequest) -> Result<EstimateResponse, QcfeError> {
        let started = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let key = ModelKey::new(
            request.benchmark,
            request.options.estimator,
            request.environment.fingerprint(),
        );
        let (shard, cold_start) =
            self.shard(key, &request.environment, request.options.allow_transfer)?;
        let deadline = request.deadline;
        Self::check_deadline(deadline, started)?;
        let submitted = Instant::now();
        let spec = Self::submit_spec(&request, started);
        let ticket = shard.handle.submit(request.plan, spec, None)?;
        let estimate = Self::await_ticket(ticket, deadline, started)?;
        Ok(assemble_response(
            estimate, &shard, key, cold_start, started, submitted,
        ))
    }

    /// Submit one plan without waiting for the answer: the non-blocking
    /// half of [`QcfeGateway::estimate`]. Routing, snapshot/model
    /// resolution and admission run synchronously (a cold start still
    /// pays its resolution cost here); the returned [`PendingResponse`]
    /// ticket is then polled with [`PendingResponse::try_wait`] or awaited
    /// with [`PendingResponse::wait`]. Admission follows
    /// `options.shed_load`: open-loop submissions fail fast with
    /// [`crate::service::ServiceError::QueueFull`] instead of blocking —
    /// the mode event-loop front-ends must use, since a blocked reactor
    /// thread stalls every connection it multiplexes.
    pub fn submit(&self, request: EstimateRequest) -> Result<PendingResponse, QcfeError> {
        self.submit_with_notify(request, None)
    }

    /// [`QcfeGateway::submit`] with a [`CompletionNotify`] hook that fires
    /// exactly once when the shard finishes (or drops) the request — the
    /// wakeup signal a poll-based reactor pairs with
    /// [`PendingResponse::try_wait`].
    pub fn submit_with_notify(
        &self,
        request: EstimateRequest,
        notify: Option<CompletionNotify>,
    ) -> Result<PendingResponse, QcfeError> {
        let started = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let key = ModelKey::new(
            request.benchmark,
            request.options.estimator,
            request.environment.fingerprint(),
        );
        let (shard, cold_start) =
            self.shard(key, &request.environment, request.options.allow_transfer)?;
        let deadline = request.deadline;
        Self::check_deadline(deadline, started)?;
        let submitted = Instant::now();
        let spec = Self::submit_spec(&request, started);
        let ticket = shard.handle.submit(request.plan, spec, notify)?;
        Ok(PendingResponse {
            ticket,
            shard,
            key,
            cold_start,
            started,
            submitted,
            deadline,
        })
    }

    /// Estimate several plans for one environment in a single call. The
    /// shard is resolved once and the whole burst is enqueued before any
    /// reply is awaited, so one caller fills micro-batches on its own.
    /// Responses come back in plan order; the deadline (if any) applies to
    /// the batch end-to-end, and `shed_load` applies to every admission.
    pub fn estimate_many(
        &self,
        request: EstimateRequest,
        extra_plans: Vec<qcfe_db::plan::PlanNode>,
    ) -> Result<Vec<EstimateResponse>, QcfeError> {
        let started = Instant::now();
        let plan_count = 1 + extra_plans.len();
        self.counters
            .requests
            .fetch_add(plan_count as u64, Ordering::Relaxed);
        let key = ModelKey::new(
            request.benchmark,
            request.options.estimator,
            request.environment.fingerprint(),
        );
        let (shard, cold_start) =
            self.shard(key, &request.environment, request.options.allow_transfer)?;
        let deadline = request.deadline;
        Self::check_deadline(deadline, started)?;
        let submitted = Instant::now();
        let spec = Self::submit_spec(&request, started);
        let mut pending: Vec<PendingEstimate> = Vec::with_capacity(plan_count);
        pending.push(shard.handle.submit(request.plan, spec, None)?);
        for plan in extra_plans {
            pending.push(shard.handle.submit(plan, spec, None)?);
        }
        let mut estimates = Vec::with_capacity(plan_count);
        for ticket in pending {
            let estimate = Self::await_ticket(ticket, deadline, started)?;
            estimates.push((
                estimate,
                submitted.elapsed().as_micros() as u64,
                started.elapsed().as_micros() as u64,
            ));
        }
        // Read once, after every reply was consumed — the same point
        // estimate() reads at, so both paths label a burst consistently
        // (see the [`Provenance`] docs for the concurrent-refit caveat).
        let provenance = shard.read_provenance();
        Ok(estimates
            .into_iter()
            .enumerate()
            .map(
                |(index, (estimate, service_us, total_us))| EstimateResponse {
                    cost_ms: estimate.cost_ms,
                    batch_size: estimate.batch_size,
                    encoding_cache_hit: estimate.encoding_cache_hit,
                    provenance: Provenance {
                        model_key: key,
                        snapshot_origin: provenance.origin,
                        refined: provenance.refined,
                        model_from_disk: shard.model_from_disk,
                        cold_start: cold_start && index == 0,
                        service_us,
                        total_us,
                    },
                },
            )
            .collect())
    }

    /// Wait for one in-flight reply, bounded by the request deadline:
    /// without one, block until the reply; with one, wait only for the
    /// remaining budget and fail with [`QcfeError::DeadlineExceeded`] when
    /// it runs out (the shard's eventual reply is discarded).
    fn await_ticket(
        ticket: PendingEstimate,
        deadline: Option<std::time::Duration>,
        started: Instant,
    ) -> Result<crate::service::Estimate, QcfeError> {
        match deadline {
            None => Ok(ticket.wait()?),
            Some(deadline) => {
                let remaining = deadline.saturating_sub(started.elapsed());
                match ticket.wait_timeout(remaining)? {
                    Some(estimate) => Ok(estimate),
                    None => Err(QcfeError::DeadlineExceeded {
                        elapsed: started.elapsed(),
                        deadline,
                    }),
                }
            }
        }
    }

    /// Report an observed query execution — the feedback half of the
    /// paper's Table VII transfer loop.
    ///
    /// The executed plan's [`OperatorSample`]s are routed to every resident
    /// shard of `(benchmark, environment.fingerprint())` (all estimator
    /// families), accumulating in each shard's bounded label window. Once a
    /// shard accumulates [`RefinementConfig::refit_threshold`] samples, its
    /// snapshot is refit from its own labels, persisted (snapshot + knob
    /// vector, atomic temp-file + rename — persisted state always leads
    /// served state), swapped into the running service without a restart,
    /// and — for a shard that warm-started from a transferred snapshot —
    /// its provenance is promoted `Transferred → TrainedHere`, exactly
    /// once.
    ///
    /// Returns what the call did ([`FeedbackOutcome`]); `shards == 0` means
    /// no shard of the fingerprint is running and the labels were dropped.
    /// Shards serving without a snapshot (the analytical `PGSQL` baseline)
    /// accumulate nothing.
    pub fn record_execution(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        executed: &ExecutedQuery,
    ) -> Result<FeedbackOutcome, QcfeError> {
        let samples = operator_samples(executed);
        let fingerprint = environment.fingerprint();
        // Snapshot the owning shards without touching recency (feedback is
        // not a request) and without holding the routing lock across fits
        // or disk writes.
        let owners: Vec<Arc<Shard>> = {
            let shards = self.shards.lock().expect("shard map poisoned");
            shards
                .keys_by_recency()
                .into_iter()
                .filter(|key| key.benchmark == benchmark && key.fingerprint == fingerprint)
                .filter_map(|key| shards.peek(&key).map(Arc::clone))
                .collect()
        };
        let mut outcome = FeedbackOutcome {
            samples: samples.len(),
            ..FeedbackOutcome::default()
        };
        for shard in owners {
            // A snapshot-free shard has nothing to refine.
            if shard.handle.snapshot().is_none() {
                continue;
            }
            outcome.shards += 1;
            self.counters
                .labels_recorded
                .fetch_add(samples.len() as u64, Ordering::Relaxed);
            self.feed_shard(benchmark, environment, &shard, &samples, &mut outcome)?;
        }
        Ok(outcome)
    }

    /// Accumulate `samples` into one shard's label window and, when the
    /// refit threshold is reached, perform the refit under the shard's
    /// single-refitter guard (a trigger refits at most once; racing
    /// feedback writers skip).
    fn feed_shard(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        shard: &Shard,
        samples: &[OperatorSample],
        outcome: &mut FeedbackOutcome,
    ) -> Result<(), QcfeError> {
        let due = {
            let mut buffer = shard
                .refinement
                .buffer
                .lock()
                .expect("label buffer poisoned");
            buffer.push(samples);
            buffer.since_refit() >= self.refinement.refit_threshold
        };
        if !due {
            return Ok(());
        }
        if shard
            .refinement
            .refitting
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Acquire)
            .is_err()
        {
            // Another feedback thread owns this trigger.
            return Ok(());
        }
        let result = self.refit_shard(benchmark, environment, shard, outcome);
        shard.refinement.refitting.store(false, Ordering::Release);
        result
    }

    /// One refit pass: fit the label window against the serving snapshot,
    /// apply the drift gate, persist, swap live, promote. Runs with the
    /// shard's refit guard held.
    fn refit_shard(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        shard: &Shard,
        outcome: &mut FeedbackOutcome,
    ) -> Result<(), QcfeError> {
        let labels = {
            let mut buffer = shard
                .refinement
                .buffer
                .lock()
                .expect("label buffer poisoned");
            // Resetting the trigger here (not after the fit) keeps the
            // window sliding while the fit runs; labels arriving mid-refit
            // count toward the *next* trigger.
            buffer.take_window()
        };
        let Some(current) = shard.handle.snapshot() else {
            return Ok(());
        };
        let candidate = current.refit_with(&labels);
        // `relative_difference` only scores operators the *current*
        // snapshot covers, so an operator first observed through feedback
        // contributes zero drift — it must force the install regardless,
        // or a strict drift gate would discard its coefficients forever.
        let covers_new_operator = candidate.covered_operators().into_iter().any(|kind| {
            current.coefficients(kind) == [0.0; qcfe_core::snapshot::SNAPSHOT_DIM]
                && candidate.coefficients(kind) != [0.0; qcfe_core::snapshot::SNAPSHOT_DIM]
        });
        if self.refinement.min_drift > 0.0
            && !covers_new_operator
            && current.relative_difference(&candidate) < self.refinement.min_drift
        {
            // The feedback confirms the serving snapshot; installing the
            // refit would churn disk and cache for nothing.
            return Ok(());
        }
        // Persist before swapping: a crash between the two leaves disk
        // *ahead* of the serving state, never behind it, so a restart can
        // only be fresher. The knob vector rides along, making the refined
        // environment a transfer candidate for its own future neighbours.
        self.store.save_env(benchmark, environment, &candidate)?;
        // Shipping reuses the exact bytes just persisted — the QCFS codec
        // IS the replication format — and runs strictly after the local
        // persist, so a peer can never hold state this node's disk lacks.
        self.ship_snapshot(benchmark, environment, &candidate);
        shard.handle.install_snapshot(Some(Arc::new(candidate)));
        self.counters.refits.fetch_add(1, Ordering::Relaxed);
        outcome.refits += 1;
        let mut provenance = shard.provenance.lock().expect("shard provenance poisoned");
        if provenance.origin.is_transferred() {
            // The completed Table VII loop: the shard now serves
            // coefficients fitted from its own environment's labels.
            // Promotion is monotonic — nothing ever assigns `Transferred`
            // back.
            provenance.origin = SnapshotOrigin::TrainedHere;
            self.counters.promotions.fetch_add(1, Ordering::Relaxed);
            outcome.promotions += 1;
        }
        provenance.refined = true;
        Ok(())
    }

    /// Publish an environment: persist its feature snapshot *and* its knob
    /// vector under its fingerprint, making it both directly servable and
    /// a transfer candidate for future unseen environments.
    pub fn publish_snapshot(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        snapshot: &FeatureSnapshot,
    ) -> Result<PathBuf, QcfeError> {
        let path = self.store.save_env(benchmark, environment, snapshot)?;
        self.ship_snapshot(benchmark, environment, snapshot);
        Ok(path)
    }

    /// Publish a trained model: persist its weights as a `QCFW` sidecar in
    /// the owned store *and* register it under its serving key. A gateway
    /// rebuilt later on the same store directory reloads the weights on
    /// demand and serves bit-identical estimates without retraining.
    pub fn publish_model(
        &self,
        key: ModelKey,
        model: PersistedModel,
    ) -> Result<PathBuf, QcfeError> {
        let path = self
            .store
            .save_model(key.benchmark, key.estimator, key.fingerprint, &model)?;
        self.ship(ShipEvent::Model {
            key,
            weights: model.to_bytes(),
        });
        self.register_model(key, model.into_cost_model());
        Ok(path)
    }

    /// Publish a trained model in its int8-quantized form: the weights are
    /// quantized (symmetric, per layer) at publish time, persisted as a
    /// `QCFW` v2 sidecar, and served from the quantized representation —
    /// the trade the paper's serving path wants when throughput matters
    /// more than the last fraction of a percent of q-error. An already
    /// quantized [`PersistedModel`] passes through unchanged.
    pub fn publish_quantized_model(
        &self,
        key: ModelKey,
        model: PersistedModel,
    ) -> Result<PathBuf, QcfeError> {
        self.publish_model(key, model.quantize())
    }

    /// Register (or replace) a model under its serving key, returning the
    /// entry this insert evicted, if any. Evictions observed here feed
    /// [`GatewayStats::model_evictions`].
    pub fn register_model(&self, key: ModelKey, model: Arc<dyn CostModel>) -> Option<EvictedModel> {
        // Registry::insert clears the key's disk-load mark under the
        // registry lock: an in-process registration supersedes any earlier
        // disk load, atomically with the model swap.
        let evicted = self.registry.insert(key, model);
        if evicted.is_some() {
            self.counters
                .model_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        evicted
    }

    /// This node's view of the replica set, when replication is
    /// configured via [`GatewayBuilder::replication`].
    pub fn replicas(&self) -> Option<&Arc<ReplicaSet>> {
        self.replicas.as_ref()
    }

    /// Hand a replication event to the configured sink (fire-and-forget;
    /// a no-op without one). Never fails and never blocks serving.
    fn ship(&self, event: ShipEvent) {
        if let Some(sink) = &self.ship_sink {
            self.counters.ships_emitted.fetch_add(1, Ordering::Relaxed);
            sink.ship(event);
        }
    }

    /// Ship an environment's just-persisted snapshot state: the exact
    /// `QCFS` bytes plus the knob vector that makes the fingerprint a
    /// transfer candidate on the receiving peer.
    fn ship_snapshot(
        &self,
        benchmark: BenchmarkKind,
        environment: &DbEnvironment,
        snapshot: &FeatureSnapshot,
    ) {
        if self.ship_sink.is_none() {
            return;
        }
        self.ship(ShipEvent::Snapshot {
            benchmark,
            fingerprint: environment.fingerprint(),
            snapshot: snapshot.to_bytes(),
            knobs: environment.knob_vector(),
        });
    }

    /// Absorb a peer's shipped snapshot state: decode the `QCFS` bytes
    /// through the same codec the shipping peer persisted with (corrupt or
    /// truncated payloads are rejected typed, nothing is written), persist
    /// snapshot + knob vector locally, and swap the snapshot into any
    /// resident shard of the fingerprint so a shard this node is already
    /// serving converges without a restart. Deliberately does **not**
    /// re-ship — publish and refit are the only producers, so shipped
    /// state cannot echo between peers.
    pub fn apply_shipped_snapshot(
        &self,
        benchmark: BenchmarkKind,
        fingerprint: EnvFingerprint,
        snapshot_bytes: &[u8],
        knobs: &[f64],
    ) -> Result<(), QcfeError> {
        let snapshot = FeatureSnapshot::from_bytes(snapshot_bytes).map_err(StoreError::from)?;
        self.store.save(benchmark, fingerprint, &snapshot)?;
        self.store.save_vector(benchmark, fingerprint, knobs)?;
        let residents: Vec<Arc<Shard>> = {
            let shards = self.shards.lock().expect("shard map poisoned");
            shards
                .keys_by_recency()
                .into_iter()
                .filter(|key| key.benchmark == benchmark && key.fingerprint == fingerprint)
                .filter_map(|key| shards.peek(&key).map(Arc::clone))
                .collect()
        };
        if !residents.is_empty() {
            let shared = Arc::new(snapshot);
            for shard in residents {
                shard.handle.install_snapshot(Some(Arc::clone(&shared)));
            }
        }
        self.counters.ships_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Absorb a peer's shipped model weights: decode the `QCFW` bytes
    /// through the persistence codec (checksum-verified — corrupt weights
    /// are rejected typed, nothing is written), persist the sidecar
    /// locally and register the model under its serving key, so this node
    /// serves the peer's estimates bit-identically if the peer dies. Does
    /// not re-ship (see [`QcfeGateway::apply_shipped_snapshot`]).
    pub fn apply_shipped_model(&self, key: ModelKey, weights: &[u8]) -> Result<(), QcfeError> {
        let model = PersistedModel::from_bytes(weights).map_err(StoreError::from)?;
        self.store
            .save_model(key.benchmark, key.estimator, key.fingerprint, &model)?;
        self.register_model(key, model.into_cost_model());
        self.counters.ships_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The gateway's routing statistics.
    pub fn stats(&self) -> GatewayStats {
        GatewayStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            shard_starts: self.counters.shard_starts.load(Ordering::Relaxed),
            tenants: self.tenant_lanes(),
            shards_resident: self.shards.lock().expect("shard map poisoned").len(),
            shard_retirements: self.counters.shard_retirements.load(Ordering::Relaxed),
            snapshot_transfers: self.counters.snapshot_transfers.load(Ordering::Relaxed),
            model_evictions: self.counters.model_evictions.load(Ordering::Relaxed),
            model_loads: self.counters.model_loads.load(Ordering::Relaxed),
            model_load_failures: self.counters.model_load_failures.load(Ordering::Relaxed),
            labels_recorded: self.counters.labels_recorded.load(Ordering::Relaxed),
            refits: self.counters.refits.load(Ordering::Relaxed),
            promotions: self.counters.promotions.load(Ordering::Relaxed),
            ships_emitted: self.counters.ships_emitted.load(Ordering::Relaxed),
            ships_applied: self.counters.ships_applied.load(Ordering::Relaxed),
            replication: self
                .ship_sink
                .as_ref()
                .map(|sink| sink.health())
                .unwrap_or_default(),
            registry: self.registry.stats(),
        }
    }

    /// Per-tenant scheduling lanes merged across every resident shard:
    /// counters are summed and the queue-wait percentiles are re-quantiled
    /// from the bucket-wise sum of the shards' wait histograms
    /// ([`TenantLane::merge_from`]) — never the `.max()` of any one shard,
    /// which would let a lightly-used slow shard mask where the tenant's
    /// traffic actually waits.
    fn tenant_lanes(&self) -> Vec<TenantLane> {
        let shards: Vec<Arc<Shard>> = {
            let map = self.shards.lock().expect("shard map poisoned");
            map.keys_by_recency()
                .iter()
                .filter_map(|key| map.peek(key).map(Arc::clone))
                .collect()
        };
        let mut merged: std::collections::BTreeMap<TenantId, TenantLane> =
            std::collections::BTreeMap::new();
        for shard in shards {
            for lane in shard.handle.metrics().tenants {
                merged
                    .entry(lane.tenant)
                    .and_modify(|m| m.merge_from(&lane))
                    .or_insert(lane);
            }
        }
        merged.into_values().collect()
    }

    /// Service metrics of a resident shard (`None` when the shard is not
    /// running). Does not touch shard recency.
    pub fn shard_metrics(&self, key: &ModelKey) -> Option<MetricsSnapshot> {
        self.shards
            .lock()
            .expect("shard map poisoned")
            .peek(key)
            .map(|shard| shard.handle.metrics())
    }

    /// Serving keys of the resident shards, least recently used first.
    pub fn resident_shards(&self) -> Vec<ModelKey> {
        self.shards
            .lock()
            .expect("shard map poisoned")
            .keys_by_recency()
    }

    /// The owned snapshot store (advanced callers: direct persistence).
    pub fn store(&self) -> &SnapshotStore {
        &self.store
    }

    /// The owned model registry (advanced callers: direct registration).
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    fn check_deadline(
        deadline: Option<std::time::Duration>,
        started: Instant,
    ) -> Result<(), QcfeError> {
        if let Some(deadline) = deadline {
            let elapsed = started.elapsed();
            if elapsed > deadline {
                return Err(QcfeError::DeadlineExceeded { elapsed, deadline });
            }
        }
        Ok(())
    }

    /// The scheduler-facing view of a request: its tenant, whatever
    /// deadline budget remains after routing, and the blocking mode
    /// `options.shed_load` selects.
    fn submit_spec(request: &EstimateRequest, started: Instant) -> SubmitSpec {
        SubmitSpec {
            tenant: request.options.tenant,
            deadline: request
                .deadline
                .map(|deadline| deadline.saturating_sub(started.elapsed())),
            block_on_full: !request.options.shed_load,
        }
    }

    /// Resolve (or start) the shard for `key`, returning it together with
    /// whether *this* call started it.
    ///
    /// The fast path is one short lock acquisition. A miss resolves the
    /// snapshot and model *outside* the lock (disk reads and model
    /// training must not block routing), then re-checks under the lock so
    /// concurrent cold-starters converge on one shard — the same
    /// first-registration-wins discipline as
    /// [`ModelRegistry::get_or_insert_with`].
    fn shard(
        &self,
        key: ModelKey,
        environment: &DbEnvironment,
        allow_transfer: bool,
    ) -> Result<(Arc<Shard>, bool), QcfeError> {
        if let Some(shard) = self.shards.lock().expect("shard map poisoned").get(&key) {
            return Ok((Arc::clone(shard), false));
        }
        let (snapshot, origin) = self.resolve_snapshot(&key, environment, allow_transfer)?;
        let (model, model_from_disk) = self.resolve_model(&key, snapshot.as_ref())?;
        // The transfer statistic tracks what resolve_snapshot actually did,
        // independent of the provenance override below.
        let snapshot_transferred = origin.is_transferred();
        // A previous life's online refinement survives the restart through
        // the persisted snapshot's refined bit.
        let refined = snapshot.as_ref().is_some_and(|s| s.refined);
        // A disk-restored model rewrites a TrainedHere/None origin to
        // LoadedFromDisk — the shard serves pre-restart state without
        // retraining. A Transferred origin is preserved (its source and
        // distance are the Table VII observables); the disk load stays
        // visible through Provenance::model_from_disk either way.
        let origin = if model_from_disk && !snapshot_transferred {
            SnapshotOrigin::LoadedFromDisk
        } else {
            origin
        };
        let retired;
        let result = {
            let mut shards = self.shards.lock().expect("shard map poisoned");
            if let Some(shard) = shards.get(&key) {
                // A racer started it while we resolved; our snapshot/model
                // work is dropped and we converge on the running shard.
                return Ok((Arc::clone(shard), false));
            }
            let service = EstimationService::start_with_policy(
                model,
                snapshot,
                self.service_config,
                self.sched.clone(),
            );
            let shard = Arc::new(Shard {
                handle: service.handle(),
                provenance: Mutex::new(ShardProvenance { origin, refined }),
                model_from_disk,
                refinement: ShardRefinement::new(self.refinement.buffer_capacity),
                _service: service,
            });
            retired = shards.insert(key, Arc::clone(&shard));
            self.counters.shard_starts.fetch_add(1, Ordering::Relaxed);
            if snapshot_transferred {
                self.counters
                    .snapshot_transfers
                    .fetch_add(1, Ordering::Relaxed);
            }
            (shard, true)
        };
        // Retired shard (if any) drops outside the lock: its service joins
        // worker threads on the final drop, which must not stall routing.
        if let Some((_, shard)) = retired {
            self.counters
                .shard_retirements
                .fetch_add(1, Ordering::Relaxed);
            drop(shard);
        }
        Ok(result)
    }

    /// Resolve the serving snapshot for a shard start: the fingerprint's
    /// own persisted snapshot, else — with transfer allowed — the nearest
    /// persisted neighbour's, else none (only legal for non-QCFE
    /// baselines).
    fn resolve_snapshot(
        &self,
        key: &ModelKey,
        environment: &DbEnvironment,
        allow_transfer: bool,
    ) -> Result<(Option<FeatureSnapshot>, SnapshotOrigin), QcfeError> {
        if let Some(snapshot) = self.store.load(key.benchmark, key.fingerprint)? {
            return Ok((Some(snapshot), SnapshotOrigin::TrainedHere));
        }
        if allow_transfer {
            let query = environment.knob_vector();
            if let Some((source, distance)) =
                self.store
                    .nearest_environment(key.benchmark, &query, key.fingerprint)?
            {
                if let Some(snapshot) = self.store.load(key.benchmark, source)? {
                    return Ok((
                        Some(snapshot),
                        SnapshotOrigin::Transferred { source, distance },
                    ));
                }
            }
        }
        if key.estimator.is_qcfe() {
            return Err(QcfeError::SnapshotMissing {
                benchmark: key.benchmark,
                fingerprint: key.fingerprint,
            });
        }
        Ok((None, SnapshotOrigin::None))
    }

    /// Resolve the serving model for a shard start, returning it together
    /// with whether it was reloaded from persisted `QCFW` weights. The
    /// order is: registry hit, else the store's weight sidecar
    /// (load-before-rebuild, via the registry's disk-backed loader), else
    /// the builder's model provider, else the built-in stateless `PGSQL`
    /// baseline (which needs no training), else a typed failure.
    ///
    /// Loader and provider results register through
    /// [`ModelRegistry::insert_if_absent`], so cold-starters racing on the
    /// same key converge on one resident instance (a losing racer's
    /// provider output is dropped) and the registry can never hold a
    /// different model than the shard serves.
    fn resolve_model(
        &self,
        key: &ModelKey,
        snapshot: Option<&FeatureSnapshot>,
    ) -> Result<(Arc<dyn CostModel>, bool), QcfeError> {
        if let Some(resolved) = self.registry.get_or_load(key) {
            if resolved.source == ModelSource::Reloaded {
                self.counters.model_loads.fetch_add(1, Ordering::Relaxed);
            }
            if resolved.evicted.is_some() {
                self.counters
                    .model_evictions
                    .fetch_add(1, Ordering::Relaxed);
            }
            // from_disk is the registry's lock-coupled provenance mark:
            // sticky while the disk-loaded model stays resident, cleared
            // atomically by any in-process registration.
            return Ok((resolved.model, resolved.from_disk));
        }
        let built: Option<Arc<dyn CostModel>> = if let Some(provider) = &self.model_provider {
            provider(key, snapshot)
        } else {
            None
        };
        let built = built.or_else(|| {
            (key.estimator == EstimatorKind::Pgsql)
                .then(|| Arc::new(PgEstimator) as Arc<dyn CostModel>)
        });
        match built {
            Some(model) => {
                // insert_if_absent clears the key's disk mark when this
                // build wins residency (lock-coupled with the insert), so
                // a stale mark can never tag a retrained model.
                let (resident, evicted) = self.registry.insert_if_absent(*key, model);
                if evicted.is_some() {
                    self.counters
                        .model_evictions
                        .fetch_add(1, Ordering::Relaxed);
                }
                Ok((resident, false))
            }
            None => Err(QcfeError::ModelMissing { key: *key }),
        }
    }
}

/// Assemble the caller-facing response from one consumed shard reply: the
/// single point where both the blocking ([`QcfeGateway::estimate`]) and the
/// polled ([`PendingResponse`]) paths stamp provenance, so the two are
/// bit-identical for the same reply.
fn assemble_response(
    estimate: crate::service::Estimate,
    shard: &Shard,
    key: ModelKey,
    cold_start: bool,
    started: Instant,
    submitted: Instant,
) -> EstimateResponse {
    let service_us = submitted.elapsed().as_micros() as u64;
    let provenance = shard.read_provenance();
    EstimateResponse {
        cost_ms: estimate.cost_ms,
        batch_size: estimate.batch_size,
        encoding_cache_hit: estimate.encoding_cache_hit,
        provenance: Provenance {
            model_key: key,
            snapshot_origin: provenance.origin,
            refined: provenance.refined,
            model_from_disk: shard.model_from_disk,
            cold_start,
            service_us,
            total_us: started.elapsed().as_micros() as u64,
        },
    }
}

/// An admitted-but-unanswered gateway request: the ticket returned by
/// [`QcfeGateway::submit`]. Holds the shard alive (a concurrent LRU
/// retirement cannot strand the reply) and carries everything needed to
/// stamp full [`Provenance`] when the answer is consumed.
///
/// Two consumption styles:
/// * [`PendingResponse::try_wait`] — non-blocking poll, for event loops
///   multiplexing many tickets on one thread (pair with the
///   [`CompletionNotify`] hook of [`QcfeGateway::submit_with_notify`]);
/// * [`PendingResponse::wait`] — block until the answer (or the deadline).
///
/// Dropping the ticket abandons the request; the shard's eventual reply is
/// discarded.
pub struct PendingResponse {
    ticket: PendingEstimate,
    shard: Arc<Shard>,
    key: ModelKey,
    cold_start: bool,
    started: Instant,
    submitted: Instant,
    deadline: Option<std::time::Duration>,
}

impl std::fmt::Debug for PendingResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PendingResponse")
            .field("key", &self.key)
            .field("cold_start", &self.cold_start)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl PendingResponse {
    /// The serving key the request was routed to.
    pub fn model_key(&self) -> ModelKey {
        self.key
    }

    /// Whether this submission started the shard.
    pub fn cold_start(&self) -> bool {
        self.cold_start
    }

    /// Whether the request's deadline has already elapsed.
    pub fn deadline_elapsed(&self) -> bool {
        self.deadline.is_some_and(|d| self.started.elapsed() > d)
    }

    /// Poll without blocking: `Ok(Some)` with the full response when the
    /// estimate is ready, `Ok(None)` while it is in flight and within
    /// budget. A lapsed deadline fails with
    /// [`QcfeError::DeadlineExceeded`]; a shard that dropped the request
    /// (shutdown/abort) fails with the service error. An already-produced
    /// estimate is returned even if the deadline lapsed meanwhile —
    /// matching [`QcfeGateway::estimate`], which only fails on a deadline
    /// it actually waited out.
    pub fn try_wait(&self) -> Result<Option<EstimateResponse>, QcfeError> {
        match self.ticket.try_wait()? {
            Some(estimate) => Ok(Some(assemble_response(
                estimate,
                &self.shard,
                self.key,
                self.cold_start,
                self.started,
                self.submitted,
            ))),
            None => match self.deadline {
                Some(deadline) if self.started.elapsed() > deadline => {
                    Err(QcfeError::DeadlineExceeded {
                        elapsed: self.started.elapsed(),
                        deadline,
                    })
                }
                _ => Ok(None),
            },
        }
    }

    /// Block until the answer, bounded by the request deadline — the
    /// blocking consumption of a submitted ticket, equivalent to having
    /// called [`QcfeGateway::estimate`].
    pub fn wait(self) -> Result<EstimateResponse, QcfeError> {
        let PendingResponse {
            ticket,
            shard,
            key,
            cold_start,
            started,
            submitted,
            deadline,
        } = self;
        let estimate = QcfeGateway::await_ticket(ticket, deadline, started)?;
        Ok(assemble_response(
            estimate, &shard, key, cold_start, started, submitted,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestOptions;
    use crate::service::ServiceError;
    use qcfe_core::snapshot::OperatorSample;
    use qcfe_db::plan::{OperatorKind, PhysicalOp, PlanNode};
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    /// Deterministic stub: cost = 3 * est_rows. Counts instantiations so
    /// tests can assert how often a provider was invoked.
    #[derive(Debug)]
    struct TripleRows;

    impl CostModel for TripleRows {
        fn name(&self) -> &'static str {
            "TripleRows"
        }
        fn predict_plan(&self, root: &PlanNode, _snapshot: Option<&FeatureSnapshot>) -> f64 {
            3.0 * root.est_rows
        }
    }

    fn scan_plan(rows: f64) -> PlanNode {
        let mut node = PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![]);
        node.est_rows = rows;
        node.est_cost = rows * 0.01;
        node
    }

    fn tiny_snapshot(slope: f64) -> FeatureSnapshot {
        let samples: Vec<OperatorSample> = (1..=40)
            .map(|i| {
                let n = (i * 50) as f64;
                OperatorSample {
                    kind: OperatorKind::SeqScan,
                    n1: n,
                    n2: 0.0,
                    self_ms: slope * n + 0.25,
                }
            })
            .collect();
        FeatureSnapshot::fit(&samples)
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qcfe-gateway-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn env_with_overhead(os_overhead: f64) -> DbEnvironment {
        let mut env = DbEnvironment::reference();
        env.os_overhead = os_overhead;
        env
    }

    fn mscn_request(env: &DbEnvironment, rows: f64) -> EstimateRequest {
        // `Mscn` (non-QCFE) keeps stub-model tests snapshot-free.
        EstimateRequest::new(BenchmarkKind::Sysbench, env.clone(), scan_plan(rows))
            .with_estimator(EstimatorKind::Mscn)
    }

    #[test]
    fn second_request_to_the_same_fingerprint_reuses_the_shard() {
        let root = temp_root("reuse");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = QcfeGateway::builder(&root)
            .with_model(key, Arc::new(TripleRows))
            .build()
            .unwrap();

        let first = gateway.estimate(mscn_request(&env, 10.0)).unwrap();
        assert_eq!(first.cost_ms, 30.0);
        assert!(
            first.provenance.cold_start,
            "first request starts the shard"
        );
        assert_eq!(first.provenance.model_key, key);

        let second = gateway.estimate(mscn_request(&env, 20.0)).unwrap();
        assert_eq!(second.cost_ms, 60.0);
        assert!(
            !second.provenance.cold_start,
            "same fingerprint must not start a new service"
        );
        let stats = gateway.stats();
        assert_eq!(stats.shard_starts, 1);
        assert_eq!(stats.shards_resident, 1);
        assert_eq!(stats.requests, 2);
        assert_eq!(gateway.resident_shards(), vec![key]);
        let metrics = gateway.shard_metrics(&key).expect("shard resident");
        assert_eq!(metrics.completed, 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shard_cap_retires_least_recently_used_shards() {
        let root = temp_root("cap");
        let envs: Vec<DbEnvironment> = (0..3)
            .map(|i| env_with_overhead(1.0 + i as f64 * 0.01))
            .collect();
        let mut builder = QcfeGateway::builder(&root).max_shards(2);
        for env in &envs {
            builder = builder.with_model(
                ModelKey::new(
                    BenchmarkKind::Sysbench,
                    EstimatorKind::Mscn,
                    env.fingerprint(),
                ),
                Arc::new(TripleRows),
            );
        }
        let gateway = builder.build().unwrap();

        for env in &envs {
            gateway.estimate(mscn_request(env, 1.0)).unwrap();
        }
        let stats = gateway.stats();
        assert_eq!(stats.shard_starts, 3);
        assert_eq!(stats.shards_resident, 2, "cap holds");
        assert_eq!(stats.shard_retirements, 1, "LRU victim retired");
        // The retired (least recently used) shard was env 0's; touching it
        // again cold-starts it.
        let again = gateway.estimate(mscn_request(&envs[0], 1.0)).unwrap();
        assert!(again.provenance.cold_start);
        assert_eq!(gateway.stats().shard_starts, 4);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unseen_fingerprint_warm_starts_from_the_nearest_neighbour() {
        let root = temp_root("transfer");
        let published = env_with_overhead(1.05);
        let far = env_with_overhead(1.40);
        let unseen = env_with_overhead(1.051);
        let key = |env: &DbEnvironment| {
            ModelKey::new(
                BenchmarkKind::Sysbench,
                EstimatorKind::Mscn,
                env.fingerprint(),
            )
        };
        let gateway = QcfeGateway::builder(&root)
            .with_model(key(&published), Arc::new(TripleRows))
            .with_model(key(&far), Arc::new(TripleRows))
            .with_model(key(&unseen), Arc::new(TripleRows))
            .build()
            .unwrap();
        gateway
            .publish_snapshot(BenchmarkKind::Sysbench, &published, &tiny_snapshot(0.002))
            .unwrap();
        gateway
            .publish_snapshot(BenchmarkKind::Sysbench, &far, &tiny_snapshot(0.009))
            .unwrap();

        // Published environment serves from its own snapshot.
        let own = gateway.estimate(mscn_request(&published, 2.0)).unwrap();
        assert_eq!(own.provenance.snapshot_origin, SnapshotOrigin::TrainedHere);

        // The unseen environment warm-starts from its nearest neighbour.
        let transferred = gateway.estimate(mscn_request(&unseen, 2.0)).unwrap();
        match transferred.provenance.snapshot_origin {
            SnapshotOrigin::Transferred { source, distance } => {
                assert_eq!(source, published.fingerprint(), "nearest must win");
                assert!(distance > 0.0 && distance < unseen.distance_to(&far));
            }
            other => panic!("expected transfer, got {other:?}"),
        }
        assert_eq!(gateway.stats().snapshot_transfers, 1);

        // With transfer disabled, a QCFE estimator fails typed.
        let strict = EstimateRequest::new(
            BenchmarkKind::Sysbench,
            env_with_overhead(1.3),
            scan_plan(1.0),
        )
        .with_options(RequestOptions {
            estimator: EstimatorKind::QcfeMscn,
            allow_transfer: false,
            shed_load: false,
            ..RequestOptions::default()
        });
        match gateway.estimate(strict) {
            Err(QcfeError::SnapshotMissing { benchmark, .. }) => {
                assert_eq!(benchmark, BenchmarkKind::Sysbench)
            }
            other => panic!("expected SnapshotMissing, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn model_resolution_prefers_registry_then_provider_then_pgsql() {
        let root = temp_root("resolve");
        let env = DbEnvironment::reference();
        let provided = Arc::new(AtomicUsize::new(0));
        let calls = Arc::clone(&provided);
        let gateway = QcfeGateway::builder(&root)
            .model_provider(move |key, snapshot| {
                assert!(snapshot.is_none(), "no snapshot published in this test");
                calls.fetch_add(1, Ordering::Relaxed);
                (key.estimator == EstimatorKind::Mscn)
                    .then(|| Arc::new(TripleRows) as Arc<dyn CostModel>)
            })
            .build()
            .unwrap();

        // Provider supplies the MSCN model and it gets registered.
        let response = gateway.estimate(mscn_request(&env, 4.0)).unwrap();
        assert_eq!(response.cost_ms, 12.0);
        assert_eq!(provided.load(Ordering::Relaxed), 1);
        assert_eq!(gateway.stats().registry.resident, 1);

        // The PGSQL baseline needs neither registration nor provider.
        let pg = gateway
            .estimate(
                EstimateRequest::new(BenchmarkKind::Sysbench, env.clone(), scan_plan(5.0))
                    .with_estimator(EstimatorKind::Pgsql),
            )
            .unwrap();
        assert!(pg.cost_ms.is_finite() && pg.cost_ms > 0.0);
        assert_eq!(pg.provenance.snapshot_origin, SnapshotOrigin::None);

        // An estimator the provider declines fails typed.
        match gateway.estimate(
            EstimateRequest::new(BenchmarkKind::Sysbench, env.clone(), scan_plan(1.0))
                .with_estimator(EstimatorKind::QppNet),
        ) {
            Err(QcfeError::ModelMissing { key }) => {
                assert_eq!(key.estimator, EstimatorKind::QppNet)
            }
            other => panic!("expected ModelMissing, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn deadlines_fail_fast_with_a_typed_error() {
        let root = temp_root("deadline");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = QcfeGateway::builder(&root)
            .with_model(key, Arc::new(TripleRows))
            .build()
            .unwrap();
        // An already-expired deadline cannot be met.
        let request = mscn_request(&env, 1.0).with_deadline(Duration::ZERO);
        match gateway.estimate(request) {
            Err(QcfeError::DeadlineExceeded { deadline, elapsed }) => {
                assert_eq!(deadline, Duration::ZERO);
                assert!(elapsed >= deadline);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A generous deadline passes.
        let request = mscn_request(&env, 1.0).with_deadline(Duration::from_secs(30));
        assert!(gateway.estimate(request).is_ok());
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A deadline bounds the *wait*, not just pre/post checks: a shard
    /// stuck in slow inference must not hold the caller past its deadline.
    #[test]
    fn deadlines_interrupt_a_blocked_wait() {
        #[derive(Debug)]
        struct SlowModel;
        impl CostModel for SlowModel {
            fn name(&self) -> &'static str {
                "SlowModel"
            }
            fn predict_plan(&self, _: &PlanNode, _: Option<&FeatureSnapshot>) -> f64 {
                std::thread::sleep(Duration::from_millis(300));
                1.0
            }
        }
        let root = temp_root("slow");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = QcfeGateway::builder(&root)
            .with_model(key, Arc::new(SlowModel))
            .build()
            .unwrap();
        let waited = Instant::now();
        let request = mscn_request(&env, 1.0).with_deadline(Duration::from_millis(20));
        match gateway.estimate(request) {
            Err(QcfeError::DeadlineExceeded { elapsed, deadline }) => {
                assert_eq!(deadline, Duration::from_millis(20));
                assert!(elapsed >= deadline);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert!(
            waited.elapsed() < Duration::from_millis(250),
            "the caller must be released at the deadline, not after inference"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn estimate_many_answers_in_plan_order_through_one_shard() {
        let root = temp_root("many");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = QcfeGateway::builder(&root)
            .with_model(key, Arc::new(TripleRows))
            .build()
            .unwrap();
        let extra: Vec<PlanNode> = (2..=8).map(|i| scan_plan(i as f64)).collect();
        let responses = gateway
            .estimate_many(mscn_request(&env, 1.0), extra)
            .unwrap();
        assert_eq!(responses.len(), 8);
        for (i, response) in responses.iter().enumerate() {
            assert_eq!(response.cost_ms, 3.0 * (i as f64 + 1.0), "plan order");
            assert_eq!(response.provenance.model_key, key);
        }
        let stats = gateway.stats();
        assert_eq!(stats.requests, 8);
        assert_eq!(stats.shard_starts, 1, "one shard serves the whole burst");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn concurrent_cold_starts_converge_on_one_shard() {
        let root = temp_root("race");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = Arc::new(
            QcfeGateway::builder(&root)
                .with_model(key, Arc::new(TripleRows))
                .build()
                .unwrap(),
        );
        std::thread::scope(|scope| {
            for i in 0..8 {
                let gateway = Arc::clone(&gateway);
                let env = env.clone();
                scope.spawn(move || {
                    let response = gateway
                        .estimate(mscn_request(&env, i as f64 + 1.0))
                        .unwrap();
                    assert_eq!(response.cost_ms, 3.0 * (i as f64 + 1.0));
                });
            }
        });
        let stats = gateway.stats();
        assert_eq!(stats.shards_resident, 1, "racers converge on one shard");
        assert_eq!(stats.shard_starts, 1, "only one racer starts the service");
        assert_eq!(stats.requests, 8);
        let _ = std::fs::remove_dir_all(&root);
    }

    use crate::test_support::tiny_mscn as tiny_persisted_mscn;

    /// Tentpole acceptance (unit scale): publish weights, drop the gateway,
    /// rebuild on the same root — the restarted gateway answers from disk,
    /// bit-identically, with [`SnapshotOrigin::LoadedFromDisk`] provenance
    /// and no provider in sight.
    #[test]
    fn restarted_gateway_serves_from_persisted_weights() {
        let root = temp_root("restart");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let persisted = tiny_persisted_mscn(31);
        let plans: Vec<PlanNode> = (1..=6).map(|i| scan_plan(i as f64 * 10.0)).collect();

        let before: Vec<u64> = {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            gateway
                .publish_model(key, persisted.clone())
                .expect("weights persisted");
            plans
                .iter()
                .map(|p| {
                    let mut request = mscn_request(&env, 1.0);
                    request.plan = p.clone();
                    gateway.estimate(request).unwrap().cost_ms.to_bits()
                })
                .collect()
            // Gateway (and its shards) dropped here — the "process exit".
        };

        let gateway = QcfeGateway::builder(&root).build().unwrap();
        for (plan, &expected) in plans.iter().zip(&before) {
            let mut request = mscn_request(&env, 1.0);
            request.plan = plan.clone();
            let response = gateway.estimate(request).unwrap();
            assert_eq!(
                response.cost_ms.to_bits(),
                expected,
                "restarted gateway must serve bit-identical estimates"
            );
            assert!(
                response.provenance.snapshot_origin.is_from_disk(),
                "provenance must record the disk load, got {:?}",
                response.provenance.snapshot_origin
            );
            assert!(response.provenance.model_from_disk);
        }
        let stats = gateway.stats();
        assert_eq!(stats.model_loads, 1, "one disk load serves every request");
        assert_eq!(stats.registry.loads, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The quantized publish path end-to-end: quantize-at-publish, persist
    /// as `QCFW` v2, drop the gateway, rebuild on the same root — the
    /// restarted gateway reloads the *int8* sidecar and serves estimates
    /// bit-identical to the pre-restart quantized ones.
    #[test]
    fn restarted_gateway_serves_quantized_weights_bit_identically() {
        let root = temp_root("restart-int8");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let persisted = tiny_persisted_mscn(37);
        let plans: Vec<PlanNode> = (1..=6).map(|i| scan_plan(i as f64 * 10.0)).collect();

        let before: Vec<u64> = {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            gateway
                .publish_quantized_model(key, persisted.clone())
                .expect("quantized weights persisted");
            plans
                .iter()
                .map(|p| {
                    let mut request = mscn_request(&env, 1.0);
                    request.plan = p.clone();
                    gateway.estimate(request).unwrap().cost_ms.to_bits()
                })
                .collect()
        };
        let gateway = QcfeGateway::builder(&root).build().unwrap();
        // The sidecar on disk holds the int8 payload, not a re-expanded f64
        // model.
        let reloaded = gateway
            .store()
            .load_model(key.benchmark, key.estimator, key.fingerprint)
            .expect("loads")
            .expect("present");
        assert!(reloaded.is_quantized());
        assert_eq!(reloaded.name(), "MSCN-int8");
        for (plan, &expected) in plans.iter().zip(&before) {
            let mut request = mscn_request(&env, 1.0);
            request.plan = plan.clone();
            let response = gateway.estimate(request).unwrap();
            assert_eq!(
                response.cost_ms.to_bits(),
                expected,
                "restarted gateway must serve bit-identical quantized estimates"
            );
            assert!(response.provenance.model_from_disk);
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Disk-loaded weights do not erase a transferred snapshot's
    /// provenance: the `Transferred { source, distance }` observables stay
    /// on the response and the disk load is reported via
    /// `model_from_disk`.
    #[test]
    fn transferred_snapshot_keeps_its_provenance_with_a_disk_model() {
        let root = temp_root("transfer-disk");
        let published = env_with_overhead(1.05);
        let unseen = env_with_overhead(1.051);
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            unseen.fingerprint(),
        );
        {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            // The unseen fingerprint has persisted *weights* but no
            // snapshot of its own; the published neighbour has a snapshot.
            gateway
                .publish_snapshot(BenchmarkKind::Sysbench, &published, &tiny_snapshot(0.002))
                .unwrap();
            gateway
                .store()
                .save_model(
                    key.benchmark,
                    key.estimator,
                    key.fingerprint,
                    &tiny_persisted_mscn(61),
                )
                .unwrap();
        }
        let gateway = QcfeGateway::builder(&root).build().unwrap();
        let response = gateway.estimate(mscn_request(&unseen, 2.0)).unwrap();
        match response.provenance.snapshot_origin {
            SnapshotOrigin::Transferred { source, distance } => {
                assert_eq!(source, published.fingerprint());
                assert!(distance > 0.0);
            }
            other => panic!("transfer observables must survive, got {other:?}"),
        }
        assert!(
            response.provenance.model_from_disk,
            "the disk load must still be visible"
        );
        let stats = gateway.stats();
        assert_eq!(stats.model_loads, 1);
        assert_eq!(stats.snapshot_transfers, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A corrupt weight sidecar degrades to a provider call instead of
    /// serving garbage or failing the request.
    #[test]
    fn corrupt_weight_file_falls_through_to_the_provider() {
        let root = temp_root("corrupt-weights");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            let path = gateway
                .publish_model(key, tiny_persisted_mscn(32))
                .expect("weights persisted");
            // Flip one payload byte: the CRC makes the file undecodable.
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
        }
        let provided = Arc::new(AtomicUsize::new(0));
        let calls = Arc::clone(&provided);
        let gateway = QcfeGateway::builder(&root)
            .model_provider(move |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                Some(Arc::new(TripleRows) as Arc<dyn CostModel>)
            })
            .build()
            .unwrap();
        let response = gateway.estimate(mscn_request(&env, 4.0)).unwrap();
        assert_eq!(response.cost_ms, 12.0, "provider model served");
        assert_eq!(provided.load(Ordering::Relaxed), 1);
        assert!(
            !response.provenance.snapshot_origin.is_from_disk(),
            "a rebuilt model must not claim disk provenance"
        );
        let stats = gateway.stats();
        assert_eq!(stats.model_loads, 0);
        assert_eq!(
            stats.model_load_failures, 1,
            "the broken sidecar must be observable"
        );
        // The corrupt file was quarantined: the canonical path is a clean
        // miss for future restarts and the evidence is kept alongside.
        let canonical =
            gateway
                .store()
                .model_path_for(key.benchmark, key.estimator, key.fingerprint);
        assert!(!canonical.exists(), "corrupt sidecar must be moved aside");
        let mut quarantined = canonical.into_os_string();
        quarantined.push(".corrupt");
        assert!(
            std::path::PathBuf::from(quarantined).is_file(),
            "quarantined copy must remain for inspection"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Disk provenance is sticky: with a 1-shard cap, retiring and
    /// restarting a shard whose disk-loaded model is still
    /// registry-resident must keep reporting [`SnapshotOrigin::LoadedFromDisk`],
    /// not flip to [`SnapshotOrigin::TrainedHere`].
    #[test]
    fn disk_provenance_survives_shard_retirement() {
        let root = temp_root("sticky");
        let env_a = env_with_overhead(1.0);
        let env_b = env_with_overhead(1.2);
        let key_for = |env: &DbEnvironment| {
            ModelKey::new(
                BenchmarkKind::Sysbench,
                EstimatorKind::Mscn,
                env.fingerprint(),
            )
        };
        {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            gateway
                .publish_model(key_for(&env_a), tiny_persisted_mscn(41))
                .unwrap();
            gateway
                .publish_model(key_for(&env_b), tiny_persisted_mscn(42))
                .unwrap();
        }
        let gateway = QcfeGateway::builder(&root).max_shards(1).build().unwrap();
        let first = gateway.estimate(mscn_request(&env_a, 1.0)).unwrap();
        assert!(first.provenance.snapshot_origin.is_from_disk());
        // Starting B's shard retires A's (cap 1)...
        let other = gateway.estimate(mscn_request(&env_b, 1.0)).unwrap();
        assert!(other.provenance.snapshot_origin.is_from_disk());
        // ...so this request restarts A's shard with the model still
        // resident in the registry: provenance must not change.
        let again = gateway.estimate(mscn_request(&env_a, 1.0)).unwrap();
        assert!(again.provenance.cold_start, "shard was retired");
        assert!(
            again.provenance.snapshot_origin.is_from_disk(),
            "disk provenance must survive shard retirement, got {:?}",
            again.provenance.snapshot_origin
        );
        assert_eq!(
            gateway.stats().model_loads,
            2,
            "each model loaded from disk exactly once"
        );
        // An in-process registration supersedes the disk mark (retire A's
        // shard again first — a running shard keeps its start-time origin).
        gateway.register_model(key_for(&env_a), Arc::new(TripleRows));
        gateway.estimate(mscn_request(&env_b, 1.0)).unwrap();
        let replaced = gateway.estimate(mscn_request(&env_a, 1.0)).unwrap();
        assert!(
            !replaced.provenance.snapshot_origin.is_from_disk(),
            "a freshly registered model is TrainedHere again"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A provider rebuild clears a stale disk mark: once the sidecar is
    /// gone and the model is retrained, later shard restarts serving the
    /// registry-resident rebuild must not claim disk provenance.
    #[test]
    fn provider_rebuild_clears_stale_disk_provenance() {
        let root = temp_root("stale-mark");
        let env_a = env_with_overhead(1.0);
        let env_b = env_with_overhead(1.2);
        let key_for = |env: &DbEnvironment| {
            ModelKey::new(
                BenchmarkKind::Sysbench,
                EstimatorKind::Mscn,
                env.fingerprint(),
            )
        };
        {
            let gateway = QcfeGateway::builder(&root).build().unwrap();
            gateway
                .publish_model(key_for(&env_a), tiny_persisted_mscn(51))
                .unwrap();
        }
        let gateway = QcfeGateway::builder(&root)
            .max_shards(1)
            .model_provider(|_, _| Some(Arc::new(TripleRows) as Arc<dyn CostModel>))
            .build()
            .unwrap();
        let first = gateway.estimate(mscn_request(&env_a, 1.0)).unwrap();
        assert!(first.provenance.snapshot_origin.is_from_disk());
        // Operator forces a retrain: drop the sidecar and the resident
        // model.
        let ka = key_for(&env_a);
        gateway
            .store()
            .remove_model(ka.benchmark, ka.estimator, ka.fingerprint)
            .unwrap();
        gateway.registry().remove(&ka);
        // Retire A's shard (cap 1), then rebuild A via the provider.
        gateway.estimate(mscn_request(&env_b, 1.0)).unwrap();
        let rebuilt = gateway.estimate(mscn_request(&env_a, 2.0)).unwrap();
        assert_eq!(rebuilt.cost_ms, 6.0, "provider model serves");
        assert!(!rebuilt.provenance.snapshot_origin.is_from_disk());
        // Retire once more; the provider-built model is still
        // registry-resident — the stale disk mark must not resurface.
        gateway.estimate(mscn_request(&env_b, 1.0)).unwrap();
        let again = gateway.estimate(mscn_request(&env_a, 3.0)).unwrap();
        assert!(again.provenance.cold_start, "shard was retired");
        assert_eq!(again.cost_ms, 9.0, "still the provider model");
        assert!(
            !again.provenance.snapshot_origin.is_from_disk(),
            "a retrained model must never resurrect disk provenance, got {:?}",
            again.provenance.snapshot_origin
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// A stub whose prediction is the snapshot's SeqScan formula applied to
    /// the plan's `est_rows` — refinement tests can tell *which* snapshot
    /// served an estimate, bit-for-bit.
    #[derive(Debug)]
    struct SnapshotSlope;

    impl CostModel for SnapshotSlope {
        fn name(&self) -> &'static str {
            "SnapshotSlope"
        }
        fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
            snapshot.map_or(-1.0, |s| {
                s.predict(OperatorKind::SeqScan, root.est_rows, 0.0)
            })
        }
    }

    /// A synthetic observed execution: one SeqScan whose self time follows
    /// `slope * rows + intercept`.
    fn executed_scan(rows: f64, slope: f64, intercept: f64) -> qcfe_db::executor::ExecutedQuery {
        let mut node = PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![]);
        node.est_rows = rows;
        node.actual_rows = rows;
        node.actual_self_ms = slope * rows + intercept;
        qcfe_db::executor::ExecutedQuery {
            total_ms: node.actual_self_ms,
            root: node,
        }
    }

    /// Tentpole (unit scale): streamed labels refit a transferred shard's
    /// snapshot in place, persist it, and promote the provenance
    /// `Transferred → TrainedHere` — without restarting the shard.
    #[test]
    fn feedback_refits_and_promotes_a_transferred_shard() {
        let root = temp_root("refine");
        let neighbour = env_with_overhead(1.05);
        let unseen = env_with_overhead(1.051);
        let gateway = QcfeGateway::builder(&root)
            .with_model(
                ModelKey::new(
                    BenchmarkKind::Sysbench,
                    EstimatorKind::Mscn,
                    unseen.fingerprint(),
                ),
                Arc::new(SnapshotSlope),
            )
            .refinement(RefinementConfig {
                refit_threshold: 8,
                min_drift: 0.0,
                buffer_capacity: 64,
            })
            .build()
            .unwrap();
        gateway
            .publish_snapshot(BenchmarkKind::Sysbench, &neighbour, &tiny_snapshot(0.002))
            .unwrap();

        let transferred = gateway.estimate(mscn_request(&unseen, 500.0)).unwrap();
        assert!(transferred.provenance.snapshot_origin.is_transferred());
        assert!(!transferred.provenance.refined);

        // The environment's real behaviour is 10x steeper than the
        // neighbour's snapshot claims.
        let mut refits = 0;
        let mut promotions = 0;
        for i in 0..8 {
            let outcome = gateway
                .record_execution(
                    BenchmarkKind::Sysbench,
                    &unseen,
                    &executed_scan((i + 1) as f64 * 40.0, 0.02, 0.25),
                )
                .unwrap();
            assert_eq!(outcome.samples, 1);
            assert_eq!(outcome.shards, 1);
            refits += outcome.refits;
            promotions += outcome.promotions;
        }
        assert_eq!(refits, 1, "the 8th sample triggers exactly one refit");
        assert_eq!(promotions, 1);
        let stats = gateway.stats();
        assert_eq!(stats.refits, 1);
        assert_eq!(stats.promotions, 1);
        assert_eq!(stats.labels_recorded, 8);

        // The shard now serves its own fitted coefficients, live.
        let promoted = gateway.estimate(mscn_request(&unseen, 500.0)).unwrap();
        assert_eq!(
            promoted.provenance.snapshot_origin,
            SnapshotOrigin::TrainedHere
        );
        assert!(promoted.provenance.refined);
        assert!(
            !promoted.provenance.cold_start,
            "the swap must not restart the shard"
        );
        let persisted = gateway
            .store()
            .load(BenchmarkKind::Sysbench, unseen.fingerprint())
            .unwrap()
            .expect("refit snapshot persisted under the shard's own fingerprint");
        assert!(persisted.refined);
        assert_eq!(
            promoted.cost_ms.to_bits(),
            persisted
                .predict(OperatorKind::SeqScan, 500.0, 0.0)
                .to_bits(),
            "served estimates must come from the persisted refit snapshot"
        );
        let c = persisted.coefficients(OperatorKind::SeqScan);
        assert!((c[0] - 0.02).abs() < 1e-9, "refit slope {}", c[0]);
        // The refined environment is now a transfer candidate itself.
        assert!(gateway
            .store()
            .load_vector(BenchmarkKind::Sysbench, unseen.fingerprint())
            .unwrap()
            .is_some());
        let metrics = gateway
            .shard_metrics(&promoted.provenance.model_key)
            .expect("resident");
        assert_eq!(metrics.snapshot_swaps, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The drift gate: feedback that merely confirms the serving snapshot
    /// triggers a fit but installs nothing — no persist, no swap, no
    /// promotion.
    #[test]
    fn drift_gate_skips_confirming_feedback() {
        let root = temp_root("drift");
        let neighbour = env_with_overhead(1.05);
        let unseen = env_with_overhead(1.051);
        let slope = 0.002;
        let gateway = QcfeGateway::builder(&root)
            .with_model(
                ModelKey::new(
                    BenchmarkKind::Sysbench,
                    EstimatorKind::Mscn,
                    unseen.fingerprint(),
                ),
                Arc::new(SnapshotSlope),
            )
            .refinement(RefinementConfig {
                refit_threshold: 8,
                min_drift: 0.5,
                buffer_capacity: 64,
            })
            .build()
            .unwrap();
        gateway
            .publish_snapshot(BenchmarkKind::Sysbench, &neighbour, &tiny_snapshot(slope))
            .unwrap();
        gateway.estimate(mscn_request(&unseen, 10.0)).unwrap();

        // Feedback follows the transferred snapshot's own line (same slope
        // and intercept the neighbour fitted): candidate ≈ current.
        for i in 0..16 {
            let outcome = gateway
                .record_execution(
                    BenchmarkKind::Sysbench,
                    &unseen,
                    &executed_scan((i + 1) as f64 * 50.0, slope, 0.25),
                )
                .unwrap();
            assert_eq!(outcome.refits, 0);
        }
        let stats = gateway.stats();
        assert_eq!(stats.refits, 0, "confirming feedback must not refit");
        assert_eq!(stats.promotions, 0);
        let response = gateway.estimate(mscn_request(&unseen, 10.0)).unwrap();
        assert!(response.provenance.snapshot_origin.is_transferred());
        assert!(!response.provenance.refined);
        assert!(
            gateway
                .store()
                .load(BenchmarkKind::Sysbench, unseen.fingerprint())
                .unwrap()
                .is_none(),
            "a skipped install must not persist anything"
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    /// The drift gate must not starve an operator the warm-start never
    /// covered: feedback whose shared-operator drift is ~zero but which
    /// carries a *new* operator's labels still installs the refit
    /// (`relative_difference` only scores shared operators, so the new
    /// coefficients would otherwise read as zero drift forever).
    #[test]
    fn drift_gate_still_installs_newly_covered_operators() {
        let root = temp_root("drift-new-op");
        let neighbour = env_with_overhead(1.05);
        let unseen = env_with_overhead(1.051);
        let slope = 0.002;
        let gateway = QcfeGateway::builder(&root)
            .with_model(
                ModelKey::new(
                    BenchmarkKind::Sysbench,
                    EstimatorKind::Mscn,
                    unseen.fingerprint(),
                ),
                Arc::new(SnapshotSlope),
            )
            .refinement(RefinementConfig {
                refit_threshold: 16,
                min_drift: 0.5,
                buffer_capacity: 64,
            })
            .build()
            .unwrap();
        // The transferred snapshot covers SeqScan only.
        gateway
            .publish_snapshot(BenchmarkKind::Sysbench, &neighbour, &tiny_snapshot(slope))
            .unwrap();
        gateway.estimate(mscn_request(&unseen, 10.0)).unwrap();

        // Feedback: SeqScan confirms the transferred line (zero drift on
        // shared operators), but every execution also carries a Sort the
        // warm start knows nothing about.
        for i in 0..8 {
            let n = (i + 1) as f64 * 50.0;
            let mut scan = PlanNode::new(PhysicalOp::SeqScan { table: "t".into() }, vec![]);
            scan.actual_rows = n;
            scan.actual_self_ms = slope * n + 0.25;
            let mut sort = PlanNode::new(PhysicalOp::Sort { keys: vec![] }, vec![scan]);
            sort.actual_rows = n;
            sort.actual_self_ms = 0.001 * n * (n + 1.0).log2() + 2.0;
            let executed = qcfe_db::executor::ExecutedQuery {
                total_ms: sort.actual_self_ms,
                root: sort,
            };
            gateway
                .record_execution(BenchmarkKind::Sysbench, &unseen, &executed)
                .unwrap();
        }
        let stats = gateway.stats();
        assert_eq!(
            stats.refits, 1,
            "a newly covered operator must force the install"
        );
        assert_eq!(stats.promotions, 1);
        let persisted = gateway
            .store()
            .load(BenchmarkKind::Sysbench, unseen.fingerprint())
            .unwrap()
            .expect("refit persisted");
        let sort = persisted.coefficients(OperatorKind::Sort);
        assert!(
            sort != [0.0; qcfe_core::snapshot::SNAPSHOT_DIM],
            "the new operator's coefficients must be live"
        );
        assert!((sort[0] - 0.001).abs() < 1e-6, "sort c0 {}", sort[0]);
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Labels for an environment nobody is serving are dropped, visibly.
    #[test]
    fn feedback_without_a_resident_shard_is_dropped() {
        let root = temp_root("unrouted");
        let env = DbEnvironment::reference();
        let gateway = QcfeGateway::builder(&root).build().unwrap();
        let outcome = gateway
            .record_execution(
                BenchmarkKind::Sysbench,
                &env,
                &executed_scan(100.0, 0.01, 0.1),
            )
            .unwrap();
        assert_eq!(outcome.samples, 1);
        assert_eq!(outcome.shards, 0, "no owner: labels dropped");
        assert_eq!(gateway.stats().labels_recorded, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn shed_load_surfaces_queue_full_as_qcfe_error() {
        let root = temp_root("shed");
        let env = DbEnvironment::reference();
        let key = ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Mscn,
            env.fingerprint(),
        );
        let gateway = Arc::new(
            QcfeGateway::builder(&root)
                .service_config(ServiceConfig {
                    workers: 1,
                    queue_capacity: 1,
                    max_batch: 1,
                    encoding_cache_capacity: 16,
                })
                .with_model(key, Arc::new(TripleRows))
                .build()
                .unwrap(),
        );
        // Saturate the 1-slot queue from background closed-loop clients,
        // then probe open-loop until a shed is observed.
        let mut saw_full = false;
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let gateway = Arc::clone(&gateway);
                let env = env.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        gateway
                            .estimate(mscn_request(&env, i as f64 + 1.0))
                            .unwrap();
                    }
                });
            }
            for _ in 0..500 {
                let mut request = mscn_request(&env, 1.0);
                request.options.shed_load = true;
                match gateway.estimate(request) {
                    Err(QcfeError::Service(ServiceError::QueueFull { .. })) => {
                        saw_full = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error {e}"),
                    Ok(_) => {}
                }
            }
        });
        // The probe races real traffic; when it lost every race, the
        // closed-loop work itself still proves the shard survived pressure.
        if saw_full {
            let key_metrics = gateway.shard_metrics(&key).expect("resident");
            assert!(key_metrics.rejected >= 1);
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}

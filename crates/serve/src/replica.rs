//! Replicated serving: static peer sets, rendezvous shard placement and
//! state-shipping events.
//!
//! A deployment runs N `qcfe-served` processes that form a *static* peer
//! set (every process is configured with the same ordered address list
//! plus its own index). Each serving key — `(benchmark, estimator,
//! fingerprint)`, i.e. [`ModelKey`] — is owned by exactly one *alive*
//! peer, chosen by highest-random-weight (rendezvous) hashing: every
//! `(peer, key)` pair hashes to a 64-bit weight and the alive peer with
//! the highest weight owns the key. Rendezvous placement needs no ring
//! state to persist or gossip, and it has the minimal-disruption
//! property the failover story rests on: removing a peer moves *only*
//! that peer's keys (every other key keeps its argmax), so survivors
//! absorb exactly the dead peer's shards and nothing else reshuffles.
//!
//! State flows between peers as [`ShipEvent`]s: whenever a gateway
//! persists a refined snapshot or a published model (persist-before-swap
//! is the ordering anchor — a shipped artifact is always already durable
//! at its origin), it hands the *exact persisted bytes* — the CRC-checked
//! `QCFS` v2 / `QCFW` v2 codec payloads — to a [`ReplicationSink`]. The
//! network layer's replicator streams them to every peer as QCFP
//! `ShipSnapshot`/`ShipModel` frames; receivers decode and re-validate
//! through the same codecs, so replication is bit-exact by construction
//! and corruption is rejected typed at both the wire (CRC) and codec
//! (magic/version/checksum) layers.
//!
//! Liveness is a local, advisory view: [`ReplicaSet::mark_dead`] /
//! [`ReplicaSet::mark_alive`] flip bits in an atomic mask that
//! [`ReplicaSet::owner_index`] consults. Servers update it from the
//! replicator's heartbeat probes; clients update it from their own
//! connection failures. The two views converge within a heartbeat
//! period — in the gap a client may be redirected with a
//! `NotOwner { owner }` fault and simply retries with backoff.
//!
//! Revival is *not* a single bit-flip: shipping is fire-and-forget with
//! no history replay, so a peer that died and came back may hold stale
//! state for every key re-published during its outage. A server that
//! observes the dead→alive transition therefore parks the peer in an
//! intermediate *reviving* state ([`ReplicaSet::begin_revival`]): the
//! peer stays out of the alive mask — `owner_index` never routes to it —
//! while the observer exchanges store manifests and re-ships divergent
//! keys, and only [`ReplicaSet::promote_revived`] completes the
//! transition. While the reviving bit is set, [`ReplicaSet::mark_alive`]
//! is a deliberate no-op, so an incidental successful ship cannot
//! promote a peer whose catch-up is still draining.

use crate::registry::ModelKey;
use std::sync::atomic::{AtomicU64, Ordering};

/// The peer-set size cap (the alive mask is one `u64`).
pub const MAX_PEERS: usize = 64;

/// A malformed peer-set configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The peer list was empty.
    NoPeers,
    /// More than [`MAX_PEERS`] peers were listed.
    TooManyPeers(usize),
    /// `self_index` does not index the peer list.
    SelfOutOfRange {
        /// The out-of-range index.
        index: usize,
        /// The peer-list length.
        peers: usize,
    },
    /// The same address was listed twice (placement would double-count it).
    DuplicatePeer(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::NoPeers => write!(f, "replica set needs at least one peer"),
            ReplicaError::TooManyPeers(n) => {
                write!(f, "replica set of {n} peers exceeds the cap of {MAX_PEERS}")
            }
            ReplicaError::SelfOutOfRange { index, peers } => {
                write!(f, "self index {index} out of range for {peers} peers")
            }
            ReplicaError::DuplicatePeer(addr) => {
                write!(f, "peer address {addr:?} listed more than once")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// `splitmix64` finalizer — a full-avalanche bijection over `u64`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The rendezvous weight of `(peer, key)`.
///
/// FNV-1a over the peer address and the key's stable identity (benchmark
/// and estimator *names*, not enum discriminants, plus the fingerprint
/// bits), finished with a splitmix64 avalanche. Deliberately not
/// `std::hash::Hasher`-based: `DefaultHasher` is seed-randomized per
/// process, and placement must agree across every process of the peer
/// set.
pub fn placement_weight(peer: &str, key: &ModelKey) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        // Separator so ("ab","c") and ("a","bc") hash differently.
        h = (h ^ 0xff).wrapping_mul(FNV_PRIME);
    };
    eat(peer.as_bytes());
    eat(key.benchmark.name().as_bytes());
    eat(key.estimator.name().as_bytes());
    eat(&key.fingerprint.0.to_le_bytes());
    splitmix64(h)
}

/// The owner of `key` among `peers`, ignoring liveness — the pure
/// placement function property tests exercise directly.
pub fn owner_among(peers: &[String], key: &ModelKey) -> Option<usize> {
    peers
        .iter()
        .enumerate()
        .max_by_key(|(index, peer)| (placement_weight(peer, key), usize::MAX - index))
        .map(|(index, _)| index)
}

/// A static, ordered peer set with an advisory liveness mask.
///
/// Shared as an `Arc` between the gateway (ownership checks in the
/// server), the replicator (heartbeat updates) and shard-aware clients
/// (connection-failure updates). All liveness operations are lock-free
/// atomics; the peer list itself never changes after construction.
#[derive(Debug)]
pub struct ReplicaSet {
    peers: Vec<String>,
    self_index: Option<usize>,
    alive: AtomicU64,
    /// Peers caught between dead and alive: seen responsive again by a
    /// heartbeat, but still catching up on state re-published during their
    /// outage. Disjoint from `alive` by construction; only
    /// [`ReplicaSet::promote_revived`] moves a bit from here to `alive`.
    reviving: AtomicU64,
}

impl ReplicaSet {
    /// A server-side set: `peers[self_index]` is this process.
    pub fn new(peers: Vec<String>, self_index: usize) -> Result<Self, ReplicaError> {
        if self_index >= peers.len() {
            return Err(ReplicaError::SelfOutOfRange {
                index: self_index,
                peers: peers.len(),
            });
        }
        Self::build(peers, Some(self_index))
    }

    /// A client-side view: same peer list, no self identity.
    pub fn client_view(peers: Vec<String>) -> Result<Self, ReplicaError> {
        Self::build(peers, None)
    }

    fn build(peers: Vec<String>, self_index: Option<usize>) -> Result<Self, ReplicaError> {
        if peers.is_empty() {
            return Err(ReplicaError::NoPeers);
        }
        if peers.len() > MAX_PEERS {
            return Err(ReplicaError::TooManyPeers(peers.len()));
        }
        for (i, peer) in peers.iter().enumerate() {
            if peers[..i].contains(peer) {
                return Err(ReplicaError::DuplicatePeer(peer.clone()));
            }
        }
        let all_alive = if peers.len() == MAX_PEERS {
            u64::MAX
        } else {
            (1u64 << peers.len()) - 1
        };
        Ok(ReplicaSet {
            peers,
            self_index,
            alive: AtomicU64::new(all_alive),
            reviving: AtomicU64::new(0),
        })
    }

    /// The ordered peer addresses.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Number of peers (alive or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// This process's index (servers only).
    pub fn self_index(&self) -> Option<usize> {
        self.self_index
    }

    /// This process's address (servers only).
    pub fn self_addr(&self) -> Option<&str> {
        self.self_index.map(|i| self.peers[i].as_str())
    }

    /// The index of `addr` in the peer list.
    pub fn index_of(&self, addr: &str) -> Option<usize> {
        self.peers.iter().position(|p| p == addr)
    }

    /// Whether peer `index` is currently believed alive.
    pub fn is_alive(&self, index: usize) -> bool {
        index < self.peers.len() && self.alive.load(Ordering::Acquire) & (1u64 << index) != 0
    }

    /// How many peers are currently believed alive.
    pub fn alive_count(&self) -> usize {
        self.alive.load(Ordering::Acquire).count_ones() as usize
    }

    /// Mark peer `index` dead; returns whether it was alive or reviving.
    /// A mid-catch-up death cancels the revival: both bits clear, and the
    /// next responsive heartbeat starts a fresh handshake.
    pub fn mark_dead(&self, index: usize) -> bool {
        if index >= self.peers.len() {
            return false;
        }
        let bit = 1u64 << index;
        let was_reviving = self.reviving.fetch_and(!bit, Ordering::AcqRel) & bit != 0;
        let was_alive = self.alive.fetch_and(!bit, Ordering::AcqRel) & bit != 0;
        was_alive || was_reviving
    }

    /// Mark peer `index` alive again; returns whether the bit changed.
    ///
    /// Deliberately a no-op while the peer is mid-revival: successful
    /// ships to a catching-up peer must not promote it early — only
    /// [`ReplicaSet::promote_revived`] completes that transition.
    pub fn mark_alive(&self, index: usize) -> bool {
        if index >= self.peers.len() {
            return false;
        }
        let bit = 1u64 << index;
        if self.reviving.load(Ordering::Acquire) & bit != 0 {
            return false;
        }
        self.alive.fetch_or(bit, Ordering::AcqRel) & bit == 0
    }

    /// Whether peer `index` is mid-revival (responsive again but still
    /// catching up, excluded from owner selection).
    pub fn is_reviving(&self, index: usize) -> bool {
        index < self.peers.len() && self.reviving.load(Ordering::Acquire) & (1u64 << index) != 0
    }

    /// How many peers are currently mid-revival.
    pub fn reviving_count(&self) -> usize {
        self.reviving.load(Ordering::Acquire).count_ones() as usize
    }

    /// Begin the revival of a dead peer that answered a heartbeat again:
    /// set its reviving bit so the catch-up handshake can run while
    /// `owner_index` still routes around it. Returns `false` (and leaves
    /// the masks untouched) when the peer is already alive or already
    /// reviving — there is nothing to catch up, or someone else is on it.
    pub fn begin_revival(&self, index: usize) -> bool {
        if index >= self.peers.len() {
            return false;
        }
        let bit = 1u64 << index;
        if self.alive.load(Ordering::Acquire) & bit != 0 {
            return false;
        }
        if self.reviving.fetch_or(bit, Ordering::AcqRel) & bit != 0 {
            return false;
        }
        // Re-check after claiming the bit: a concurrent mark_alive that
        // slipped in between the load and the fetch_or wins, and the
        // claimed bit is rolled back.
        if self.alive.load(Ordering::Acquire) & bit != 0 {
            self.reviving.fetch_and(!bit, Ordering::AcqRel);
            return false;
        }
        true
    }

    /// Complete a revival: the catch-up diff drained, so move the peer
    /// from reviving to alive. Returns whether the peer was in fact
    /// reviving (a concurrent `mark_dead` cancels the promotion).
    pub fn promote_revived(&self, index: usize) -> bool {
        if index >= self.peers.len() {
            return false;
        }
        let bit = 1u64 << index;
        if self.reviving.fetch_and(!bit, Ordering::AcqRel) & bit == 0 {
            return false;
        }
        self.alive.fetch_or(bit, Ordering::AcqRel);
        true
    }

    /// The index of the peer that owns `key` under the current liveness
    /// view: the alive peer with the highest rendezvous weight. With every
    /// peer marked dead the mask is ignored (placement over the full set),
    /// so the function is total and callers always get a concrete target
    /// to try.
    pub fn owner_index(&self, key: &ModelKey) -> usize {
        let mask = self.alive.load(Ordering::Acquire);
        let pick = |use_mask: bool| {
            self.peers
                .iter()
                .enumerate()
                .filter(|(index, _)| !use_mask || mask & (1u64 << index) != 0)
                .max_by_key(|(index, peer)| (placement_weight(peer, key), usize::MAX - index))
                .map(|(index, _)| index)
        };
        pick(true)
            .or_else(|| pick(false))
            .expect("replica set is never empty")
    }

    /// The address of the peer that owns `key` under the current view.
    pub fn owner_addr(&self, key: &ModelKey) -> &str {
        &self.peers[self.owner_index(key)]
    }

    /// Whether this process owns `key` under the current view. A set with
    /// no self identity (a client view) owns nothing.
    pub fn owns(&self, key: &ModelKey) -> bool {
        self.self_index == Some(self.owner_index(key))
    }
}

/// One state-shipping event, carrying the exact persisted codec bytes.
///
/// `snapshot`/`weights` are the verbatim `QCFS` v2 / `QCFW` v2 payloads
/// the origin just wrote to its own store — receivers re-validate them
/// through the same codecs, so a shipped artifact is bit-identical to
/// the durable one or rejected typed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShipEvent {
    /// A persisted (published or refined) feature snapshot plus the
    /// environment's knob vector (the `QVEC` sidecar content, needed so
    /// receivers can serve nearest-fingerprint transfer for the shipped
    /// environment too).
    Snapshot {
        /// The benchmark the snapshot belongs to.
        benchmark: qcfe_workloads::BenchmarkKind,
        /// The environment fingerprint it is keyed under.
        fingerprint: qcfe_db::env::EnvFingerprint,
        /// The verbatim `QCFS` v2 bytes.
        snapshot: Vec<u8>,
        /// The environment's knob vector (empty when unknown).
        knobs: Vec<f64>,
    },
    /// Persisted model weights.
    Model {
        /// The serving key the weights are published under.
        key: ModelKey,
        /// The verbatim `QCFW` v2 bytes.
        weights: Vec<u8>,
    },
}

impl ShipEvent {
    /// A short human label for logs and stats.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ShipEvent::Snapshot { .. } => "snapshot",
            ShipEvent::Model { .. } => "model",
        }
    }
}

/// Where the gateway hands freshly persisted state for replication.
///
/// Shipping is strictly fire-and-forget from the gateway's perspective:
/// the artifact is already durable locally when `ship` is called, and a
/// slow or dead peer must never fail (or block) the serving path, so
/// implementations enqueue and return. The network layer's `Replicator`
/// is the production implementation; tests install channel-backed sinks.
pub trait ReplicationSink: Send + Sync {
    /// Enqueue `event` for delivery to every peer.
    fn ship(&self, event: ShipEvent);

    /// Point-in-time replication health: queue drops and revival
    /// catch-up counters. The default (all zeros) suits test sinks that
    /// never drop; the production replicator reports its real counters so
    /// the gateway can surface silent replication loss.
    fn health(&self) -> crate::metrics::ReplicationHealth {
        crate::metrics::ReplicationHealth::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::pipeline::EstimatorKind;
    use qcfe_db::env::EnvFingerprint;
    use qcfe_workloads::BenchmarkKind;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    fn key(fp: u64) -> ModelKey {
        ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::QcfeMscn,
            EnvFingerprint(fp),
        )
    }

    #[test]
    fn construction_rejects_malformed_sets() {
        assert_eq!(
            ReplicaSet::client_view(Vec::new()).unwrap_err(),
            ReplicaError::NoPeers
        );
        assert_eq!(
            ReplicaSet::new(peers(3), 3).unwrap_err(),
            ReplicaError::SelfOutOfRange { index: 3, peers: 3 }
        );
        assert!(matches!(
            ReplicaSet::client_view(peers(MAX_PEERS + 1)).unwrap_err(),
            ReplicaError::TooManyPeers(_)
        ));
        let mut dup = peers(3);
        dup.push(dup[0].clone());
        assert!(matches!(
            ReplicaSet::client_view(dup).unwrap_err(),
            ReplicaError::DuplicatePeer(_)
        ));
    }

    #[test]
    fn placement_is_deterministic_and_spreads_keys() {
        let set = ReplicaSet::new(peers(4), 0).unwrap();
        let mut owned = [0usize; 4];
        for fp in 0..400u64 {
            let owner = set.owner_index(&key(fp));
            assert_eq!(owner, set.owner_index(&key(fp)), "placement is stable");
            owned[owner] += 1;
        }
        for (index, count) in owned.iter().enumerate() {
            assert!(
                *count > 40,
                "peer {index} owns {count}/400 keys — placement is skewed: {owned:?}"
            );
        }
    }

    #[test]
    fn death_moves_only_the_dead_peers_keys() {
        let set = ReplicaSet::new(peers(5), 0).unwrap();
        let owners_before: Vec<usize> = (0..300).map(|fp| set.owner_index(&key(fp))).collect();
        assert!(set.mark_dead(2));
        assert!(!set.mark_dead(2), "second mark is a no-op");
        assert_eq!(set.alive_count(), 4);
        for (fp, before) in owners_before.iter().enumerate() {
            let after = set.owner_index(&key(fp as u64));
            if *before == 2 {
                assert_ne!(after, 2, "dead peer must not own keys");
            } else {
                assert_eq!(after, *before, "surviving placements must not move");
            }
        }
        assert!(set.mark_alive(2));
        for (fp, before) in owners_before.iter().enumerate() {
            assert_eq!(
                set.owner_index(&key(fp as u64)),
                *before,
                "revival restores"
            );
        }
    }

    #[test]
    fn all_dead_falls_back_to_full_set_placement() {
        let set = ReplicaSet::client_view(peers(3)).unwrap();
        let before = set.owner_index(&key(9));
        for i in 0..3 {
            set.mark_dead(i);
        }
        assert_eq!(set.alive_count(), 0);
        assert_eq!(set.owner_index(&key(9)), before, "total despite empty mask");
        assert!(!set.owns(&key(9)), "client views own nothing");
    }

    /// Satellite coverage: the reviving intermediate state. A reviving
    /// peer is excluded from owner selection exactly like a dead one,
    /// `mark_alive` cannot promote it early, and only `promote_revived`
    /// (or a cancelling `mark_dead`) moves it out of the state.
    #[test]
    fn reviving_peers_are_never_selected_until_promotion() {
        let set = ReplicaSet::new(peers(4), 0).unwrap();
        // Find a key owned by peer 2 so the exclusion is observable.
        let fp = (0..400u64)
            .find(|fp| set.owner_index(&key(*fp)) == 2)
            .expect("peer 2 owns something");

        // begin_revival on an alive peer is a no-op.
        assert!(!set.begin_revival(2), "alive peers need no catch-up");
        assert!(set.is_alive(2) && !set.is_reviving(2));

        // Dead → reviving: still routed around.
        assert!(set.mark_dead(2));
        assert!(set.begin_revival(2));
        assert!(!set.begin_revival(2), "revival is claimed once");
        assert!(set.is_reviving(2) && !set.is_alive(2));
        assert_eq!(set.reviving_count(), 1);
        assert_ne!(
            set.owner_index(&key(fp)),
            2,
            "a reviving peer must not be selected as owner"
        );

        // An incidental mark_alive (e.g. a successful ship) must not
        // promote a peer whose catch-up is still draining.
        assert!(!set.mark_alive(2));
        assert!(!set.is_alive(2) && set.is_reviving(2));
        assert_ne!(set.owner_index(&key(fp)), 2);

        // Promotion completes the transition and restores placement.
        assert!(set.promote_revived(2));
        assert!(!set.promote_revived(2), "promotion is one-shot");
        assert!(set.is_alive(2) && !set.is_reviving(2));
        assert_eq!(set.owner_index(&key(fp)), 2, "promotion restores the owner");
    }

    #[test]
    fn death_mid_revival_cancels_the_catch_up() {
        let set = ReplicaSet::new(peers(3), 0).unwrap();
        assert!(set.mark_dead(1));
        assert!(set.begin_revival(1));
        // The peer dies again mid-catch-up: both bits clear and the
        // pending promotion is void.
        assert!(set.mark_dead(1), "a reviving peer counts as marked");
        assert!(!set.is_reviving(1) && !set.is_alive(1));
        assert!(!set.promote_revived(1), "cancelled revivals cannot promote");
        assert!(!set.is_alive(1));
        // A fresh handshake can still run to completion afterwards.
        assert!(set.begin_revival(1));
        assert!(set.promote_revived(1));
        assert!(set.is_alive(1));
    }

    #[test]
    fn self_identity_and_address_lookup() {
        let set = ReplicaSet::new(peers(3), 1).unwrap();
        assert_eq!(set.self_index(), Some(1));
        assert_eq!(set.self_addr(), Some("127.0.0.1:9001"));
        assert_eq!(set.index_of("127.0.0.1:9002"), Some(2));
        assert_eq!(set.index_of("10.0.0.1:1"), None);
        let k = key(17);
        assert_eq!(set.owns(&k), set.owner_index(&k) == 1);
        assert_eq!(set.owner_addr(&k), &set.peers()[set.owner_index(&k)]);
    }
}

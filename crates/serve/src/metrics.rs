//! Service observability: throughput, latency percentiles, queue depth,
//! batch sizes and cache hit rate.
//!
//! All global counters are atomics so the hot path never takes a lock for
//! bookkeeping. Latencies land in a 40-bucket power-of-two histogram
//! (microsecond resolution; the top bucket, 2^39 µs, is ~6 days);
//! percentiles are read from the histogram with geometric-midpoint
//! interpolation, which is plenty for a serving dashboard.
//!
//! Per-tenant lanes ([`TenantLane`]) sit behind a small mutex keyed by
//! [`TenantId`]. The service records into them only when scheduling is
//! enabled (or a request names a non-anonymous tenant), so the legacy
//! single-tenant path keeps its lock-free bookkeeping.

use crate::sched::TenantId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of power-of-two latency buckets (public so cross-shard
/// aggregators can carry and merge raw histograms).
pub const BUCKETS: usize = 40;

/// Latency percentile (0–100) from a power-of-two bucket histogram, in
/// microseconds (geometric midpoint of the bucket holding the target
/// rank). The one percentile function of the crate: per-shard snapshots
/// and cross-shard merges both read through it, so a merged histogram
/// and a single-shard histogram with the same counts report the same
/// percentile.
pub fn percentile_from_buckets(counts: &[u64; BUCKETS], p: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        seen += c;
        if seen >= target {
            // geometric midpoint of bucket [2^i, 2^(i+1))
            return (1u64 << i) as f64 * std::f64::consts::SQRT_2;
        }
    }
    (1u64 << (BUCKETS - 1)) as f64
}

/// Live metrics of one [`crate::service::EstimationService`].
#[derive(Debug)]
pub struct ServiceMetrics {
    started_at: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    queue_depth: AtomicUsize,
    queue_high_water: AtomicU64,
    snapshot_swaps: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
    tenant_lanes: Mutex<HashMap<TenantId, TenantCounters>>,
}

/// Per-tenant scheduling counters (see [`TenantLane`] for the snapshot
/// view).
#[derive(Debug)]
struct TenantCounters {
    admitted: u64,
    shed_quota: u64,
    shed_deadline: u64,
    batches_formed: u64,
    wait_buckets: [u64; BUCKETS],
}

impl Default for TenantCounters {
    fn default() -> Self {
        TenantCounters {
            admitted: 0,
            shed_quota: 0,
            shed_deadline: 0,
            batches_formed: 0,
            wait_buckets: [0; BUCKETS],
        }
    }
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServiceMetrics {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicU64::new(0),
            snapshot_swaps: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            tenant_lanes: Mutex::new(HashMap::new()),
        }
    }

    fn with_lane(&self, tenant: TenantId, update: impl FnOnce(&mut TenantCounters)) {
        let mut lanes = self.tenant_lanes.lock().expect("tenant lanes poisoned");
        update(lanes.entry(tenant).or_default());
    }

    /// Record a request from `tenant` admitted past the scheduler.
    pub fn record_tenant_admit(&self, tenant: TenantId) {
        self.with_lane(tenant, |lane| lane.admitted += 1);
    }

    /// Record a request from `tenant` shed by admission control (queue
    /// capacity, token bucket or queue share).
    pub fn record_tenant_shed_quota(&self, tenant: TenantId) {
        self.with_lane(tenant, |lane| lane.shed_quota += 1);
    }

    /// Record a request from `tenant` shed for its deadline (exhausted at
    /// admission, or expired while queued).
    pub fn record_tenant_shed_deadline(&self, tenant: TenantId) {
        self.with_lane(tenant, |lane| lane.shed_deadline += 1);
    }

    /// Record that a drained micro-batch contained requests of `tenant`.
    pub fn record_tenant_batch(&self, tenant: TenantId) {
        self.with_lane(tenant, |lane| lane.batches_formed += 1);
    }

    /// Record the queue wait of one of `tenant`'s requests at drain time.
    pub fn record_tenant_wait(&self, tenant: TenantId, wait_us: f64) {
        let us = wait_us.max(0.0).round() as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.with_lane(tenant, |lane| lane.wait_buckets[bucket] += 1);
    }

    /// Record a request entering the queue.
    pub fn record_submit(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        self.queue_high_water
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    /// Record a request rejected at admission (queue full / closed).
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one drained micro-batch.
    pub fn record_batch(&self, batch_size: usize, queue_depth: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
    }

    /// Record one completed request with its end-to-end latency.
    pub fn record_completion(&self, latency_us: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency_us.max(0.0).round() as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a live snapshot swap (online refinement installing a refit
    /// snapshot into the running service).
    pub fn record_snapshot_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an encoding-cache lookup.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Latency percentile (0–100) from the histogram, in microseconds.
    fn percentile_us(&self, counts: &[u64; BUCKETS], p: f64) -> f64 {
        percentile_from_buckets(counts, p)
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.latency_buckets[i].load(Ordering::Relaxed));
        let completed = self.completed.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let elapsed_s = self.started_at.elapsed().as_secs_f64().max(1e-9);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            throughput_qps: completed as f64 / elapsed_s,
            mean_latency_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
            p50_latency_us: self.percentile_us(&counts, 50.0),
            p95_latency_us: self.percentile_us(&counts, 95.0),
            p99_latency_us: self.percentile_us(&counts, 99.0),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed) as usize,
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            max_batch_size: self.max_batch.load(Ordering::Relaxed) as usize,
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
            tenants: self.tenant_snapshot(),
        }
    }

    /// The per-tenant lanes, sorted by tenant id. Empty unless the
    /// service tracked at least one tenant (scheduling enabled, or a
    /// named tenant submitted).
    fn tenant_snapshot(&self) -> Vec<TenantLane> {
        let lanes = self.tenant_lanes.lock().expect("tenant lanes poisoned");
        let mut tenants: Vec<TenantLane> = lanes
            .iter()
            .map(|(&tenant, counters)| TenantLane {
                tenant,
                admitted: counters.admitted,
                shed_quota: counters.shed_quota,
                shed_deadline: counters.shed_deadline,
                batches_formed: counters.batches_formed,
                p50_wait_us: self.percentile_us(&counters.wait_buckets, 50.0).round() as u64,
                p95_wait_us: self.percentile_us(&counters.wait_buckets, 95.0).round() as u64,
                p99_wait_us: self.percentile_us(&counters.wait_buckets, 99.0).round() as u64,
                wait_buckets: counters.wait_buckets,
            })
            .collect();
        tenants.sort_by_key(|lane| lane.tenant);
        tenants
    }
}

/// Point-in-time scheduling counters of one tenant. Queue-wait
/// percentiles are histogram-interpolated and rounded to whole
/// microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantLane {
    /// The tenant the lane belongs to.
    pub tenant: TenantId,
    /// Requests admitted past the scheduler.
    pub admitted: u64,
    /// Requests shed by admission control (queue capacity, token bucket
    /// or queue share).
    pub shed_quota: u64,
    /// Requests shed for their deadline (exhausted at admission or
    /// expired while queued).
    pub shed_deadline: u64,
    /// Drained micro-batches containing at least one of the tenant's
    /// requests.
    pub batches_formed: u64,
    /// Median queue wait (µs).
    pub p50_wait_us: u64,
    /// 95th-percentile queue wait (µs).
    pub p95_wait_us: u64,
    /// 99th-percentile queue wait (µs).
    pub p99_wait_us: u64,
    /// The raw power-of-two queue-wait histogram behind the percentiles.
    /// Carried in the snapshot so cross-shard aggregation can sum
    /// histograms bucket-wise and recompute percentiles over the merged
    /// distribution — taking the max (or average) of per-shard
    /// percentiles is statistically wrong whenever shards see different
    /// latency regimes.
    pub wait_buckets: [u64; BUCKETS],
}

impl TenantLane {
    /// Fold another shard's lane for the same tenant into this one:
    /// counters sum, histograms sum bucket-wise, and the percentiles are
    /// recomputed from the merged histogram.
    pub fn merge_from(&mut self, other: &TenantLane) {
        debug_assert_eq!(self.tenant, other.tenant, "merging lanes across tenants");
        self.admitted += other.admitted;
        self.shed_quota += other.shed_quota;
        self.shed_deadline += other.shed_deadline;
        self.batches_formed += other.batches_formed;
        for (mine, theirs) in self.wait_buckets.iter_mut().zip(other.wait_buckets.iter()) {
            *mine += *theirs;
        }
        self.p50_wait_us = percentile_from_buckets(&self.wait_buckets, 50.0).round() as u64;
        self.p95_wait_us = percentile_from_buckets(&self.wait_buckets, 95.0).round() as u64;
        self.p99_wait_us = percentile_from_buckets(&self.wait_buckets, 99.0).round() as u64;
    }
}

/// Point-in-time replication health of one process, surfaced through
/// `GatewayStats` so an operator can see replication loss (silently
/// dropped ship events) and revival catch-up work at a glance. Filled by
/// the network layer's replicator; a process without replication reports
/// all zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationHealth {
    /// Ship events dropped before transmission — the bounded ship queue
    /// overflowed (or an event exceeded the wire cap). Every drop is
    /// replication loss an anti-entropy pass has to repair later, so a
    /// non-zero value is an operator signal to widen the queue or slow
    /// publication.
    pub ships_dropped: u64,
    /// Manifest replies received from revived peers (one per catch-up
    /// handshake round-trip).
    pub manifests_exchanged: u64,
    /// Divergent or missing keys re-shipped during revival catch-up.
    pub keys_reshipped: u64,
    /// Dead→alive transitions fully processed: the peer's manifest was
    /// diffed, divergent keys re-shipped, and the peer promoted back into
    /// the alive mask.
    pub revivals: u64,
}

/// A point-in-time view of [`ServiceMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Completed requests per second since service start.
    pub throughput_qps: f64,
    /// Mean end-to-end latency (µs).
    pub mean_latency_us: f64,
    /// Median end-to-end latency (µs, histogram-interpolated).
    pub p50_latency_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_latency_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: f64,
    /// Queue depth at the last event.
    pub queue_depth: usize,
    /// Maximum queue depth observed.
    pub queue_high_water: usize,
    /// Live snapshot swaps performed by online refinement.
    pub snapshot_swaps: u64,
    /// Mean requests per drained micro-batch.
    pub mean_batch_size: f64,
    /// Largest micro-batch drained.
    pub max_batch_size: usize,
    /// Encoding-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
    /// Per-tenant scheduling lanes, sorted by tenant id. Empty for a
    /// service that tracked no tenants (the legacy single-tenant case).
    pub tenants: Vec<TenantLane>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_into_snapshot() {
        let m = ServiceMetrics::new();
        m.record_submit(1);
        m.record_submit(2);
        m.record_submit(3);
        m.record_reject();
        m.record_batch(2, 1);
        m.record_cache(true);
        m.record_cache(false);
        m.record_completion(100.0);
        m.record_completion(200.0);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.queue_high_water, 3);
        assert_eq!(s.mean_batch_size, 2.0);
        assert_eq!(s.max_batch_size, 2);
        assert_eq!(s.cache_hit_rate, 0.5);
        assert_eq!(s.mean_latency_us, 150.0);
        assert!(s.throughput_qps > 0.0);
    }

    #[test]
    fn percentiles_bracket_recorded_latencies() {
        let m = ServiceMetrics::new();
        // 90 fast requests (~64us) and 10 slow ones (~8192us)
        for _ in 0..90 {
            m.record_completion(64.0);
        }
        for _ in 0..10 {
            m.record_completion(8192.0);
        }
        let s = m.snapshot();
        assert!(
            s.p50_latency_us >= 64.0 && s.p50_latency_us < 256.0,
            "p50 {}",
            s.p50_latency_us
        );
        assert!(s.p99_latency_us >= 8192.0, "p99 {}", s.p99_latency_us);
        assert!(s.p50_latency_us <= s.p95_latency_us);
        assert!(s.p95_latency_us <= s.p99_latency_us);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn tenant_lanes_aggregate_and_sort_by_id() {
        let m = ServiceMetrics::new();
        assert!(m.snapshot().tenants.is_empty(), "no lanes until recorded");
        m.record_tenant_admit(TenantId(2));
        m.record_tenant_admit(TenantId(2));
        m.record_tenant_shed_quota(TenantId(2));
        m.record_tenant_batch(TenantId(2));
        m.record_tenant_wait(TenantId(2), 100.0);
        m.record_tenant_wait(TenantId(2), 100.0);
        m.record_tenant_shed_deadline(TenantId(1));
        let s = m.snapshot();
        assert_eq!(s.tenants.len(), 2);
        assert_eq!(s.tenants[0].tenant, TenantId(1));
        assert_eq!(s.tenants[0].shed_deadline, 1);
        let lane = s.tenants[1];
        assert_eq!(lane.tenant, TenantId(2));
        assert_eq!(lane.admitted, 2);
        assert_eq!(lane.shed_quota, 1);
        assert_eq!(lane.batches_formed, 1);
        assert!(
            lane.p50_wait_us >= 64 && lane.p50_wait_us < 256,
            "p50 wait {} brackets the recorded 100us",
            lane.p50_wait_us
        );
        assert!(lane.p99_wait_us >= lane.p50_wait_us);
    }

    #[test]
    fn cross_shard_merge_sums_histograms_in_disjoint_regimes() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0x51ab);
        let tenant = TenantId(7);
        for case in 0..200 {
            // Two shards in disjoint latency regimes: one entirely fast
            // (µs-scale waits), one entirely slow (tens of ms).
            let fast = ServiceMetrics::new();
            let slow = ServiceMetrics::new();
            let n_fast = rng.gen_range(1..200usize);
            let n_slow = rng.gen_range(1..200usize);
            for _ in 0..n_fast {
                fast.record_tenant_admit(tenant);
                fast.record_tenant_wait(tenant, rng.gen_range(8.0..64.0));
            }
            for _ in 0..n_slow {
                slow.record_tenant_admit(tenant);
                slow.record_tenant_wait(tenant, rng.gen_range(65_536.0..1_048_576.0));
            }
            let fast_lane = fast.snapshot().tenants[0];
            let slow_lane = slow.snapshot().tenants[0];
            let mut merged = fast_lane;
            merged.merge_from(&slow_lane);

            // The merged percentiles must equal percentiles over the
            // bucket-wise pooled histogram — never the max (or average)
            // of per-shard percentiles.
            let mut pooled = [0u64; BUCKETS];
            for (i, bucket) in pooled.iter_mut().enumerate() {
                *bucket = fast_lane.wait_buckets[i] + slow_lane.wait_buckets[i];
            }
            assert_eq!(merged.wait_buckets, pooled, "case {case}");
            assert_eq!(merged.admitted, (n_fast + n_slow) as u64, "case {case}");
            for p in [50.0, 95.0, 99.0] {
                let want = percentile_from_buckets(&pooled, p).round() as u64;
                let got = match p as u64 {
                    50 => merged.p50_wait_us,
                    95 => merged.p95_wait_us,
                    _ => merged.p99_wait_us,
                };
                assert_eq!(got, want, "case {case} p{p}");
            }
            assert!(merged.p50_wait_us <= merged.p95_wait_us, "case {case}");
            assert!(merged.p95_wait_us <= merged.p99_wait_us, "case {case}");

            // The regression shape: a minority slow shard must not drag
            // the merged median into the slow regime, which is exactly
            // what a `.max()` merge of per-shard p50s did.
            if 2 * n_slow < n_fast {
                assert!(
                    merged.p50_wait_us < 1024,
                    "case {case}: median {}µs leaked into the slow regime \
                     (max-style merge would report {}µs)",
                    merged.p50_wait_us,
                    fast_lane.p50_wait_us.max(slow_lane.p50_wait_us)
                );
            }
        }
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let m = ServiceMetrics::new();
        m.record_completion(0.0);
        m.record_completion(0.4);
        let s = m.snapshot();
        assert_eq!(s.completed, 2);
        assert!(s.p50_latency_us <= 2.0);
    }
}

//! Service observability: throughput, latency percentiles, queue depth,
//! batch sizes and cache hit rate.
//!
//! All counters are atomics so the hot path never takes a lock for
//! bookkeeping. Latencies land in a 40-bucket power-of-two histogram
//! (microsecond resolution; the top bucket, 2^39 µs, is ~6 days);
//! percentiles are read from the histogram with geometric-midpoint
//! interpolation, which is plenty for a serving dashboard.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Number of power-of-two latency buckets.
const BUCKETS: usize = 40;

/// Live metrics of one [`crate::service::EstimationService`].
#[derive(Debug)]
pub struct ServiceMetrics {
    started_at: Instant,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    max_batch: AtomicU64,
    queue_depth: AtomicUsize,
    queue_high_water: AtomicU64,
    snapshot_swaps: AtomicU64,
    latency_sum_us: AtomicU64,
    latency_buckets: [AtomicU64; BUCKETS],
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        ServiceMetrics {
            started_at: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_high_water: AtomicU64::new(0),
            snapshot_swaps: AtomicU64::new(0),
            latency_sum_us: AtomicU64::new(0),
            latency_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record a request entering the queue.
    pub fn record_submit(&self, queue_depth: usize) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
        self.queue_high_water
            .fetch_max(queue_depth as u64, Ordering::Relaxed);
    }

    /// Record a request rejected at admission (queue full / closed).
    pub fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one drained micro-batch.
    pub fn record_batch(&self, batch_size: usize, queue_depth: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(batch_size as u64, Ordering::Relaxed);
        self.max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);
        self.queue_depth.store(queue_depth, Ordering::Relaxed);
    }

    /// Record one completed request with its end-to-end latency.
    pub fn record_completion(&self, latency_us: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let us = latency_us.max(0.0).round() as u64;
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a live snapshot swap (online refinement installing a refit
    /// snapshot into the running service).
    pub fn record_snapshot_swap(&self) {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an encoding-cache lookup.
    pub fn record_cache(&self, hit: bool) {
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Latency percentile (0–100) from the histogram, in microseconds.
    fn percentile_us(&self, counts: &[u64; BUCKETS], p: f64) -> f64 {
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = (p / 100.0 * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // geometric midpoint of bucket [2^i, 2^(i+1))
                return (1u64 << i) as f64 * std::f64::consts::SQRT_2;
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }

    /// A consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| self.latency_buckets[i].load(Ordering::Relaxed));
        let completed = self.completed.load(Ordering::Relaxed);
        let cache_hits = self.cache_hits.load(Ordering::Relaxed);
        let cache_misses = self.cache_misses.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_requests = self.batched_requests.load(Ordering::Relaxed);
        let elapsed_s = self.started_at.elapsed().as_secs_f64().max(1e-9);
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            rejected: self.rejected.load(Ordering::Relaxed),
            throughput_qps: completed as f64 / elapsed_s,
            mean_latency_us: if completed == 0 {
                0.0
            } else {
                self.latency_sum_us.load(Ordering::Relaxed) as f64 / completed as f64
            },
            p50_latency_us: self.percentile_us(&counts, 50.0),
            p95_latency_us: self.percentile_us(&counts, 95.0),
            p99_latency_us: self.percentile_us(&counts, 99.0),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed) as usize,
            snapshot_swaps: self.snapshot_swaps.load(Ordering::Relaxed),
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_requests as f64 / batches as f64
            },
            max_batch_size: self.max_batch.load(Ordering::Relaxed) as usize,
            cache_hit_rate: if cache_hits + cache_misses == 0 {
                0.0
            } else {
                cache_hits as f64 / (cache_hits + cache_misses) as f64
            },
        }
    }
}

/// A point-in-time view of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Requests rejected at admission.
    pub rejected: u64,
    /// Completed requests per second since service start.
    pub throughput_qps: f64,
    /// Mean end-to-end latency (µs).
    pub mean_latency_us: f64,
    /// Median end-to-end latency (µs, histogram-interpolated).
    pub p50_latency_us: f64,
    /// 95th-percentile latency (µs).
    pub p95_latency_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: f64,
    /// Queue depth at the last event.
    pub queue_depth: usize,
    /// Maximum queue depth observed.
    pub queue_high_water: usize,
    /// Live snapshot swaps performed by online refinement.
    pub snapshot_swaps: u64,
    /// Mean requests per drained micro-batch.
    pub mean_batch_size: f64,
    /// Largest micro-batch drained.
    pub max_batch_size: usize,
    /// Encoding-cache hit rate in `[0, 1]`.
    pub cache_hit_rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_into_snapshot() {
        let m = ServiceMetrics::new();
        m.record_submit(1);
        m.record_submit(2);
        m.record_submit(3);
        m.record_reject();
        m.record_batch(2, 1);
        m.record_cache(true);
        m.record_cache(false);
        m.record_completion(100.0);
        m.record_completion(200.0);
        let s = m.snapshot();
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.queue_high_water, 3);
        assert_eq!(s.mean_batch_size, 2.0);
        assert_eq!(s.max_batch_size, 2);
        assert_eq!(s.cache_hit_rate, 0.5);
        assert_eq!(s.mean_latency_us, 150.0);
        assert!(s.throughput_qps > 0.0);
    }

    #[test]
    fn percentiles_bracket_recorded_latencies() {
        let m = ServiceMetrics::new();
        // 90 fast requests (~64us) and 10 slow ones (~8192us)
        for _ in 0..90 {
            m.record_completion(64.0);
        }
        for _ in 0..10 {
            m.record_completion(8192.0);
        }
        let s = m.snapshot();
        assert!(
            s.p50_latency_us >= 64.0 && s.p50_latency_us < 256.0,
            "p50 {}",
            s.p50_latency_us
        );
        assert!(s.p99_latency_us >= 8192.0, "p99 {}", s.p99_latency_us);
        assert!(s.p50_latency_us <= s.p95_latency_us);
        assert!(s.p95_latency_us <= s.p99_latency_us);
    }

    #[test]
    fn empty_metrics_snapshot_is_all_zero() {
        let s = ServiceMetrics::new().snapshot();
        assert_eq!(s.completed, 0);
        assert_eq!(s.mean_latency_us, 0.0);
        assert_eq!(s.p50_latency_us, 0.0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert_eq!(s.mean_batch_size, 0.0);
    }

    #[test]
    fn sub_microsecond_latencies_land_in_the_first_bucket() {
        let m = ServiceMetrics::new();
        m.record_completion(0.0);
        m.record_completion(0.4);
        let s = m.snapshot();
        assert_eq!(s.completed, 2);
        assert!(s.p50_latency_us <= 2.0);
    }
}

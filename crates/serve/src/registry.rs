//! The model registry: trained estimators behind `Arc<dyn CostModel>`,
//! keyed by `(benchmark, estimator, environment fingerprint)`.
//!
//! A long-lived estimation node trains (or receives) one model per serving
//! key and looks it up on every request. The registry bounds resident
//! models with LRU eviction — a node serving many environments keeps only
//! the hot ones in memory and refits or reloads cold ones on demand.

use crate::lru::LruCache;
use qcfe_core::cost_model::CostModel;
use qcfe_core::pipeline::EstimatorKind;
use qcfe_db::env::EnvFingerprint;
use qcfe_workloads::BenchmarkKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The serving key of one trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The benchmark/schema the model was trained on.
    pub benchmark: BenchmarkKind,
    /// The estimator family.
    pub estimator: EstimatorKind,
    /// The environment fingerprint the training labels came from.
    pub fingerprint: EnvFingerprint,
}

impl ModelKey {
    /// Convenience constructor.
    pub fn new(
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Self {
        ModelKey {
            benchmark,
            estimator,
            fingerprint,
        }
    }
}

/// Registry statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Models evicted by the LRU policy.
    pub evictions: u64,
    /// Currently resident models.
    pub resident: usize,
}

/// An entry evicted from the registry: the serving key and its model.
pub type EvictedModel = (ModelKey, Arc<dyn CostModel>);

/// A bounded, thread-safe registry of trained cost models.
pub struct ModelRegistry {
    inner: Mutex<LruCache<ModelKey, Arc<dyn CostModel>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ModelRegistry")
            .field("resident", &stats.resident)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .finish()
    }
}

impl ModelRegistry {
    /// Create a registry holding at most `capacity` models.
    pub fn new(capacity: usize) -> Self {
        ModelRegistry {
            inner: Mutex::new(LruCache::new(capacity)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Register (or replace) a model; returns the evicted entry if the
    /// insert pushed the registry over capacity.
    pub fn insert(&self, key: ModelKey, model: Arc<dyn CostModel>) -> Option<EvictedModel> {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .insert(key, model)
    }

    /// Look up a model, marking it most recently used.
    pub fn get(&self, key: &ModelKey) -> Option<Arc<dyn CostModel>> {
        let found = self
            .inner
            .lock()
            .expect("registry mutex poisoned")
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look up without touching recency or hit counters.
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .contains(key)
    }

    /// Remove a model.
    pub fn remove(&self, key: &ModelKey) -> Option<Arc<dyn CostModel>> {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .remove(key)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry mutex poisoned").len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup/eviction statistics.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.evictions(),
            resident: inner.len(),
        }
    }

    /// Register `model` only if `key` is not already resident, atomically.
    ///
    /// Returns the model now resident under the key — the existing one on
    /// a lost race (first registration wins), else `model` — together with
    /// the entry the insert evicted, if it happened and pushed the
    /// registry over capacity. This is the primitive behind the gateway's
    /// provider path: concurrent cold-starters converge on one instance
    /// instead of overwriting each other.
    pub fn insert_if_absent(
        &self,
        key: ModelKey,
        model: Arc<dyn CostModel>,
    ) -> (Arc<dyn CostModel>, Option<EvictedModel>) {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(existing) = inner.get(&key) {
            return (Arc::clone(existing), None);
        }
        let evicted = inner.insert(key, Arc::clone(&model));
        (model, evicted)
    }

    /// Look up a model or build, register and return it.
    ///
    /// The build runs outside the registry lock (training can take minutes
    /// and must not block lookups), so concurrent callers racing on a cold
    /// key may each run `build` — but the re-check under the lock makes the
    /// first registration win and every caller converge on that single
    /// resident instance; losers' builds are dropped.
    pub fn get_or_insert_with<F>(&self, key: ModelKey, build: F) -> Arc<dyn CostModel>
    where
        F: FnOnce() -> Arc<dyn CostModel>,
    {
        if let Some(model) = self.get(&key) {
            return model;
        }
        let model = build();
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(existing) = inner.get(&key) {
            return Arc::clone(existing);
        }
        inner.insert(key, Arc::clone(&model));
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::estimators::PgEstimator;
    use qcfe_db::DbEnvironment;

    fn key(tag: u64) -> ModelKey {
        let mut env = DbEnvironment::reference();
        env.knobs.work_mem_kb = 1024 + tag;
        ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Pgsql,
            env.fingerprint(),
        )
    }

    fn pg_model() -> Arc<dyn CostModel> {
        Arc::new(PgEstimator)
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let registry = ModelRegistry::new(4);
        assert!(registry.is_empty());
        assert!(registry.get(&key(1)).is_none());
        registry.insert(key(1), pg_model());
        assert!(registry.get(&key(1)).is_some());
        assert!(registry.contains(&key(1)));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn capacity_overflow_evicts_least_recently_used() {
        let registry = ModelRegistry::new(2);
        registry.insert(key(1), pg_model());
        registry.insert(key(2), pg_model());
        // touch key(1) so key(2) is the LRU victim
        assert!(registry.get(&key(1)).is_some());
        let evicted = registry.insert(key(3), pg_model());
        assert_eq!(evicted.map(|(k, _)| k), Some(key(2)));
        assert_eq!(registry.len(), 2);
        assert!(registry.contains(&key(1)) && registry.contains(&key(3)));
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn get_or_insert_builds_once() {
        let registry = ModelRegistry::new(2);
        let mut builds = 0;
        for _ in 0..3 {
            registry.get_or_insert_with(key(7), || {
                builds += 1;
                pg_model()
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn racing_get_or_insert_converges_on_one_instance() {
        let registry = std::sync::Arc::new(ModelRegistry::new(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let registry = std::sync::Arc::clone(&registry);
                std::thread::spawn(move || registry.get_or_insert_with(key(3), pg_model))
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let resident = registry.get(&key(3)).expect("registered");
        for model in &models {
            assert!(
                Arc::ptr_eq(model, &resident),
                "every racer must converge on the resident instance"
            );
        }
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn insert_if_absent_first_registration_wins_and_reports_evictions() {
        let registry = ModelRegistry::new(2);
        let first = pg_model();
        let (resident, evicted) = registry.insert_if_absent(key(1), Arc::clone(&first));
        assert!(Arc::ptr_eq(&resident, &first));
        assert!(evicted.is_none());
        // A later insert for the same key yields the resident instance.
        let (resident, evicted) = registry.insert_if_absent(key(1), pg_model());
        assert!(Arc::ptr_eq(&resident, &first), "existing instance wins");
        assert!(evicted.is_none());
        assert_eq!(registry.len(), 1);
        // Over-capacity inserts still report their victim.
        registry.insert_if_absent(key(2), pg_model());
        let (_, evicted) = registry.insert_if_absent(key(3), pg_model());
        assert!(evicted.is_some());
        assert_eq!(registry.len(), 2);
    }

    /// Satellite acceptance: 8 threads hammering a capacity-2 registry via
    /// `get_or_insert_with` — every thread on its own key, so eviction
    /// pressure is constant — must build each key's model at most once, and
    /// the registry must stay within capacity with a consistent eviction
    /// count.
    #[test]
    fn concurrent_get_or_insert_under_eviction_pressure_builds_each_key_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let registry = std::sync::Arc::new(ModelRegistry::new(2));
        let builds: std::sync::Arc<Vec<AtomicUsize>> =
            std::sync::Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let registry = std::sync::Arc::clone(&registry);
                let builds = std::sync::Arc::clone(&builds);
                std::thread::spawn(move || {
                    // Each thread resolves its key several times; after the
                    // first resolution the key may have been evicted by the
                    // other threads' inserts, in which case a rebuild is
                    // *correct* — the "at most once" contract applies per
                    // uninterrupted residency, which single-threaded keys
                    // with a live local Arc observe as exactly once below.
                    let model = registry.get_or_insert_with(key(i), || {
                        builds[i as usize].fetch_add(1, Ordering::Relaxed);
                        pg_model()
                    });
                    for _ in 0..50 {
                        let again = registry.get_or_insert_with(key(i), || {
                            builds[i as usize].fetch_add(1, Ordering::Relaxed);
                            pg_model()
                        });
                        // Whether freshly rebuilt after an eviction or
                        // resident, the registry must hand back a usable
                        // model every time.
                        assert!(std::sync::Arc::strong_count(&again) >= 1);
                    }
                    drop(model);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Capacity bound held under the race.
        assert!(registry.len() <= 2);
        let stats = registry.stats();
        assert!(stats.resident <= 2);
        // 8 distinct keys through a 2-slot registry must have evicted.
        assert!(stats.evictions >= 6, "evictions {}", stats.evictions);
        // No key was built redundantly while resident: each thread re-ran
        // `get_or_insert_with` 50 times, yet total builds stay bounded by
        // the eviction count (every build beyond the first for a key
        // requires a prior eviction of that key).
        let total_builds: usize = builds.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert!(total_builds >= 8, "every key built at least once");
        assert!(
            (total_builds as u64) <= 8 + stats.evictions,
            "{total_builds} builds vs {} evictions: a key was rebuilt while resident",
            stats.evictions
        );
    }

    /// The strict single-build guarantee: 8 threads racing `get_or_insert_with`
    /// on *distinct* keys in a registry large enough to hold them all — each
    /// key must be built exactly once even though eviction-pressure siblings
    /// (above) run concurrently elsewhere.
    #[test]
    fn concurrent_distinct_keys_within_capacity_build_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let registry = std::sync::Arc::new(ModelRegistry::new(8));
        let builds: std::sync::Arc<Vec<AtomicUsize>> =
            std::sync::Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let registry = std::sync::Arc::clone(&registry);
                let builds = std::sync::Arc::clone(&builds);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        registry.get_or_insert_with(key(i), || {
                            builds[i as usize].fetch_add(1, Ordering::Relaxed);
                            pg_model()
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, b) in builds.iter().enumerate() {
            assert_eq!(b.load(Ordering::Relaxed), 1, "key {i} built more than once");
        }
        assert_eq!(registry.len(), 8);
        assert_eq!(registry.stats().evictions, 0);
    }

    #[test]
    fn keys_distinguish_every_dimension() {
        let fp = DbEnvironment::reference().fingerprint();
        let base = ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::Mscn, fp);
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Sysbench, EstimatorKind::Mscn, fp)
        );
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::QcfeMscn, fp)
        );
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::Mscn, key(9).fingerprint)
        );
    }
}

//! The model registry: trained estimators behind `Arc<dyn CostModel>`,
//! keyed by `(benchmark, estimator, environment fingerprint)`.
//!
//! A long-lived estimation node trains (or receives) one model per serving
//! key and looks it up on every request. The registry bounds resident
//! models with LRU eviction — a node serving many environments keeps only
//! the hot ones in memory and refits or reloads cold ones on demand.
//!
//! With a [`ModelLoader`] installed ([`ModelRegistry::set_loader`] — the
//! gateway wires one backed by the snapshot store's `QCFW` weight
//! sidecars), a miss consults the loader *before* any rebuild
//! (load-before-rebuild): an evicted or never-resident model comes back
//! from disk bit-identical instead of being retrained. Loads run outside
//! the registry lock and racing reloaders converge on one resident
//! instance through [`ModelRegistry::insert_if_absent`].

use crate::lru::LruCache;
use qcfe_core::cost_model::CostModel;
use qcfe_core::pipeline::EstimatorKind;
use qcfe_db::env::EnvFingerprint;
use qcfe_workloads::BenchmarkKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The serving key of one trained model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// The benchmark/schema the model was trained on.
    pub benchmark: BenchmarkKind,
    /// The estimator family.
    pub estimator: EstimatorKind,
    /// The environment fingerprint the training labels came from.
    pub fingerprint: EnvFingerprint,
}

impl ModelKey {
    /// Convenience constructor.
    pub fn new(
        benchmark: BenchmarkKind,
        estimator: EstimatorKind,
        fingerprint: EnvFingerprint,
    ) -> Self {
        ModelKey {
            benchmark,
            estimator,
            fingerprint,
        }
    }
}

/// Registry statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Models evicted by the LRU policy.
    pub evictions: u64,
    /// Models brought back by the installed [`ModelLoader`] (disk reloads).
    pub loads: u64,
    /// Currently resident models.
    pub resident: usize,
}

/// An entry evicted from the registry: the serving key and its model.
pub type EvictedModel = (ModelKey, Arc<dyn CostModel>);

/// A fallback invoked on registry misses before any rebuild — typically a
/// closure around [`crate::store::SnapshotStore::load_model`]. Returning
/// `None` means nothing is persisted (or the file is unreadable) and the
/// caller may fall through to training.
pub type ModelLoader = dyn Fn(&ModelKey) -> Option<Arc<dyn CostModel>> + Send + Sync;

/// How a [`ModelRegistry::get_or_load`] request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelSource {
    /// The model was already resident in the registry.
    Resident,
    /// This call performed the disk load through the installed
    /// [`ModelLoader`] (the model was evicted earlier, or this process
    /// never trained it) and its registration won.
    Reloaded,
}

/// Outcome of a [`ModelRegistry::get_or_load`] resolution.
pub struct ResolvedModel {
    /// The model now resident under the key.
    pub model: Arc<dyn CostModel>,
    /// Whether this call performed the disk load or found a resident.
    pub source: ModelSource,
    /// Whether the resident model's weights came from the disk loader.
    /// The mark is maintained under the same lock as the cache itself, so
    /// it always describes the returned model: set when a disk load wins
    /// registration, sticky while the entry stays resident, and cleared by
    /// any in-process insert for the key.
    pub from_disk: bool,
    /// Entry evicted by a reload's registration, if any, so callers
    /// tracking evictions observe the same signal as on the insert paths.
    pub evicted: Option<EvictedModel>,
}

/// Interior state guarded by one lock: the LRU cache plus the disk-load
/// provenance marks. One mutex for both makes the marks atomic with every
/// cache mutation — no interleaving can tag an in-process-registered model
/// as disk-loaded.
struct RegistryInner {
    cache: LruCache<ModelKey, Arc<dyn CostModel>>,
    disk_loaded: std::collections::HashSet<ModelKey>,
}

impl RegistryInner {
    /// Insert plus mark bookkeeping: the key's mark becomes `from_disk`
    /// and an evicted key loses its mark (it is no longer resident).
    fn insert_marked(
        &mut self,
        key: ModelKey,
        model: Arc<dyn CostModel>,
        from_disk: bool,
    ) -> Option<EvictedModel> {
        if from_disk {
            self.disk_loaded.insert(key);
        } else {
            self.disk_loaded.remove(&key);
        }
        let evicted = self.cache.insert(key, model);
        if let Some((evicted_key, _)) = &evicted {
            if *evicted_key != key {
                self.disk_loaded.remove(evicted_key);
            }
        }
        evicted
    }
}

/// A bounded, thread-safe registry of trained cost models.
pub struct ModelRegistry {
    inner: Mutex<RegistryInner>,
    hits: AtomicU64,
    misses: AtomicU64,
    loads: AtomicU64,
    loader: Option<Arc<ModelLoader>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ModelRegistry")
            .field("resident", &stats.resident)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("evictions", &stats.evictions)
            .field("loads", &stats.loads)
            .finish()
    }
}

impl ModelRegistry {
    /// Create a registry holding at most `capacity` models (no loader).
    pub fn new(capacity: usize) -> Self {
        ModelRegistry {
            inner: Mutex::new(RegistryInner {
                cache: LruCache::new(capacity),
                disk_loaded: std::collections::HashSet::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            loader: None,
        }
    }

    /// Install (or replace) the miss-time loader. The gateway builder wires
    /// one backed by the store's `QCFW` weight sidecars, making the
    /// registry lazily reload evicted models from disk.
    pub fn set_loader<F>(&mut self, loader: F)
    where
        F: Fn(&ModelKey) -> Option<Arc<dyn CostModel>> + Send + Sync + 'static,
    {
        self.loader = Some(Arc::new(loader));
    }

    /// Look up a model, consulting the installed [`ModelLoader`] on a miss
    /// before giving up. The load runs *outside* the registry lock (it is
    /// disk I/O plus deserialization) and registers with
    /// first-registration-wins semantics, so concurrent reloaders of the
    /// same key converge on a single resident instance — while a key stays
    /// resident it is never reloaded again. A reloader that loses its
    /// registration race reports [`ModelSource::Resident`] with the
    /// winner's `from_disk` mark, never its own.
    pub fn get_or_load(&self, key: &ModelKey) -> Option<ResolvedModel> {
        {
            let mut inner = self.inner.lock().expect("registry mutex poisoned");
            if let Some(model) = inner.cache.get(key) {
                let model = Arc::clone(model);
                let from_disk = inner.disk_loaded.contains(key);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Some(ResolvedModel {
                    model,
                    source: ModelSource::Resident,
                    from_disk,
                    evicted: None,
                });
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let loader = self.loader.as_ref()?;
        let loaded = loader(key)?;
        self.loads.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(existing) = inner.cache.get(key) {
            // Lost the race: the resident entry — and its mark, which may
            // have been cleared by a concurrent in-process registration —
            // wins over our load.
            let model = Arc::clone(existing);
            let from_disk = inner.disk_loaded.contains(key);
            return Some(ResolvedModel {
                model,
                source: ModelSource::Resident,
                from_disk,
                evicted: None,
            });
        }
        let evicted = inner.insert_marked(*key, Arc::clone(&loaded), true);
        Some(ResolvedModel {
            model: loaded,
            source: ModelSource::Reloaded,
            from_disk: true,
            evicted,
        })
    }

    /// Whether the key's resident model was brought in by the disk loader.
    /// `false` for absent keys.
    pub fn is_disk_loaded(&self, key: &ModelKey) -> bool {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .disk_loaded
            .contains(key)
    }

    /// Register (or replace) a model; returns the evicted entry if the
    /// insert pushed the registry over capacity. An in-process insert
    /// clears any disk-load mark the key carried.
    pub fn insert(&self, key: ModelKey, model: Arc<dyn CostModel>) -> Option<EvictedModel> {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .insert_marked(key, model, false)
    }

    /// Look up a model, marking it most recently used.
    pub fn get(&self, key: &ModelKey) -> Option<Arc<dyn CostModel>> {
        let found = self
            .inner
            .lock()
            .expect("registry mutex poisoned")
            .cache
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Look up without touching recency or hit counters.
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .cache
            .contains(key)
    }

    /// Remove a model (and its disk-load mark).
    pub fn remove(&self, key: &ModelKey) -> Option<Arc<dyn CostModel>> {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        inner.disk_loaded.remove(key);
        inner.cache.remove(key)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("registry mutex poisoned")
            .cache
            .len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup/eviction statistics.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.inner.lock().expect("registry mutex poisoned");
        RegistryStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: inner.cache.evictions(),
            loads: self.loads.load(Ordering::Relaxed),
            resident: inner.cache.len(),
        }
    }

    /// Register `model` only if `key` is not already resident, atomically.
    ///
    /// Returns the model now resident under the key — the existing one on
    /// a lost race (first registration wins), else `model` — together with
    /// the entry the insert evicted, if it happened and pushed the
    /// registry over capacity. This is the primitive behind the gateway's
    /// provider path: concurrent cold-starters converge on one instance
    /// instead of overwriting each other.
    pub fn insert_if_absent(
        &self,
        key: ModelKey,
        model: Arc<dyn CostModel>,
    ) -> (Arc<dyn CostModel>, Option<EvictedModel>) {
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(existing) = inner.cache.get(&key) {
            return (Arc::clone(existing), None);
        }
        let evicted = inner.insert_marked(key, Arc::clone(&model), false);
        (model, evicted)
    }

    /// Look up a model or build, register and return it — consulting the
    /// installed [`ModelLoader`] *before* the rebuild (load-before-rebuild:
    /// persisted weights always beat retraining).
    ///
    /// The load/build runs outside the registry lock (training can take
    /// minutes and must not block lookups), so concurrent callers racing on
    /// a cold key may each run `build` — but the re-check under the lock
    /// makes the first registration win and every caller converge on that
    /// single resident instance; losers' builds are dropped.
    pub fn get_or_insert_with<F>(&self, key: ModelKey, build: F) -> Arc<dyn CostModel>
    where
        F: FnOnce() -> Arc<dyn CostModel>,
    {
        if let Some(resolved) = self.get_or_load(&key) {
            return resolved.model;
        }
        let model = build();
        let mut inner = self.inner.lock().expect("registry mutex poisoned");
        if let Some(existing) = inner.cache.get(&key) {
            return Arc::clone(existing);
        }
        inner.insert_marked(key, Arc::clone(&model), false);
        model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcfe_core::estimators::PgEstimator;
    use qcfe_db::DbEnvironment;

    fn key(tag: u64) -> ModelKey {
        let mut env = DbEnvironment::reference();
        env.knobs.work_mem_kb = 1024 + tag;
        ModelKey::new(
            BenchmarkKind::Sysbench,
            EstimatorKind::Pgsql,
            env.fingerprint(),
        )
    }

    fn pg_model() -> Arc<dyn CostModel> {
        Arc::new(PgEstimator)
    }

    #[test]
    fn lookup_hits_and_misses_are_counted() {
        let registry = ModelRegistry::new(4);
        assert!(registry.is_empty());
        assert!(registry.get(&key(1)).is_none());
        registry.insert(key(1), pg_model());
        assert!(registry.get(&key(1)).is_some());
        assert!(registry.contains(&key(1)));
        let stats = registry.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn capacity_overflow_evicts_least_recently_used() {
        let registry = ModelRegistry::new(2);
        registry.insert(key(1), pg_model());
        registry.insert(key(2), pg_model());
        // touch key(1) so key(2) is the LRU victim
        assert!(registry.get(&key(1)).is_some());
        let evicted = registry.insert(key(3), pg_model());
        assert_eq!(evicted.map(|(k, _)| k), Some(key(2)));
        assert_eq!(registry.len(), 2);
        assert!(registry.contains(&key(1)) && registry.contains(&key(3)));
        assert_eq!(registry.stats().evictions, 1);
    }

    #[test]
    fn get_or_insert_builds_once() {
        let registry = ModelRegistry::new(2);
        let mut builds = 0;
        for _ in 0..3 {
            registry.get_or_insert_with(key(7), || {
                builds += 1;
                pg_model()
            });
        }
        assert_eq!(builds, 1);
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn racing_get_or_insert_converges_on_one_instance() {
        let registry = std::sync::Arc::new(ModelRegistry::new(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let registry = std::sync::Arc::clone(&registry);
                std::thread::spawn(move || registry.get_or_insert_with(key(3), pg_model))
            })
            .collect();
        let models: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let resident = registry.get(&key(3)).expect("registered");
        for model in &models {
            assert!(
                Arc::ptr_eq(model, &resident),
                "every racer must converge on the resident instance"
            );
        }
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn insert_if_absent_first_registration_wins_and_reports_evictions() {
        let registry = ModelRegistry::new(2);
        let first = pg_model();
        let (resident, evicted) = registry.insert_if_absent(key(1), Arc::clone(&first));
        assert!(Arc::ptr_eq(&resident, &first));
        assert!(evicted.is_none());
        // A later insert for the same key yields the resident instance.
        let (resident, evicted) = registry.insert_if_absent(key(1), pg_model());
        assert!(Arc::ptr_eq(&resident, &first), "existing instance wins");
        assert!(evicted.is_none());
        assert_eq!(registry.len(), 1);
        // Over-capacity inserts still report their victim.
        registry.insert_if_absent(key(2), pg_model());
        let (_, evicted) = registry.insert_if_absent(key(3), pg_model());
        assert!(evicted.is_some());
        assert_eq!(registry.len(), 2);
    }

    /// Satellite acceptance: 8 threads hammering a capacity-2 registry via
    /// `get_or_insert_with` — every thread on its own key, so eviction
    /// pressure is constant — must build each key's model at most once, and
    /// the registry must stay within capacity with a consistent eviction
    /// count.
    #[test]
    fn concurrent_get_or_insert_under_eviction_pressure_builds_each_key_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let registry = std::sync::Arc::new(ModelRegistry::new(2));
        let builds: std::sync::Arc<Vec<AtomicUsize>> =
            std::sync::Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let registry = std::sync::Arc::clone(&registry);
                let builds = std::sync::Arc::clone(&builds);
                std::thread::spawn(move || {
                    // Each thread resolves its key several times; after the
                    // first resolution the key may have been evicted by the
                    // other threads' inserts, in which case a rebuild is
                    // *correct* — the "at most once" contract applies per
                    // uninterrupted residency, which single-threaded keys
                    // with a live local Arc observe as exactly once below.
                    let model = registry.get_or_insert_with(key(i), || {
                        builds[i as usize].fetch_add(1, Ordering::Relaxed);
                        pg_model()
                    });
                    for _ in 0..50 {
                        let again = registry.get_or_insert_with(key(i), || {
                            builds[i as usize].fetch_add(1, Ordering::Relaxed);
                            pg_model()
                        });
                        // Whether freshly rebuilt after an eviction or
                        // resident, the registry must hand back a usable
                        // model every time.
                        assert!(std::sync::Arc::strong_count(&again) >= 1);
                    }
                    drop(model);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Capacity bound held under the race.
        assert!(registry.len() <= 2);
        let stats = registry.stats();
        assert!(stats.resident <= 2);
        // 8 distinct keys through a 2-slot registry must have evicted.
        assert!(stats.evictions >= 6, "evictions {}", stats.evictions);
        // No key was built redundantly while resident: each thread re-ran
        // `get_or_insert_with` 50 times, yet total builds stay bounded by
        // the eviction count (every build beyond the first for a key
        // requires a prior eviction of that key).
        let total_builds: usize = builds.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert!(total_builds >= 8, "every key built at least once");
        assert!(
            (total_builds as u64) <= 8 + stats.evictions,
            "{total_builds} builds vs {} evictions: a key was rebuilt while resident",
            stats.evictions
        );
    }

    /// The strict single-build guarantee: 8 threads racing `get_or_insert_with`
    /// on *distinct* keys in a registry large enough to hold them all — each
    /// key must be built exactly once even though eviction-pressure siblings
    /// (above) run concurrently elsewhere.
    #[test]
    fn concurrent_distinct_keys_within_capacity_build_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let registry = std::sync::Arc::new(ModelRegistry::new(8));
        let builds: std::sync::Arc<Vec<AtomicUsize>> =
            std::sync::Arc::new((0..8).map(|_| AtomicUsize::new(0)).collect());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let registry = std::sync::Arc::clone(&registry);
                let builds = std::sync::Arc::clone(&builds);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        registry.get_or_insert_with(key(i), || {
                            builds[i as usize].fetch_add(1, Ordering::Relaxed);
                            pg_model()
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, b) in builds.iter().enumerate() {
            assert_eq!(b.load(Ordering::Relaxed), 1, "key {i} built more than once");
        }
        assert_eq!(registry.len(), 8);
        assert_eq!(registry.stats().evictions, 0);
    }

    /// Load-before-rebuild: with a loader installed, a miss reloads instead
    /// of building, residency suppresses further loads, and eviction makes
    /// the key reloadable again.
    #[test]
    fn loader_is_consulted_before_rebuild_and_only_while_absent() {
        use std::sync::atomic::AtomicUsize;
        let loads = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&loads);
        let mut registry = ModelRegistry::new(2);
        registry.set_loader(move |k: &ModelKey| {
            counter.fetch_add(1, Ordering::Relaxed);
            // Only key(1) is "persisted".
            (*k == key(1)).then(pg_model)
        });

        // Persisted key: loaded, never built.
        let model = registry.get_or_insert_with(key(1), || panic!("must load, not rebuild"));
        assert!(Arc::strong_count(&model) >= 1);
        assert_eq!(loads.load(Ordering::Relaxed), 1);
        assert_eq!(registry.stats().loads, 1);
        // While resident: neither loaded nor built again.
        let resolved = registry.get_or_load(&key(1)).expect("resident");
        assert!(Arc::ptr_eq(&model, &resolved.model));
        assert_eq!(resolved.source, ModelSource::Resident);
        assert!(resolved.from_disk, "mark sticks while resident");
        assert!(registry.is_disk_loaded(&key(1)));
        assert!(resolved.evicted.is_none());
        assert_eq!(loads.load(Ordering::Relaxed), 1);

        // Unpersisted key: loader consulted, then built.
        let mut builds = 0;
        registry.get_or_insert_with(key(2), || {
            builds += 1;
            pg_model()
        });
        assert_eq!(builds, 1);
        assert_eq!(loads.load(Ordering::Relaxed), 2);
        assert_eq!(registry.stats().loads, 1, "failed loads are not counted");

        // Evict key(1) (capacity 2: insert a third key, with key(2) more
        // recently used... touch key(2) first so key(1) is the victim).
        assert!(registry.get(&key(2)).is_some());
        registry.insert(key(3), pg_model());
        assert!(!registry.contains(&key(1)), "key(1) evicted");
        // The evicted key reloads from "disk" exactly once more.
        let reloaded = registry.get_or_insert_with(key(1), || panic!("must reload"));
        assert!(
            !Arc::ptr_eq(&model, &reloaded),
            "fresh instance after eviction"
        );
        assert_eq!(registry.stats().loads, 2);
    }

    #[test]
    fn without_a_loader_get_or_load_reports_only_residents() {
        let registry = ModelRegistry::new(2);
        assert!(registry.get_or_load(&key(1)).is_none());
        registry.insert(key(1), pg_model());
        let resolved = registry.get_or_load(&key(1)).expect("resident");
        assert_eq!(resolved.source, ModelSource::Resident);
        assert!(
            !resolved.from_disk,
            "in-process inserts never carry the disk mark"
        );
    }

    #[test]
    fn keys_distinguish_every_dimension() {
        let fp = DbEnvironment::reference().fingerprint();
        let base = ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::Mscn, fp);
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Sysbench, EstimatorKind::Mscn, fp)
        );
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::QcfeMscn, fp)
        );
        assert_ne!(
            base,
            ModelKey::new(BenchmarkKind::Tpch, EstimatorKind::Mscn, key(9).fingerprint)
        );
    }
}

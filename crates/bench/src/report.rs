//! Result-table formatting shared by the experiment binaries.
//!
//! Every experiment binary produces an [`ExperimentReport`]: a set of named
//! tables with string/number cells. Reports are printed as aligned text (so
//! the terminal output mirrors the paper's tables) and serialised as JSON
//! under `target/experiments/` so EXPERIMENTS.md can be regenerated.

use crate::json::{Json, JsonError};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// A single formatted table (one per paper table / figure panel).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ReportTable {
    /// Table title, e.g. `"Table IV — TPCH"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (already rendered to strings).
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Create an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ReportTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the number of cells must match the headers.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }
}

/// A full experiment report (one per binary).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ExperimentReport {
    /// Experiment identifier, e.g. `"table4"`, `"fig6"`.
    pub id: String,
    /// Free-form description of what was run (workloads, scales, seeds).
    pub description: String,
    /// Whether the run used `--quick` reduced sizes.
    pub quick: bool,
    /// The result tables.
    pub tables: Vec<ReportTable>,
}

impl ExperimentReport {
    /// Create an empty report.
    pub fn new(id: impl Into<String>, description: impl Into<String>, quick: bool) -> Self {
        ExperimentReport {
            id: id.into(),
            description: description.into(),
            quick,
            tables: Vec::new(),
        }
    }

    /// Add a table.
    pub fn add_table(&mut self, table: ReportTable) {
        self.tables.push(table);
    }

    /// Render all tables to text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### Experiment {} ({}){}\n",
            self.id,
            self.description,
            if self.quick { " [quick mode]" } else { "" }
        );
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Serialise to a JSON document (hand-rolled writer; object keys in a
    /// stable order so report files diff cleanly).
    pub fn to_json(&self) -> Json {
        Json::Object(vec![
            ("id".into(), Json::String(self.id.clone())),
            ("description".into(), Json::String(self.description.clone())),
            ("quick".into(), Json::Bool(self.quick)),
            (
                "tables".into(),
                Json::Array(
                    self.tables
                        .iter()
                        .map(|t| {
                            Json::Object(vec![
                                ("title".into(), Json::String(t.title.clone())),
                                (
                                    "headers".into(),
                                    Json::Array(
                                        t.headers.iter().cloned().map(Json::String).collect(),
                                    ),
                                ),
                                (
                                    "rows".into(),
                                    Json::Array(
                                        t.rows
                                            .iter()
                                            .map(|r| {
                                                Json::Array(
                                                    r.iter().cloned().map(Json::String).collect(),
                                                )
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a report previously written by [`ExperimentReport::to_json`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let bad = |what: &str| JsonError {
            message: what.into(),
            offset: 0,
        };
        let doc = Json::parse(text)?;
        let str_field = |v: &Json, key: &str| -> Result<String, JsonError> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing string field '{key}'")))
        };
        let mut report = ExperimentReport {
            id: str_field(&doc, "id")?,
            description: str_field(&doc, "description")?,
            quick: doc
                .get("quick")
                .and_then(Json::as_bool)
                .ok_or_else(|| bad("missing bool field 'quick'"))?,
            tables: Vec::new(),
        };
        let tables = doc
            .get("tables")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing array field 'tables'"))?;
        for t in tables {
            let strings = |v: &Json| -> Result<Vec<String>, JsonError> {
                v.as_array()
                    .ok_or_else(|| bad("expected array of strings"))?
                    .iter()
                    .map(|s| {
                        s.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| bad("expected string cell"))
                    })
                    .collect()
            };
            let headers = strings(
                t.get("headers")
                    .ok_or_else(|| bad("table missing 'headers'"))?,
            )?;
            let rows = t
                .get("rows")
                .and_then(Json::as_array)
                .ok_or_else(|| bad("table missing 'rows'"))?
                .iter()
                .map(strings)
                .collect::<Result<Vec<_>, _>>()?;
            report.tables.push(ReportTable {
                title: str_field(t, "title")?,
                headers,
                rows,
            });
        }
        Ok(report)
    }

    /// Write the report to `target/experiments/<id>.json` (best effort) and
    /// return the path used.
    pub fn save_json(&self) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        if std::fs::create_dir_all(&dir).is_err() {
            return None;
        }
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(&path, self.to_json().pretty()).ok()?;
        Some(path)
    }

    /// Write the report as machine-readable `BENCH_<id>.json` at a stable
    /// path (the workspace root when invoked via cargo, else the current
    /// directory), so successive PRs can track the perf trajectory.
    pub fn save_bench_json(&self) -> Option<PathBuf> {
        let root = workspace_root().unwrap_or_else(|| PathBuf::from("."));
        let path = root.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json().pretty()).ok()?;
        Some(path)
    }
}

/// Locate the cargo workspace root: walk up from `CARGO_MANIFEST_DIR`
/// looking for a `Cargo.toml` that declares `[workspace]`. Works no matter
/// how deeply the calling crate is nested (or if it *is* the root).
fn workspace_root() -> Option<PathBuf> {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let mut dir = PathBuf::from(manifest_dir);
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Parse the common command-line flags used by every experiment binary.
/// Returns `(quick, seed)`.
pub fn parse_common_args() -> (bool, u64) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    (quick, seed)
}

/// Format a float with 3 decimal places (the precision used in the paper's
/// tables).
pub fn fmt3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = ReportTable::new("demo", &["model", "q-error"]);
        t.push_row(vec!["QPPNet".into(), "1.107".into()]);
        t.push_row(vec!["QCFE(qpp)".into(), "1.072".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("QCFE(qpp)"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = ReportTable::new("demo", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut r = ExperimentReport::new("table4", "time-accuracy", true);
        let mut t = ReportTable::new("TPCH", &["model", "pearson"]);
        t.push_row(vec!["MSCN".into(), "0.983".into()]);
        r.add_table(t);
        let json = r.to_json().pretty();
        let back = ExperimentReport::from_json(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.render().contains("[quick mode]"));
    }

    #[test]
    fn fmt3_rounds_to_three_places() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt3(2.0), "2.000");
    }
}

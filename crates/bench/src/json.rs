//! A tiny hand-written JSON value, writer and parser.
//!
//! `serde_json` is unavailable offline, and the bench reports only need
//! strings, numbers, booleans, arrays and objects. The writer produces
//! stable, pretty-printed output (object keys keep insertion order) so
//! `BENCH_*.json` files diff cleanly across PRs; the parser accepts any
//! standard JSON document and exists mainly so round-trips can be tested.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let inner_pad = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => write_number(out, *n),
            Json::String(s) => write_string(out, s),
            Json::Array(items) if items.is_empty() => out.push_str("[]"),
            Json::Array(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&inner_pad);
                    item.write_into(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(members) if members.is_empty() => out.push_str("{}"),
            Json::Object(members) => {
                out.push_str("{\n");
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(&inner_pad);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_into(out, indent + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at("trailing characters", pos));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: &str, offset: usize) -> Self {
        JsonError {
            message: message.into(),
            offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at(&format!("expected '{}'", c as char), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at("unexpected end of input", *pos)),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| JsonError::at("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| JsonError::at("invalid \\u escape", *pos))?;
                        // Surrogate pairs are not needed by our own output;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at("invalid UTF-8", *pos))?;
                let c = rest.chars().next().expect("non-empty rest");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(JsonError::at("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            _ => return Err(JsonError::at("expected ',' or '}'", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_nested_documents() {
        let doc = Json::Object(vec![
            ("id".into(), Json::String("table4".into())),
            ("quick".into(), Json::Bool(true)),
            ("count".into(), Json::Number(3.0)),
            ("mean_q".into(), Json::Number(1.2345)),
            (
                "rows".into(),
                Json::Array(vec![
                    Json::String("a \"quoted\" cell\nwith newline".into()),
                    Json::Null,
                ]),
            ),
            ("empty_obj".into(), Json::Object(vec![])),
            ("empty_arr".into(), Json::Array(vec![])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("id").and_then(Json::as_str), Some("table4"));
        assert_eq!(back.get("quick").and_then(Json::as_bool), Some(true));
        assert_eq!(back.get("count").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Number(42.0).pretty(), "42\n");
        assert_eq!(Json::Number(1.5).pretty(), "1.5\n");
        assert_eq!(Json::Number(f64::NAN).pretty(), "null\n");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2,, 3]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("{1: 2}").is_err());
    }

    #[test]
    fn parses_standard_json_from_other_writers() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": false}, "e": "A"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(v.get("e").and_then(Json::as_str), Some("A"));
    }
}

//! Table V — robustness to the simplified-template scale: accuracy and
//! snapshot-collection cost of FSO vs FST at several scales.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin table5_template_scale [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{
    prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig, SnapshotSource,
};
use qcfe_workloads::BenchmarkKind;

fn main() {
    let (quick, seed) = parse_common_args();
    let template_scales: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 3, 4] };
    let sample_size = if quick { 150 } else { 1000 };
    let iterations = if quick { 6 } else { 30 };

    let mut report =
        ExperimentReport::new("table5", "template-scale robustness (FSO vs FST)", quick);
    for kind in [BenchmarkKind::Tpch, BenchmarkKind::JobLight] {
        let mut table = ReportTable::new(
            format!("Table V — {}", kind.name()),
            &[
                "snapshot",
                "template scale",
                "mean q-error",
                "collection cost (ms, simulated)",
                "#templates",
            ],
        );
        for &tscale in &template_scales {
            let cfg = ContextConfig {
                template_scale: tscale,
                seed,
                ..if quick {
                    ContextConfig::quick(kind)
                } else {
                    ContextConfig::full(kind)
                }
            };
            let ctx = prepare_context(kind, &cfg);
            // FSO row only once (its collection cost does not depend on the
            // template scale).
            if tscale == template_scales[0] {
                let run = RunConfig {
                    snapshot_source: SnapshotSource::Original,
                    ..RunConfig::new(sample_size, iterations, seed)
                };
                let fso = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
                table.push_row(vec![
                    "FSO".into(),
                    "-".into(),
                    fmt3(fso.accuracy.mean_q_error),
                    fmt3(ctx.fso_collection_ms),
                    "-".into(),
                ]);
            }
            let run = RunConfig {
                snapshot_source: SnapshotSource::Template,
                ..RunConfig::new(sample_size, iterations, seed)
            };
            let fst = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
            table.push_row(vec![
                "FST".into(),
                tscale.to_string(),
                fmt3(fst.accuracy.mean_q_error),
                fmt3(ctx.fst_collection_ms),
                ctx.simplified_template_count.to_string(),
            ]);
            eprintln!("[table5] {} FST scale {} done", kind.name(), tscale);
        }
        report.add_table(table);
    }
    println!("{}", report.render());
    report.save_json();
}

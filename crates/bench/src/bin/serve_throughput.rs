//! Serving-layer throughput benchmark: closed-loop clients against the
//! micro-batching `EstimationService`, swept over client counts and with
//! batching effectively on/off (max_batch 1 vs 32).
//!
//! Emits the standard report JSON under `target/experiments/` and a
//! machine-readable `BENCH_serve.json` at the workspace root so future PRs
//! can track the serving perf trajectory.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin serve_throughput [--quick] [--seed N]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::cost_model::CostModel;
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::MscnEstimator;
use qcfe_core::pipeline::{prepare_context, ContextConfig};
use qcfe_serve::prelude::*;
use qcfe_workloads::{run_closed_loop, BenchmarkKind, ClosedLoopConfig};
use rand::SeedableRng;
use std::sync::Arc;

fn main() {
    let (quick, seed) = parse_common_args();
    let kind = BenchmarkKind::Sysbench;
    let requests_per_client = if quick { 50 } else { 250 };
    let client_counts: &[usize] = if quick { &[1, 8] } else { &[1, 4, 8, 16, 32] };

    eprintln!("[serve] preparing {} context...", kind.name());
    let ctx = prepare_context(
        kind,
        &ContextConfig {
            seed,
            ..ContextConfig::quick(kind)
        },
    );
    let env = ctx.workload.environments[0].clone();
    let snapshot = ctx.snapshots_fso[0].clone().expect("snapshot fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    eprintln!("[serve] training QCFE(mscn)...");
    let (mscn, _) = MscnEstimator::train(
        encoder,
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        if quick { 15 } else { 30 },
        &mut rng,
    );
    let model: Arc<dyn CostModel> = Arc::new(mscn);
    let db = ctx.benchmark.build_database(env);

    let mut report = ExperimentReport::new(
        "serve",
        format!(
            "closed-loop serving throughput, {requests_per_client} requests/client, seed {seed}"
        ),
        quick,
    );
    let mut table = ReportTable::new(
        "EstimationService throughput",
        &[
            "clients",
            "max_batch",
            "throughput (est/s)",
            "client p50 (ms)",
            "client p99 (ms)",
            "mean batch",
            "cache hit rate",
        ],
    );

    for &clients in client_counts {
        for max_batch in [1usize, 32] {
            let service = EstimationService::start(
                Arc::clone(&model),
                Some(snapshot.clone()),
                ServiceConfig {
                    workers: 2,
                    queue_capacity: 256,
                    max_batch,
                    encoding_cache_capacity: 4096,
                },
            );
            let handle = service.handle();
            let load = ClosedLoopConfig::new(clients, requests_per_client, seed + 100);
            let run = run_closed_loop(&ctx.benchmark, &load, |query| {
                let plan = db.plan(&query).map_err(|e| e.to_string())?;
                Ok(handle.estimate(plan).map_err(|e| e.to_string())?.cost_ms)
            });
            let metrics = service.shutdown();
            assert_eq!(run.errors, 0, "serving must not drop closed-loop requests");
            table.push_row(vec![
                clients.to_string(),
                max_batch.to_string(),
                format!("{:.0}", run.throughput_qps()),
                fmt3(run.latency_percentile_ms(50.0)),
                fmt3(run.latency_percentile_ms(99.0)),
                fmt3(metrics.mean_batch_size),
                fmt3(metrics.cache_hit_rate),
            ]);
            eprintln!(
                "[serve] clients={clients} max_batch={max_batch}: {:.0} est/s, p99 {:.3} ms, mean batch {:.2}, cache {:.0}%",
                run.throughput_qps(),
                run.latency_percentile_ms(99.0),
                metrics.mean_batch_size,
                100.0 * metrics.cache_hit_rate,
            );
        }
    }

    report.add_table(table);
    println!("{}", report.render());
    if let Some(path) = report.save_json() {
        eprintln!("[serve] report saved to {}", path.display());
    }
    if let Some(path) = report.save_bench_json() {
        eprintln!("[serve] bench trajectory saved to {}", path.display());
    }
}

//! Serving-layer throughput benchmark: closed-loop clients against the
//! micro-batching `EstimationService`, swept over client counts and with
//! batching effectively on/off (max_batch 1 vs 32), plus a direct
//! batched-vs-scalar comparison and batch-size sweep of the
//! operator-grouped QPPNet inference engine, a matmul-kernel sweep
//! (scalar vs portable vs AVX2, f64 vs int8-quantized weights — direct
//! batch-32 inference and the full service path, with the quantized
//! models' q-error delta gated at 1%), a routed-gateway section
//! comparing one `QcfeGateway` front door (1 client per environment across
//! 4 environments) against the equivalent hand-wired per-service setup,
//! a cold-restart section timing a rebuilt gateway's first estimate
//! served from persisted `QCFW` weights against one forced to retrain,
//! an online-refinement section measuring a cold environment's
//! estimate error under a transferred snapshot vs after refitting from
//! its own streamed labels (gated: refit error ≤ transferred error),
//! a network section driving the same gateway through the `qcfe-net`
//! reactor over a loopback Unix-domain socket — N pipelined remote
//! clients vs the same clients in-process (reported, not gated; every
//! remote estimate is asserted bit-identical to its in-process twin),
//! a multi-tenant scheduling section replaying one adversarial mix
//! (a greedy deadline-less tenant flooding a throttled single-worker
//! shard next to compliant deadline-carrying tenants) against a
//! default FIFO gateway and one running `SchedPolicy::edf()` with a
//! queue-share quota on the greedy tenant, and a replication section
//! running three local replicas with rendezvous-sharded keys, killing
//! the owner of the loaded shard mid-run, and reporting the time for
//! the survivors to absorb the dead peer's keys from shipped
//! `QCFS`/`QCFW` state (asserted: the loop keeps completing requests,
//! post-failover estimates are bit-identical, no shipped state is
//! rejected), and a revival section exercising the anti-entropy
//! catch-up handshake: the owner of the loaded shard is killed, its
//! key's snapshot and model are re-published on the failover owner
//! during the outage, and the victim is restarted over its stale store
//! mid-load — reporting the catch-up latency (restart to promotion on
//! every survivor) and gating **zero stale reads** (every networked
//! answer bit-identical to the re-publishing owner's) plus both
//! divergent artifacts re-shipped.
//!
//! Emits the standard report JSON under `target/experiments/` and a
//! machine-readable `BENCH_serve.json` at the workspace root so future PRs
//! can track the serving perf trajectory.
//!
//! The run fails (CI gate) if batched QPPNet inference falls below the
//! scalar per-plan path, if the AVX2 kernel loses its ≥1.15x lead over the
//! scalar kernel at batch 32 (on CPUs that have AVX2), if int8
//! quantization costs more than 1% mean q-error, if routed-gateway
//! aggregate throughput falls more than 20% below the hand-wired
//! per-service baseline, if scheduling fails to cut the compliant
//! tenants' pooled p99 to ≤ 0.5x the FIFO baseline while they keep
//! ≥ 80% goodput, or if the greedy tenant is not shed typed (nonzero
//! client-side and per-tenant-metric shed counters; every request must
//! resolve — served, shed or deadline-failed — in both runs).
//!
//! Usage: `cargo run --release -p qcfe-bench --bin serve_throughput [--quick] [--seed N]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::cost_model::CostModel;
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::{
    MscnEstimator, QppNetEstimator, QuantizedMscnEstimator, QuantizedQppNetEstimator,
};
use qcfe_core::metrics::q_errors;
use qcfe_core::model_codec::PersistedModel;
use qcfe_core::pipeline::{prepare_context, ContextConfig, EstimatorKind, ExperimentContext};
use qcfe_core::snapshot::FeatureSnapshot;
use qcfe_db::plan::PlanNode;
use qcfe_net::{NetServerBuilder, QcfeClient, Replicator, ReplicatorConfig, ShardClient};
use qcfe_nn::kernel::{force_kernel, MatmulKernel};
use qcfe_serve::prelude::*;
use qcfe_serve::replica::owner_among;
use qcfe_workloads::{
    run_closed_loop, run_feedback_loop, run_multi_tenant_mix, run_timed_loop, BenchmarkKind,
    ClosedLoopConfig, MultiTenantReport, ObservedEstimate, SubmitError, TenantLoad,
};
use rand::SeedableRng;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A cost model that sleeps once per drained micro-batch before
/// delegating. The scheduling section uses it to make queue wait — not
/// inference speed — dominate latency, so the FIFO-vs-EDF comparison
/// measures ordering policy rather than matmul throughput.
struct ThrottledModel {
    inner: Arc<dyn CostModel>,
    delay: Duration,
}

impl CostModel for ThrottledModel {
    fn name(&self) -> &'static str {
        "throttled"
    }

    fn predict_plan(&self, root: &PlanNode, snapshot: Option<&FeatureSnapshot>) -> f64 {
        std::thread::sleep(self.delay);
        self.inner.predict_plan(root, snapshot)
    }

    fn predict_batch(&self, plans: &[&PlanNode], snapshot: Option<&FeatureSnapshot>) -> Vec<f64> {
        std::thread::sleep(self.delay);
        self.inner.predict_batch(plans, snapshot)
    }
}

/// p99 latency pooled over the given tenants' completed requests.
fn pooled_p99_ms(report: &MultiTenantReport, tenants: &[u32]) -> f64 {
    let mut pooled: Vec<f64> = report
        .lanes
        .iter()
        .filter(|lane| tenants.contains(&lane.tenant))
        .flat_map(|lane| lane.latencies_ms.iter().copied())
        .collect();
    pooled.sort_by(|a, b| a.total_cmp(b));
    if pooled.is_empty() {
        return 0.0;
    }
    let rank = (0.99 * (pooled.len() - 1) as f64).round() as usize;
    pooled[rank.min(pooled.len() - 1)]
}

/// One closed-loop service sweep for a model, appended to `table`.
#[allow(clippy::too_many_arguments)]
fn service_sweep(
    table: &mut ReportTable,
    model_name: &str,
    model: &Arc<dyn CostModel>,
    snapshot: &FeatureSnapshot,
    ctx: &ExperimentContext,
    client_counts: &[usize],
    requests_per_client: usize,
    seed: u64,
) {
    let env = ctx.workload.environments[0].clone();
    let db = ctx.benchmark.build_database(env);
    for &clients in client_counts {
        for max_batch in [1usize, 32] {
            let service = EstimationService::start(
                Arc::clone(model),
                Some(snapshot.clone()),
                ServiceConfig {
                    workers: 2,
                    queue_capacity: 256,
                    max_batch,
                    encoding_cache_capacity: 4096,
                },
            );
            let handle = service.handle();
            let load = ClosedLoopConfig::new(clients, requests_per_client, seed + 100);
            let run = run_closed_loop(&ctx.benchmark, &load, |query| {
                let plan = db.plan(&query).map_err(|e| e.to_string())?;
                Ok(handle.estimate(plan).map_err(|e| e.to_string())?.cost_ms)
            });
            let metrics = service.shutdown();
            assert_eq!(run.errors, 0, "serving must not drop closed-loop requests");
            table.push_row(vec![
                model_name.to_string(),
                clients.to_string(),
                max_batch.to_string(),
                format!("{:.0}", run.throughput_qps()),
                fmt3(run.latency_percentile_ms(50.0)),
                fmt3(run.latency_percentile_ms(99.0)),
                fmt3(metrics.mean_batch_size),
                fmt3(metrics.cache_hit_rate),
            ]);
            eprintln!(
                "[serve] {model_name} clients={clients} max_batch={max_batch}: {:.0} est/s, p99 {:.3} ms, mean batch {:.2}, cache {:.0}%",
                run.throughput_qps(),
                run.latency_percentile_ms(99.0),
                metrics.mean_batch_size,
                100.0 * metrics.cache_hit_rate,
            );
        }
    }
}

fn main() {
    let (quick, seed) = parse_common_args();
    let kind = BenchmarkKind::Sysbench;
    let requests_per_client = if quick { 50 } else { 250 };
    let client_counts: &[usize] = if quick { &[1, 8] } else { &[1, 4, 8, 16, 32] };

    eprintln!("[serve] preparing {} context...", kind.name());
    // 4 environments: the routed-gateway section needs ≥4 distinct
    // fingerprints (the single-service sweeps keep using environment 0).
    let ctx = prepare_context(
        kind,
        &ContextConfig {
            seed,
            environments: 4,
            ..ContextConfig::quick(kind)
        },
    );
    let snapshot = ctx.snapshots_fso[0].clone().expect("snapshot fitted");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    eprintln!("[serve] training QCFE(mscn)...");
    let (mscn, _) = MscnEstimator::train(
        FeatureEncoder::new(&ctx.benchmark.catalog, true),
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        None,
        if quick { 15 } else { 30 },
        &mut rng,
    );
    eprintln!("[serve] training QCFE(qpp)...");
    let mut qpp = QppNetEstimator::new(
        FeatureEncoder::new(&ctx.benchmark.catalog, true),
        None,
        &mut rng,
    );
    qpp.train(
        &ctx.workload,
        Some(&ctx.snapshots_fso),
        if quick { 3 } else { 8 },
        &mut rng,
    );

    let mut report = ExperimentReport::new(
        "serve",
        format!(
            "closed-loop serving throughput + QPPNet batched-vs-scalar, {requests_per_client} requests/client, seed {seed}"
        ),
        quick,
    );

    // ---------------------------------------------------------------
    // Direct (no service) QPPNet inference: scalar vs operator-grouped
    // batched, swept over the plans-per-predict_batch-call batch size.
    // ---------------------------------------------------------------
    let plans: Vec<&PlanNode> = ctx
        .workload
        .queries
        .iter()
        .map(|q| &q.executed.root)
        .collect();
    let passes = if quick { 3 } else { 4 };
    let reps = 9;
    // Warm-up: fills thread-local and per-call scratch buffers.
    let _ = qpp.predict_batch(&plans, Some(&snapshot));

    // Best-of-`reps` timing windows: the shortest window is the least
    // disturbed by transient machine load, the standard microbenchmark
    // defence against noisy neighbours.
    let best_throughput = |f: &dyn Fn()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for _ in 0..passes {
                f();
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        (passes * plans.len()) as f64 / best
    };

    let scalar_tput = best_throughput(&|| {
        for plan in &plans {
            let _ = qpp.predict_scalar(plan, Some(&snapshot));
        }
    });

    let mut qpp_table = ReportTable::new(
        "QPPNet operator-grouped batching (direct inference)",
        &["batch size", "throughput (plans/s)", "speedup vs scalar"],
    );
    qpp_table.push_row(vec![
        "scalar".into(),
        format!("{scalar_tput:.0}"),
        fmt3(1.0),
    ]);
    let mut batched_best_tput: f64 = 0.0;
    for &batch_size in &[1usize, 8, 32, 128] {
        let tput = best_throughput(&|| {
            for chunk in plans.chunks(batch_size) {
                let _ = qpp.predict_batch(chunk, Some(&snapshot));
            }
        });
        if batch_size > 1 {
            batched_best_tput = batched_best_tput.max(tput);
        }
        qpp_table.push_row(vec![
            batch_size.to_string(),
            format!("{tput:.0}"),
            fmt3(tput / scalar_tput),
        ]);
        eprintln!(
            "[serve] qppnet batch={batch_size}: {tput:.0} plans/s ({:.2}x scalar)",
            tput / scalar_tput
        );
    }
    report.add_table(qpp_table);

    // ---------------------------------------------------------------
    // Matmul kernel sweep: the identical operator-grouped QPPNet batch-32
    // workload driven through each dispatchable kernel (scalar, portable,
    // AVX2 where the CPU has it), for both the f64 weights and the
    // int8-quantized model. `force_kernel` overrides the
    // QCFE_KERNEL-resolved default so one process compares all of them.
    // ---------------------------------------------------------------
    let supported: Vec<MatmulKernel> = MatmulKernel::ALL
        .into_iter()
        .filter(|k| k.is_supported())
        .collect();
    let qqpp = QuantizedQppNetEstimator::quantize(&qpp);
    let _ = qqpp.predict_batch(&plans, Some(&snapshot)); // warm scratch
    let mut kernel_table = ReportTable::new(
        "Matmul kernel sweep: QPPNet direct inference, batch 32",
        &[
            "kernel",
            "weights",
            "throughput (plans/s)",
            "speedup vs scalar f64",
        ],
    );
    let mut scalar_f64_tput = 0.0_f64;
    let mut avx2_f64_tput = None;
    for &kernel in &supported {
        assert!(force_kernel(Some(kernel)), "{} dispatches", kernel.name());
        let f64_tput = best_throughput(&|| {
            for chunk in plans.chunks(32) {
                let _ = qpp.predict_batch(chunk, Some(&snapshot));
            }
        });
        let i8_tput = best_throughput(&|| {
            for chunk in plans.chunks(32) {
                let _ = qqpp.predict_batch(chunk, Some(&snapshot));
            }
        });
        if kernel == MatmulKernel::Scalar {
            scalar_f64_tput = f64_tput;
        }
        if kernel == MatmulKernel::Avx2 {
            avx2_f64_tput = Some(f64_tput);
        }
        for (weights, tput) in [("f64", f64_tput), ("int8", i8_tput)] {
            kernel_table.push_row(vec![
                kernel.name().into(),
                weights.into(),
                format!("{tput:.0}"),
                fmt3(tput / scalar_f64_tput),
            ]);
            eprintln!(
                "[serve] kernel={} weights={weights}: {tput:.0} plans/s ({:.2}x scalar f64)",
                kernel.name(),
                tput / scalar_f64_tput
            );
        }
    }
    force_kernel(None);
    report.add_table(kernel_table);

    // Quantization accuracy: the int8 models must stay within 1% of the
    // f64 models' mean q-error on the seeded workload — the budget that
    // makes quantize-at-publish an acceptable serving default.
    let actuals: Vec<f64> = ctx
        .workload
        .queries
        .iter()
        .map(|q| q.executed.total_ms)
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut qerr_table = ReportTable::new(
        "int8 quantization accuracy (mean q-error on the training workload)",
        &["model", "f64", "int8", "delta"],
    );
    let qmscn = QuantizedMscnEstimator::quantize(&mscn);
    for (name, f64_preds, i8_preds) in [
        (
            "QCFE(mscn)",
            mscn.predict_batch(&plans, Some(&snapshot)),
            qmscn.predict_batch(&plans, Some(&snapshot)),
        ),
        (
            "QCFE(qpp)",
            qpp.predict_batch(&plans, Some(&snapshot)),
            qqpp.predict_batch(&plans, Some(&snapshot)),
        ),
    ] {
        let f64_q = mean(&q_errors(&actuals, &f64_preds));
        let i8_q = mean(&q_errors(&actuals, &i8_preds));
        qerr_table.push_row(vec![
            name.into(),
            fmt3(f64_q),
            fmt3(i8_q),
            format!("{:+.3}%", 100.0 * (i8_q / f64_q - 1.0)),
        ]);
        eprintln!(
            "[serve] {name} mean q-error: f64 {f64_q:.4} vs int8 {i8_q:.4} ({:+.3}%)",
            100.0 * (i8_q / f64_q - 1.0)
        );
        // CI accuracy gate: quantization may cost at most 1% q-error.
        assert!(
            i8_q <= f64_q * 1.01,
            "{name}: int8 mean q-error {i8_q:.4} exceeds the 1% budget over f64 {f64_q:.4}"
        );
    }
    report.add_table(qerr_table);

    // The same sweep through the full EstimationService path: micro-batched
    // closed-loop clients, one service per kernel choice, plus the int8
    // model on the default kernel.
    let sweep_db = ctx
        .benchmark
        .build_database(ctx.workload.environments[0].clone());
    let mscn_sweep_model: Arc<dyn CostModel> = Arc::new(mscn.clone());
    let qmscn_model: Arc<dyn CostModel> = Arc::new(qmscn);
    let service_tput = |model: &Arc<dyn CostModel>| -> f64 {
        let service = EstimationService::start(
            Arc::clone(model),
            Some(snapshot.clone()),
            ServiceConfig {
                workers: 2,
                queue_capacity: 256,
                max_batch: 32,
                encoding_cache_capacity: 4096,
            },
        );
        let handle = service.handle();
        let load = ClosedLoopConfig::new(8, requests_per_client, seed + 500);
        let run = run_closed_loop(&ctx.benchmark, &load, |query| {
            let plan = sweep_db.plan(&query).map_err(|e| e.to_string())?;
            Ok(handle.estimate(plan).map_err(|e| e.to_string())?.cost_ms)
        });
        let _ = service.shutdown();
        assert_eq!(run.errors, 0, "kernel-sweep serving must not fail");
        run.throughput_qps()
    };
    let mut svc_kernel_table = ReportTable::new(
        "Matmul kernel sweep: EstimationService path (QCFE(mscn), 8 clients, max_batch 32)",
        &["kernel", "weights", "throughput (est/s)"],
    );
    for &kernel in &supported {
        assert!(force_kernel(Some(kernel)), "{} dispatches", kernel.name());
        let tput = service_tput(&mscn_sweep_model);
        svc_kernel_table.push_row(vec![
            kernel.name().into(),
            "f64".into(),
            format!("{tput:.0}"),
        ]);
        eprintln!(
            "[serve] service kernel={} weights=f64: {tput:.0} est/s",
            kernel.name()
        );
    }
    force_kernel(None);
    let int8_svc_tput = service_tput(&qmscn_model);
    svc_kernel_table.push_row(vec![
        "default".into(),
        "int8".into(),
        format!("{int8_svc_tput:.0}"),
    ]);
    eprintln!("[serve] service kernel=default weights=int8: {int8_svc_tput:.0} est/s");
    report.add_table(svc_kernel_table);

    // ---------------------------------------------------------------
    // Service-side closed-loop sweeps for both model families.
    // ---------------------------------------------------------------
    let mut table = ReportTable::new(
        "EstimationService throughput",
        &[
            "model",
            "clients",
            "max_batch",
            "throughput (est/s)",
            "client p50 (ms)",
            "client p99 (ms)",
            "mean batch",
            "cache hit rate",
        ],
    );
    // The cold-restart section persists and retrains this exact model.
    let mscn_for_restart = mscn.clone();
    let mscn_model: Arc<dyn CostModel> = Arc::new(mscn);
    service_sweep(
        &mut table,
        "QCFE(mscn)",
        &mscn_model,
        &snapshot,
        &ctx,
        client_counts,
        requests_per_client,
        seed,
    );
    let qpp_model: Arc<dyn CostModel> = Arc::new(qpp);
    let qpp_clients: &[usize] = if quick { &[8] } else { &[8, 32] };
    service_sweep(
        &mut table,
        "QCFE(qpp)",
        &qpp_model,
        &snapshot,
        &ctx,
        qpp_clients,
        requests_per_client,
        seed,
    );
    report.add_table(table);

    // ---------------------------------------------------------------
    // Routed gateway vs hand-wired per-service baseline: 1 closed-loop
    // client per environment across all 4 environments. Same models,
    // same snapshots, same per-shard service configuration — the only
    // difference is whether requests go through the typed front door.
    // ---------------------------------------------------------------
    let env_count = ctx.workload.environments.len();
    let shard_config = ServiceConfig {
        workers: 2,
        queue_capacity: 256,
        max_batch: 32,
        encoding_cache_capacity: 4096,
    };
    let dbs: Vec<_> = ctx
        .workload
        .environments
        .iter()
        .map(|env| ctx.benchmark.build_database(env.clone()))
        .collect();
    let snapshots: Vec<FeatureSnapshot> = (0..env_count)
        .map(|i| ctx.snapshots_fso[i].clone().expect("snapshot fitted"))
        .collect();

    // Hand-wired: one EstimationService per environment, assembled by the
    // caller exactly as pre-gateway code did.
    let services: Vec<EstimationService> = snapshots
        .iter()
        .map(|snapshot| {
            EstimationService::start(
                Arc::clone(&mscn_model),
                Some(snapshot.clone()),
                shard_config,
            )
        })
        .collect();
    let started = Instant::now();
    let handwired_completed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..env_count)
            .map(|i| {
                let handle = services[i].handle();
                let db = &dbs[i];
                let benchmark = &ctx.benchmark;
                scope.spawn(move || {
                    let load = ClosedLoopConfig::new(1, requests_per_client, seed + 300 + i as u64);
                    let run = run_closed_loop(benchmark, &load, |query| {
                        let plan = db.plan(&query).map_err(|e| e.to_string())?;
                        Ok(handle.estimate(plan).map_err(|e| e.to_string())?.cost_ms)
                    });
                    assert_eq!(run.errors, 0, "hand-wired serving must not fail");
                    run.completed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let handwired_tput = handwired_completed as f64 / started.elapsed().as_secs_f64();
    drop(services);

    // Routed: one QcfeGateway owning everything; clients submit typed
    // requests naming only their environment.
    let gw_root = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-gateway-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&gw_root);
    let gateway = QcfeGateway::builder(&gw_root)
        .service_config(shard_config)
        .build()
        .expect("gateway builds");
    for (env, snapshot) in ctx.workload.environments.iter().zip(&snapshots) {
        gateway
            .publish_snapshot(kind, env, snapshot)
            .expect("snapshot published");
        gateway.register_model(
            ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint()),
            Arc::clone(&mscn_model),
        );
    }
    let started = Instant::now();
    let gateway_completed: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..env_count)
            .map(|i| {
                let gateway = &gateway;
                // Shared per client: each request clones the pointer, not
                // the knob/hardware structs.
                let env = Arc::new(ctx.workload.environments[i].clone());
                let db = &dbs[i];
                let benchmark = &ctx.benchmark;
                scope.spawn(move || {
                    let load = ClosedLoopConfig::new(1, requests_per_client, seed + 300 + i as u64);
                    let run = run_closed_loop(benchmark, &load, |query| {
                        let plan = db.plan(&query).map_err(|e| e.to_string())?;
                        let request = EstimateRequest::new(kind, Arc::clone(&env), plan);
                        Ok(gateway
                            .estimate(request)
                            .map_err(|e| e.to_string())?
                            .cost_ms)
                    });
                    assert_eq!(run.errors, 0, "routed serving must not fail");
                    run.completed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let gateway_tput = gateway_completed as f64 / started.elapsed().as_secs_f64();
    let gateway_stats = gateway.stats();
    assert_eq!(
        gateway_stats.shard_starts as usize, env_count,
        "each environment must start exactly one shard"
    );
    let _ = std::fs::remove_dir_all(&gw_root);

    let mut gw_table = ReportTable::new(
        "Routed gateway vs hand-wired services (QCFE(mscn), 1 client per environment)",
        &[
            "setup",
            "environments",
            "clients",
            "aggregate throughput (est/s)",
            "ratio vs hand-wired",
        ],
    );
    gw_table.push_row(vec![
        "hand-wired per-service".into(),
        env_count.to_string(),
        env_count.to_string(),
        format!("{handwired_tput:.0}"),
        fmt3(1.0),
    ]);
    gw_table.push_row(vec![
        "routed QcfeGateway".into(),
        env_count.to_string(),
        env_count.to_string(),
        format!("{gateway_tput:.0}"),
        fmt3(gateway_tput / handwired_tput),
    ]);
    report.add_table(gw_table);
    eprintln!(
        "[serve] routed gateway across {env_count} envs: {gateway_tput:.0} est/s vs hand-wired {handwired_tput:.0} est/s ({:.2}x)",
        gateway_tput / handwired_tput
    );

    // ---------------------------------------------------------------
    // Cold restart: time-to-first-estimate of a gateway rebuilt on a
    // store directory holding persisted QCFW weights (disk load) vs one
    // that must retrain the same model through its provider. Both serve
    // the same environment and plan.
    // ---------------------------------------------------------------
    let env0 = ctx.workload.environments[0].clone();
    let restart_plan = dbs[0]
        .plan(&ctx.benchmark.random_query(&mut rng))
        .expect("plannable");
    let restart_key = ModelKey::new(kind, EstimatorKind::QcfeMscn, env0.fingerprint());

    let disk_root = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-restart-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&disk_root);
    {
        // First life: publish snapshot + weights, then "exit".
        let gateway = QcfeGateway::builder(&disk_root)
            .service_config(shard_config)
            .build()
            .expect("gateway builds");
        gateway
            .publish_snapshot(kind, &env0, &snapshot)
            .expect("snapshot published");
        gateway
            .publish_model(restart_key, PersistedModel::Mscn(mscn_for_restart.clone()))
            .expect("weights published");
    }
    let started = Instant::now();
    let gateway = QcfeGateway::builder(&disk_root)
        .service_config(shard_config)
        .build()
        .expect("gateway rebuilds");
    let disk_response = gateway
        .estimate(EstimateRequest::new(
            kind,
            env0.clone(),
            restart_plan.clone(),
        ))
        .expect("disk-load estimate");
    let disk_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        disk_response.provenance.snapshot_origin.is_from_disk(),
        "cold restart must serve from persisted weights, got {:?}",
        disk_response.provenance.snapshot_origin
    );
    drop(gateway);
    let _ = std::fs::remove_dir_all(&disk_root);

    let retrain_root = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-retrain-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&retrain_root);
    let train_iterations = if quick { 15 } else { 30 };
    let trainer_workload = ctx.workload.clone();
    let trainer_snapshots = ctx.snapshots_fso.clone();
    let trainer_catalog = ctx.benchmark.catalog.clone();
    let started = Instant::now();
    let gateway = QcfeGateway::builder(&retrain_root)
        .service_config(shard_config)
        .model_provider(move |_, _| {
            // The pre-QCFW boot path: rebuild the model from the labeled
            // workload, exactly as the offline phase trained it.
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let (retrained, _) = MscnEstimator::train(
                FeatureEncoder::new(&trainer_catalog, true),
                &trainer_workload,
                Some(&trainer_snapshots),
                None,
                train_iterations,
                &mut rng,
            );
            Some(Arc::new(retrained) as Arc<dyn CostModel>)
        })
        .build()
        .expect("gateway builds");
    gateway
        .publish_snapshot(kind, &env0, &snapshot)
        .expect("snapshot published");
    let retrain_response = gateway
        .estimate(EstimateRequest::new(kind, env0, restart_plan))
        .expect("retrain estimate");
    let retrain_ms = started.elapsed().as_secs_f64() * 1e3;
    assert!(
        !retrain_response.provenance.snapshot_origin.is_from_disk(),
        "the retrain baseline must not find persisted weights"
    );
    drop(gateway);
    let _ = std::fs::remove_dir_all(&retrain_root);

    let mut restart_table = ReportTable::new(
        "Cold restart: time-to-first-estimate (QCFE(mscn))",
        &["boot path", "time to first estimate (ms)", "speedup"],
    );
    restart_table.push_row(vec![
        "retrain via model provider".into(),
        fmt3(retrain_ms),
        fmt3(1.0),
    ]);
    restart_table.push_row(vec![
        "QCFW disk load".into(),
        fmt3(disk_ms),
        fmt3(retrain_ms / disk_ms),
    ]);
    report.add_table(restart_table);
    eprintln!(
        "[serve] cold restart: disk load {disk_ms:.3} ms vs retrain {retrain_ms:.3} ms ({:.1}x faster)",
        retrain_ms / disk_ms
    );

    // ---------------------------------------------------------------
    // Online refinement: a cold environment warm-starts from env 0's
    // published snapshot (Transferred), its estimate error against
    // observed executions is measured, its executions then stream through
    // record_execution (refit + promotion to TrainedHere), and the same
    // seeded query stream is re-measured. The paper's Table VII loop,
    // online, with a CI gate: refit error ≤ transferred error.
    // ---------------------------------------------------------------
    let env_a = ctx.workload.environments[0].clone();
    // The coldest plausible start: the environment farthest from env 0 in
    // knob space borrows env 0's snapshot.
    let refine_index = (1..env_count)
        .max_by(|&i, &j| {
            env_a
                .distance_to(&ctx.workload.environments[i])
                .total_cmp(&env_a.distance_to(&ctx.workload.environments[j]))
        })
        .expect("≥2 environments");
    let env_b = Arc::new(ctx.workload.environments[refine_index].clone());
    let db_b = ctx.benchmark.build_database((*env_b).clone());
    let refine_root = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-refine-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&refine_root);
    let gateway = QcfeGateway::builder(&refine_root)
        .service_config(shard_config)
        .refinement(RefinementConfig {
            refit_threshold: 64,
            min_drift: 0.0,
            buffer_capacity: 16384,
        })
        .with_model(
            ModelKey::new(kind, EstimatorKind::QcfeMscn, env_b.fingerprint()),
            Arc::clone(&mscn_model),
        )
        .build()
        .expect("gateway builds");
    gateway
        .publish_snapshot(kind, &env_a, &snapshot)
        .expect("neighbour published");

    // One closed feedback loop, reused for both measurement phases: plan,
    // estimate through the gateway, execute on the simulator for the
    // observed label. One client and identical query + execution-noise
    // seeds make the two phases submit identical queries against identical
    // observed labels, so the error delta is the refinement effect and
    // nothing else (in particular, the refit-≤-transferred gate below
    // cannot flake on execution noise).
    let measure_seed = seed + 700;
    let measure = |expect_refined: bool| {
        let exec_rng =
            std::sync::Mutex::new(rand::rngs::StdRng::seed_from_u64(measure_seed ^ 0x0b5e));
        run_feedback_loop(
            &ctx.benchmark,
            &ClosedLoopConfig::new(1, 2 * requests_per_client, measure_seed),
            |query| {
                let plan = db_b.plan(&query).map_err(|e| e.to_string())?;
                let response = gateway
                    .estimate(EstimateRequest::new(kind, Arc::clone(&env_b), plan))
                    .map_err(|e| e.to_string())?;
                assert_eq!(
                    response.provenance.refined, expect_refined,
                    "refinement provenance must match the phase"
                );
                let executed = db_b
                    .execute(&query, &mut *exec_rng.lock().expect("rng lock"))
                    .map_err(|e| e.to_string())?;
                Ok(ObservedEstimate {
                    estimate_ms: response.cost_ms,
                    observed_ms: executed.total_ms,
                })
            },
        )
    };
    let transferred_run = measure(false);
    assert_eq!(
        transferred_run.errors, 0,
        "transferred serving must not fail"
    );

    // Feedback phase: stream fresh executed queries as labels while
    // estimates keep flowing — the online loop, not a maintenance window.
    let feedback_rng = std::sync::Mutex::new(rand::rngs::StdRng::seed_from_u64(seed + 800));
    let feedback_run = run_feedback_loop(
        &ctx.benchmark,
        &ClosedLoopConfig::new(2, requests_per_client.max(60), seed + 900),
        |query| {
            let executed = db_b
                .execute(&query, &mut *feedback_rng.lock().expect("rng lock"))
                .map_err(|e| e.to_string())?;
            let response = gateway
                .estimate(EstimateRequest::new(
                    kind,
                    Arc::clone(&env_b),
                    executed.root.clone(),
                ))
                .map_err(|e| e.to_string())?;
            gateway
                .record_execution(kind, &env_b, &executed)
                .map_err(|e| e.to_string())?;
            Ok(ObservedEstimate {
                estimate_ms: response.cost_ms,
                observed_ms: executed.total_ms,
            })
        },
    );
    assert_eq!(feedback_run.errors, 0, "feedback serving must not fail");
    let refine_stats = gateway.stats();
    assert!(
        refine_stats.refits >= 1,
        "the label stream must trigger a refit"
    );
    assert_eq!(
        refine_stats.promotions, 1,
        "the transferred shard must be promoted exactly once"
    );

    let refined_run = measure(true);
    assert_eq!(refined_run.errors, 0, "refined serving must not fail");
    let _ = std::fs::remove_dir_all(&refine_root);

    let mut refine_table = ReportTable::new(
        "Online refinement: estimate error on a cold environment (QCFE(mscn))",
        &[
            "phase",
            "snapshot",
            "mean q-error",
            "median q-error",
            "refits",
            "promotions",
        ],
    );
    refine_table.push_row(vec![
        "before feedback".into(),
        "transferred from nearest".into(),
        fmt3(transferred_run.mean_q_error()),
        fmt3(transferred_run.median_q_error()),
        "0".into(),
        "0".into(),
    ]);
    refine_table.push_row(vec![
        "after feedback".into(),
        "refit from own labels".into(),
        fmt3(refined_run.mean_q_error()),
        fmt3(refined_run.median_q_error()),
        refine_stats.refits.to_string(),
        refine_stats.promotions.to_string(),
    ]);
    report.add_table(refine_table);
    eprintln!(
        "[serve] refinement: mean q-error {:.3} (transferred) -> {:.3} (refit) over {} labels, {} refits",
        transferred_run.mean_q_error(),
        refined_run.mean_q_error(),
        refine_stats.labels_recorded,
        refine_stats.refits,
    );

    // ---------------------------------------------------------------
    // Network front end: the qcfe-net reactor serving the same routed
    // gateway over a loopback Unix-domain socket. N remote clients each
    // pipeline their whole request batch through one connection; the
    // baseline is the same N clients calling `gateway.estimate`
    // in-process. Reported, not gated — loopback syscall cost is machine
    // noise, and the in-process sections above already carry the
    // regression gates — but every remote estimate is asserted
    // bit-identical to its in-process twin first.
    // ---------------------------------------------------------------
    let net_root = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-net-{}-{seed}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&net_root);
    let gateway = Arc::new(
        QcfeGateway::builder(&net_root)
            .service_config(shard_config)
            .build()
            .expect("gateway builds"),
    );
    for (env, snapshot) in ctx.workload.environments.iter().zip(&snapshots) {
        gateway
            .publish_snapshot(kind, env, snapshot)
            .expect("snapshot published");
        gateway.register_model(
            ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint()),
            Arc::clone(&mscn_model),
        );
    }
    let net_clients = if quick { 8 } else { 16 };
    let query_plans: Vec<PlanNode> = ctx
        .workload
        .queries
        .iter()
        .map(|q| q.executed.root.clone())
        .collect();
    let net_requests: Vec<Vec<EstimateRequest>> = (0..net_clients)
        .map(|c| {
            let env = Arc::new(ctx.workload.environments[c % env_count].clone());
            (0..requests_per_client)
                .map(|r| {
                    EstimateRequest::new(
                        kind,
                        Arc::clone(&env),
                        query_plans[(c + r) % query_plans.len()].clone(),
                    )
                })
                .collect()
        })
        .collect();

    let socket = std::env::temp_dir().join(format!(
        "qcfe-serve-bench-net-{}-{seed}.sock",
        std::process::id()
    ));
    let server = NetServerBuilder::new(Arc::clone(&gateway))
        .uds(&socket)
        .max_connections(net_clients + 4)
        .start()
        .expect("net server starts");

    // Bit-identity sanity (also warms every environment's shard before
    // either timing window): one request per client batch, remote vs
    // in-process.
    {
        let mut client = QcfeClient::connect_uds(&socket).expect("client connects");
        for batch in &net_requests {
            let request = &batch[0];
            let expected = gateway.estimate(request.clone()).expect("in-process");
            let remote = client.estimate(request).expect("remote");
            assert_eq!(
                remote.cost_ms.to_bits(),
                expected.cost_ms.to_bits(),
                "remote estimate must be bit-identical to in-process"
            );
        }
    }

    let started = Instant::now();
    std::thread::scope(|scope| {
        for batch in &net_requests {
            let gateway = &gateway;
            scope.spawn(move || {
                for request in batch {
                    gateway.estimate(request.clone()).expect("in-process");
                }
            });
        }
    });
    let inproc_tput = (net_clients * requests_per_client) as f64 / started.elapsed().as_secs_f64();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for batch in &net_requests {
            let socket = &socket;
            scope.spawn(move || {
                let mut client = QcfeClient::connect_uds(socket).expect("client connects");
                for request in batch {
                    client.send(request).expect("send");
                }
                for _ in 0..batch.len() {
                    let response = client.recv().expect("recv");
                    response.outcome.expect("remote estimate");
                }
            });
        }
    });
    let net_tput = (net_clients * requests_per_client) as f64 / started.elapsed().as_secs_f64();

    let net_stats = server.join().expect("clean reactor shutdown");
    assert_eq!(
        net_stats.responses_ok as usize,
        net_clients + net_clients * requests_per_client,
        "every remote request must be answered"
    );
    assert_eq!(net_stats.responses_fault, 0, "no remote request may fault");
    assert_eq!(net_stats.protocol_errors, 0, "no frame may be malformed");
    let _ = std::fs::remove_dir_all(&net_root);

    let mut net_table = ReportTable::new(
        "Network front end: loopback UDS reactor vs in-process gateway (QCFE(mscn))",
        &[
            "path",
            "clients",
            "requests/client",
            "aggregate throughput (est/s)",
            "ratio vs in-process",
        ],
    );
    net_table.push_row(vec![
        "in-process QcfeGateway".into(),
        net_clients.to_string(),
        requests_per_client.to_string(),
        format!("{inproc_tput:.0}"),
        fmt3(1.0),
    ]);
    net_table.push_row(vec![
        "qcfe-net UDS reactor (pipelined)".into(),
        net_clients.to_string(),
        requests_per_client.to_string(),
        format!("{net_tput:.0}"),
        fmt3(net_tput / inproc_tput),
    ]);
    report.add_table(net_table);
    eprintln!(
        "[serve] network front end: {net_clients} pipelined UDS clients {net_tput:.0} est/s vs in-process {inproc_tput:.0} est/s ({:.2}x)",
        net_tput / inproc_tput
    );

    // ---------------------------------------------------------------
    // Multi-tenant scheduling: the same adversarial mix replayed against
    // a blind-FIFO gateway and one running `SchedPolicy::edf()` with a
    // 2-slot queue share on the greedy tenant. A greedy tenant floods a
    // single-worker, throttled shard (1 ms per micro-batch, max_batch 2)
    // with deadline-less traffic from 16 closed-loop clients while two
    // compliant tenants (2 clients each) submit deadline-carrying
    // requests; the throttle makes queue wait dominate latency, so the
    // comparison measures ordering policy, not inference speed.
    // ---------------------------------------------------------------
    const GREEDY_TENANT: u32 = 7;
    const COMPLIANT_TENANTS: [u32; 2] = [21, 22];
    let sched_requests = if quick { 40 } else { 120 };
    let sched_lanes = [
        TenantLoad::greedy(GREEDY_TENANT, 16, sched_requests),
        TenantLoad::compliant(
            COMPLIANT_TENANTS[0],
            2,
            sched_requests,
            Duration::from_secs(5),
        ),
        TenantLoad::compliant(
            COMPLIANT_TENANTS[1],
            2,
            sched_requests,
            Duration::from_secs(5),
        ),
    ];
    let sched_config = ServiceConfig {
        workers: 1,
        queue_capacity: 64,
        max_batch: 2,
        encoding_cache_capacity: 1024,
    };
    let throttled_model: Arc<dyn CostModel> = Arc::new(ThrottledModel {
        inner: Arc::clone(&mscn_model),
        delay: Duration::from_millis(1),
    });
    let sched_env = Arc::new(ctx.workload.environments[0].clone());
    let sched_db = &dbs[0];
    let run_mix = |gateway: &QcfeGateway| {
        run_multi_tenant_mix(
            &ctx.benchmark,
            &sched_lanes,
            seed + 700,
            |tenant, deadline, query| {
                let plan = sched_db
                    .plan(&query)
                    .map_err(|e| SubmitError::Other(e.to_string()))?;
                let mut request = EstimateRequest::new(kind, Arc::clone(&sched_env), plan)
                    .with_tenant(TenantId(tenant));
                request.options.shed_load = true;
                if let Some(deadline) = deadline {
                    request = request.with_deadline(deadline);
                }
                match gateway.estimate(request) {
                    Ok(response) => Ok(response.cost_ms),
                    Err(QcfeError::Service(ServiceError::QueueFull { .. })) => {
                        Err(SubmitError::Shed)
                    }
                    Err(QcfeError::DeadlineExceeded { .. }) => Err(SubmitError::DeadlineExceeded),
                    Err(other) => Err(SubmitError::Other(other.to_string())),
                }
            },
        )
    };
    let run_policy = |tag: &str, policy: SchedPolicy| {
        let root = std::env::temp_dir().join(format!(
            "qcfe-serve-bench-sched-{tag}-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let gateway = QcfeGateway::builder(&root)
            .service_config(sched_config)
            .scheduling(policy)
            .build()
            .expect("gateway builds");
        gateway
            .publish_snapshot(kind, &ctx.workload.environments[0], &snapshots[0])
            .expect("snapshot published");
        gateway.register_model(
            ModelKey::new(
                kind,
                EstimatorKind::QcfeMscn,
                ctx.workload.environments[0].fingerprint(),
            ),
            Arc::clone(&throttled_model),
        );
        // Warm the shard so neither run pays model load on its first
        // timed request.
        gateway
            .estimate(EstimateRequest::new(
                kind,
                Arc::clone(&sched_env),
                ctx.workload.queries[0].executed.root.clone(),
            ))
            .expect("warm-up estimate");
        let mix = run_mix(&gateway);
        let stats = gateway.stats();
        let _ = std::fs::remove_dir_all(&root);
        (mix, stats)
    };
    eprintln!("[serve] multi-tenant scheduling: adversarial mix vs FIFO baseline...");
    let (fifo_mix, _) = run_policy("fifo", SchedPolicy::fifo());
    let (edf_mix, edf_stats) = run_policy(
        "edf",
        SchedPolicy::edf()
            .with_age_after(Duration::from_millis(50))
            .with_quota(
                TenantId(GREEDY_TENANT),
                TenantQuota::new(f64::INFINITY, f64::INFINITY, 2),
            ),
    );

    let mut sched_table = ReportTable::new(
        "Multi-tenant scheduling: adversarial mix on a throttled shard, FIFO vs EDF+quota",
        &[
            "policy",
            "tenant",
            "attempted",
            "completed",
            "shed",
            "p50 (ms)",
            "p99 (ms)",
            "goodput",
        ],
    );
    for (label, mix) in [
        ("FIFO (default)", &fifo_mix),
        ("EDF + greedy quota", &edf_mix),
    ] {
        for lane in &mix.lanes {
            // Every request must resolve typed — served, shed or deadline
            // -failed — in both runs; nothing may hang or error opaquely.
            assert_eq!(
                lane.completed + lane.shed + lane.deadline_failures + lane.other_errors,
                lane.attempted,
                "{label}: tenant {} lost requests",
                lane.tenant
            );
            assert_eq!(
                lane.other_errors, 0,
                "{label}: tenant {} hit untyped errors",
                lane.tenant
            );
            sched_table.push_row(vec![
                label.to_string(),
                if lane.tenant == GREEDY_TENANT {
                    format!("{} (greedy)", lane.tenant)
                } else {
                    format!("{} (deadline 5s)", lane.tenant)
                },
                lane.attempted.to_string(),
                lane.completed.to_string(),
                lane.shed.to_string(),
                fmt3(lane.latency_percentile_ms(50.0)),
                fmt3(lane.latency_percentile_ms(99.0)),
                fmt3(lane.goodput()),
            ]);
        }
    }
    report.add_table(sched_table);

    let fifo_p99 = pooled_p99_ms(&fifo_mix, &COMPLIANT_TENANTS);
    let edf_p99 = pooled_p99_ms(&edf_mix, &COMPLIANT_TENANTS);
    eprintln!(
        "[serve] scheduling: compliant p99 {fifo_p99:.3} ms (FIFO) -> {edf_p99:.3} ms (EDF), greedy shed {} of {}",
        edf_mix.lane(GREEDY_TENANT).map_or(0, |l| l.shed),
        edf_mix.lane(GREEDY_TENANT).map_or(0, |l| l.attempted),
    );

    // CI regression gate: with scheduling on, the compliant tenants'
    // pooled p99 must be at most half the FIFO baseline and every
    // compliant lane must keep >= 80% of its fair share (its whole
    // closed-loop demand) as goodput, despite the greedy flood.
    assert!(
        edf_p99 <= 0.5 * fifo_p99,
        "scheduling did not cut compliant p99 in half: {edf_p99:.3} ms vs FIFO {fifo_p99:.3} ms"
    );
    for tenant in COMPLIANT_TENANTS {
        let lane = edf_mix.lane(tenant).expect("compliant lane reported");
        assert!(
            lane.goodput() >= 0.8,
            "compliant tenant {tenant} goodput fell below fair share: {:.3}",
            lane.goodput()
        );
    }

    // CI regression gate: the greedy tenant is shed typed — nonzero shed
    // counters both client-side and in the gateway's per-tenant metrics
    // lane — and still gets residual service (backfill), never a hang.
    let greedy_lane = edf_mix.lane(GREEDY_TENANT).expect("greedy lane reported");
    assert!(
        greedy_lane.shed > 0,
        "greedy tenant was never shed despite a 2-slot queue share"
    );
    assert!(
        greedy_lane.completed > 0,
        "greedy tenant must still be backfilled within its share"
    );
    let greedy_metrics = edf_stats
        .tenants
        .iter()
        .find(|lane| lane.tenant == TenantId(GREEDY_TENANT))
        .expect("greedy tenant lane in gateway stats");
    assert!(
        greedy_metrics.shed_quota > 0,
        "gateway metrics must attribute the greedy tenant's sheds to its quota"
    );
    assert!(
        greedy_metrics.admitted > 0 && greedy_metrics.batches_formed > 0,
        "gateway metrics must show the greedy tenant's admitted share being served"
    );

    // ---------------------------------------------------------------
    // Replication: three local replicas with rendezvous-sharded keys,
    // closed-loop load on one shard, owner killed mid-run. Reported:
    // throughput across the kill and the time for the survivors to
    // absorb the dead peer's keys from shipped QCFS/QCFW state.
    // Asserted: the loop keeps completing requests, post-failover
    // estimates are bit-identical, no shipped state is rejected.
    // ---------------------------------------------------------------
    const REPLICAS: usize = 3;
    eprintln!("[serve] replication: {REPLICAS} local replicas, kill-one-mid-load...");
    let repl_peers: Vec<String> = {
        let listeners: Vec<TcpListener> = (0..REPLICAS)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr").to_string())
            .collect()
    };
    let mut repl_roots = Vec::new();
    let mut repl_replicators = Vec::new();
    let mut repl_gateways = Vec::new();
    let mut repl_servers = Vec::new();
    for (i, addr) in repl_peers.iter().enumerate() {
        let set = Arc::new(ReplicaSet::new(repl_peers.clone(), i).expect("replica set"));
        let replicator = Replicator::start(
            Arc::clone(&set),
            ReplicatorConfig {
                heartbeat: Duration::from_millis(100),
                connect_timeout: Duration::from_millis(100),
                ..ReplicatorConfig::default()
            },
        );
        let root = std::env::temp_dir().join(format!(
            "qcfe-serve-bench-repl-{i}-{}-{seed}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let gateway = Arc::new(
            QcfeGateway::builder(&root)
                .service_config(shard_config)
                .replication(Arc::clone(&set), replicator.sink())
                .build()
                .expect("replica gateway builds"),
        );
        let server = NetServerBuilder::new(Arc::clone(&gateway))
            .tcp(addr.clone())
            .replica(set)
            .max_connections(64)
            .start()
            .expect("replica server starts");
        repl_roots.push(root);
        repl_replicators.push(Some(replicator));
        repl_gateways.push(gateway);
        repl_servers.push(Some(server));
    }

    // Publish every environment through its rendezvous owner only; the
    // replicators ship the persisted bytes to the other two.
    let repl_keys: Vec<ModelKey> = ctx
        .workload
        .environments
        .iter()
        .map(|env| ModelKey::new(kind, EstimatorKind::QcfeMscn, env.fingerprint()))
        .collect();
    for ((env, snapshot), key) in ctx
        .workload
        .environments
        .iter()
        .zip(&snapshots)
        .zip(&repl_keys)
    {
        let owner = owner_among(&repl_peers, key).expect("placed");
        repl_gateways[owner]
            .publish_snapshot(kind, env, snapshot)
            .expect("snapshot published");
        repl_gateways[owner]
            .publish_model(*key, PersistedModel::Mscn(mscn_for_restart.clone()))
            .expect("weights published");
    }
    let converge_deadline = Instant::now() + Duration::from_secs(30);
    while !repl_gateways.iter().all(|g| {
        repl_keys.iter().all(|key| {
            g.store().contains(kind, key.fingerprint)
                && g.store()
                    .contains_model(key.benchmark, key.estimator, key.fingerprint)
        })
    }) {
        assert!(
            Instant::now() < converge_deadline,
            "replication did not converge within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let repl_client = || {
        ShardClient::new(Arc::new(
            ReplicaSet::client_view(repl_peers.clone()).expect("client view"),
        ))
        .read_timeout(Some(Duration::from_secs(5)))
        .attempt_backoff(Duration::from_millis(50))
    };
    // The load targets environment 0's shard; its owner is the victim,
    // so in-flight requests are mid-failover when it dies.
    let victim = owner_among(&repl_peers, &repl_keys[0]).expect("placed");
    let repl_env = Arc::new(ctx.workload.environments[0].clone());
    let probe_request = EstimateRequest::new(
        kind,
        Arc::clone(&repl_env),
        ctx.workload.queries[0].executed.root.clone(),
    );
    let probe_bits = repl_client()
        .estimate(&probe_request)
        .expect("pre-kill probe")
        .cost_ms
        .to_bits();

    let repl_load_clients = if quick { 2 } else { 4 };
    let load_duration = Duration::from_millis(if quick { 1500 } else { 3000 });
    let kill_after = load_duration / 3;
    let victim_server = Mutex::new(repl_servers[victim].take());
    let victim_replicator = Mutex::new(repl_replicators[victim].take());
    let absorb_ms = Mutex::new(0.0f64);
    let repl_db = &dbs[0];
    let pool = Mutex::new(
        (0..repl_load_clients)
            .map(|_| repl_client())
            .collect::<Vec<_>>(),
    );
    let repl_run = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(kill_after);
            if let Some(handle) = victim_server.lock().expect("victim lock").take() {
                handle.join().expect("victim drains");
            }
            drop(victim_replicator.lock().expect("replicator lock").take());
            // Absorb latency: from the victim being fully gone to a
            // survivor answering for its keys, redirects and liveness
            // discovery included.
            let killed = Instant::now();
            let mut prober = repl_client();
            loop {
                if let Ok(response) = prober.estimate(&probe_request) {
                    assert_eq!(
                        response.cost_ms.to_bits(),
                        probe_bits,
                        "absorbed shard must answer bit-identically"
                    );
                    break;
                }
            }
            *absorb_ms.lock().expect("absorb lock") = killed.elapsed().as_secs_f64() * 1e3;
        });
        run_timed_loop(
            &ctx.benchmark,
            repl_load_clients,
            load_duration,
            seed + 1100,
            |query| {
                let plan = repl_db.plan(&query).map_err(|e| e.to_string())?;
                let request = EstimateRequest::new(kind, Arc::clone(&repl_env), plan);
                let mut client = pool
                    .lock()
                    .expect("pool lock")
                    .pop()
                    .expect("pooled client");
                let result = client.estimate(&request);
                pool.lock().expect("pool lock").push(client);
                result.map(|r| r.cost_ms).map_err(|e| e.to_string())
            },
        )
    });
    let absorb_ms = *absorb_ms.lock().expect("absorb lock");
    assert!(
        repl_run.completed > 0,
        "the timed loop must keep completing requests across the kill"
    );
    let post_bits = repl_client()
        .estimate(&probe_request)
        .expect("post-failover probe")
        .cost_ms
        .to_bits();
    assert_eq!(
        post_bits, probe_bits,
        "post-failover estimates must be bit-identical"
    );
    let repl_shipped: u64 = repl_replicators
        .iter()
        .flatten()
        .map(|r| r.stats().ships_sent)
        .sum();
    assert!(repl_shipped > 0, "owners must have shipped state to peers");
    for (i, server) in repl_servers.iter_mut().enumerate() {
        if let Some(handle) = server.take() {
            let stats = handle.join().expect("replica drains");
            assert_eq!(
                stats.ships_rejected, 0,
                "replica {i} must not reject shipped state"
            );
        }
    }
    drop(repl_replicators);
    drop(repl_gateways);
    for root in &repl_roots {
        let _ = std::fs::remove_dir_all(root);
    }

    let mut repl_table = ReportTable::new(
        "Replication: kill-one-of-three mid-load (QCFE(mscn), rendezvous-sharded)",
        &[
            "replicas",
            "load clients",
            "wall (s)",
            "completed",
            "errors",
            "throughput (est/s)",
            "absorb latency (ms)",
        ],
    );
    repl_table.push_row(vec![
        format!("{REPLICAS} (1 killed)"),
        repl_load_clients.to_string(),
        fmt3(repl_run.wall_s),
        repl_run.completed.to_string(),
        repl_run.errors.to_string(),
        format!("{:.0}", repl_run.throughput_qps()),
        fmt3(absorb_ms),
    ]);
    report.add_table(repl_table);
    eprintln!(
        "[serve] replication: {:.0} est/s across the kill ({} completed, {} errors), absorb latency {absorb_ms:.1} ms",
        repl_run.throughput_qps(),
        repl_run.completed,
        repl_run.errors,
    );

    // ---------------------------------------------------------------
    // Revival: the anti-entropy drill. Three store-backed replicas
    // converge; the owner of the loaded shard is killed; while it is
    // down, its key's snapshot and model are re-published on the
    // failover owner, leaving the victim's disk stale; the victim is
    // restarted over that stale store mid-load. Reported: catch-up
    // latency (restart -> promoted on every survivor) and keys
    // re-shipped. Asserted: zero stale reads (every networked answer
    // bit-identical to the re-publishing owner's at that moment),
    // promotion on every survivor, the divergent snapshot + weights
    // both re-shipped, and the revived server answering manifests.
    // ---------------------------------------------------------------
    eprintln!("[serve] revival: re-publish during outage, revive mid-load...");
    let rev_peers: Vec<String> = {
        let listeners: Vec<TcpListener> = (0..REPLICAS)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
            .collect();
        listeners
            .iter()
            .map(|l| l.local_addr().expect("local addr").to_string())
            .collect()
    };
    let rev_roots: Vec<_> = (0..REPLICAS)
        .map(|i| {
            let root = std::env::temp_dir().join(format!(
                "qcfe-serve-bench-rev-{i}-{}-{seed}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&root);
            root
        })
        .collect();
    // One node = liveness set + store-backed (anti-entropy) replicator +
    // gateway + server; the victim is revived through the same
    // constructor, over the same (now stale) directory.
    let start_rev_node = |i: usize| {
        let set = Arc::new(ReplicaSet::new(rev_peers.clone(), i).expect("replica set"));
        let replicator = Replicator::with_store(
            Arc::clone(&set),
            ReplicatorConfig {
                heartbeat: Duration::from_millis(100),
                connect_timeout: Duration::from_millis(100),
                ..ReplicatorConfig::default()
            },
            SnapshotStore::open(&rev_roots[i]).expect("store opens"),
        );
        let gateway = Arc::new(
            QcfeGateway::builder(&rev_roots[i])
                .service_config(shard_config)
                .replication(Arc::clone(&set), replicator.sink())
                .build()
                .expect("replica gateway builds"),
        );
        let server = NetServerBuilder::new(Arc::clone(&gateway))
            .tcp(rev_peers[i].clone())
            .replica(Arc::clone(&set))
            .max_connections(64)
            .start()
            .expect("replica server starts");
        (set, replicator, gateway, server)
    };
    let mut rev_sets = Vec::new();
    let mut rev_replicators = Vec::new();
    let mut rev_gateways = Vec::new();
    let mut rev_servers: Vec<Option<_>> = Vec::new();
    for i in 0..REPLICAS {
        let (set, replicator, gateway, server) = start_rev_node(i);
        rev_sets.push(set);
        rev_replicators.push(Some(replicator));
        rev_gateways.push(gateway);
        rev_servers.push(Some(server));
    }

    // One loaded key is enough: publish environment 0 through its owner
    // and wait until every store holds snapshot + weights.
    let rev_key = repl_keys[0];
    let rev_victim = owner_among(&rev_peers, &rev_key).expect("placed");
    let rev_survivors: Vec<usize> = (0..REPLICAS).filter(|&i| i != rev_victim).collect();
    let rev_heir = {
        let survivor_addrs: Vec<String> = rev_survivors
            .iter()
            .map(|&s| rev_peers[s].clone())
            .collect();
        rev_survivors[owner_among(&survivor_addrs, &rev_key).expect("placed")]
    };
    rev_gateways[rev_victim]
        .publish_snapshot(kind, &ctx.workload.environments[0], &snapshots[0])
        .expect("snapshot published");
    rev_gateways[rev_victim]
        .publish_model(rev_key, PersistedModel::Mscn(mscn_for_restart.clone()))
        .expect("weights published");
    let converge_deadline = Instant::now() + Duration::from_secs(30);
    while !rev_gateways.iter().all(|g| {
        g.store().contains(kind, rev_key.fingerprint)
            && g.store()
                .contains_model(rev_key.benchmark, rev_key.estimator, rev_key.fingerprint)
    }) {
        assert!(
            Instant::now() < converge_deadline,
            "revival setup did not converge within 30s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let rev_client = || {
        ShardClient::new(Arc::new(
            ReplicaSet::client_view(rev_peers.clone()).expect("client view"),
        ))
        .read_timeout(Some(Duration::from_secs(5)))
        .attempt_backoff(Duration::from_millis(50))
    };
    let rev_env = Arc::new(ctx.workload.environments[0].clone());
    let rev_probe = EstimateRequest::new(
        kind,
        Arc::clone(&rev_env),
        ctx.workload.queries[0].executed.root.clone(),
    );
    let stale_probe_bits = rev_client()
        .estimate(&rev_probe)
        .expect("pre-kill probe")
        .cost_ms
        .to_bits();

    // Kill the victim and wait until every survivor's heartbeat agrees.
    rev_servers[rev_victim]
        .take()
        .expect("victim running")
        .join()
        .expect("victim drains");
    rev_replicators[rev_victim].take();
    let dead_deadline = Instant::now() + Duration::from_secs(30);
    while rev_survivors
        .iter()
        .any(|&s| rev_sets[s].is_alive(rev_victim))
    {
        assert!(
            Instant::now() < dead_deadline,
            "survivors did not notice the kill within 30s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Re-publish during the outage: a different fitted snapshot and the
    // int8-quantized weights under the same key — cheap, deterministic,
    // and byte-divergent from what the victim's store still holds.
    rev_gateways[rev_heir]
        .publish_snapshot(kind, &ctx.workload.environments[0], &snapshots[1])
        .expect("re-published snapshot");
    rev_gateways[rev_heir]
        .publish_model(
            rev_key,
            PersistedModel::Mscn(mscn_for_restart.clone()).quantize(),
        )
        .expect("re-published weights");
    let converge_deadline = Instant::now() + Duration::from_secs(30);
    while rev_gateways[rev_survivors[0]]
        .store()
        .manifest()
        .expect("manifest")
        != rev_gateways[rev_survivors[1]]
            .store()
            .manifest()
            .expect("manifest")
    {
        assert!(
            Instant::now() < converge_deadline,
            "survivors did not converge on the re-published state within 30s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let fresh_probe_bits = rev_gateways[rev_heir]
        .estimate(rev_probe.clone())
        .expect("fresh reference")
        .cost_ms
        .to_bits();
    assert_ne!(
        stale_probe_bits, fresh_probe_bits,
        "the re-publish must change the served estimates"
    );

    // Mid-load revival. Every networked answer is compared bit-for-bit
    // against the heir's in-process answer: only a pre-catch-up victim
    // can diverge, so any mismatch is a stale read.
    let rev_duration = Duration::from_millis(if quick { 1500 } else { 3000 });
    let revive_after = rev_duration / 3;
    let rev_pool = Mutex::new(
        (0..repl_load_clients)
            .map(|_| rev_client())
            .collect::<Vec<_>>(),
    );
    let stale_reads = AtomicU64::new(0);
    let catch_up_ms = Mutex::new(f64::NAN);
    let revived = Mutex::new(None);
    let rev_run = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(revive_after);
            let restarted = Instant::now();
            let node = start_rev_node(rev_victim);
            let deadline = Instant::now() + Duration::from_secs(30);
            while !rev_survivors
                .iter()
                .all(|&s| rev_sets[s].is_alive(rev_victim) && !rev_sets[s].is_reviving(rev_victim))
            {
                assert!(
                    Instant::now() < deadline,
                    "survivors did not promote the revived victim within 30s"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
            *catch_up_ms.lock().expect("latency lock") = restarted.elapsed().as_secs_f64() * 1e3;
            *revived.lock().expect("revived lock") = Some(node);
        });
        run_timed_loop(
            &ctx.benchmark,
            repl_load_clients,
            rev_duration,
            seed + 1200,
            |query| {
                let plan = repl_db.plan(&query).map_err(|e| e.to_string())?;
                let request = EstimateRequest::new(kind, Arc::clone(&rev_env), plan);
                let expected = rev_gateways[rev_heir]
                    .estimate(request.clone())
                    .map_err(|e| e.to_string())?;
                let mut client = rev_pool
                    .lock()
                    .expect("pool lock")
                    .pop()
                    .expect("pooled client");
                let result = client.estimate(&request);
                rev_pool.lock().expect("pool lock").push(client);
                let response = result.map_err(|e| e.to_string())?;
                if response.cost_ms.to_bits() != expected.cost_ms.to_bits() {
                    stale_reads.fetch_add(1, Ordering::Relaxed);
                }
                Ok(response.cost_ms)
            },
        )
    });
    let catch_up_ms = *catch_up_ms.lock().expect("latency lock");
    let (rev_set2, rev_replicator2, rev_gateway2, rev_server2) = revived
        .into_inner()
        .expect("revived lock")
        .expect("revival thread ran");
    assert!(
        rev_run.completed > 0,
        "the timed loop must keep completing requests across the revival"
    );
    assert_eq!(
        stale_reads.load(Ordering::Relaxed),
        0,
        "no request may ever see pre-outage bits: the reviving victim must \
         stay out of placement until its catch-up drains"
    );
    // The revived owner now serves the re-published state bit-identically.
    let post_bits = rev_client()
        .estimate(&rev_probe)
        .expect("post-revival probe")
        .cost_ms
        .to_bits();
    assert_eq!(
        post_bits, fresh_probe_bits,
        "the revived owner must serve the re-published state bit-identically"
    );
    let mut rev_reshipped = 0u64;
    let mut rev_manifests = 0u64;
    for &s in &rev_survivors {
        let stats = rev_replicators[s]
            .as_ref()
            .expect("survivor replicator")
            .stats();
        assert!(
            stats.revivals >= 1,
            "survivor {s} must have completed a revival"
        );
        assert!(
            stats.manifests_exchanged >= 1,
            "survivor {s} must have interrogated the revived peer"
        );
        assert_eq!(stats.ships_rejected, 0, "no re-ship may be rejected");
        rev_reshipped += stats.keys_reshipped;
        rev_manifests += stats.manifests_exchanged;
    }
    assert!(
        rev_reshipped >= 2,
        "the stale snapshot and weights must both have been re-shipped, got {rev_reshipped}"
    );
    drop(rev_replicator2);
    let rev_server_stats = rev_server2.join().expect("revived server drains");
    assert!(
        rev_server_stats.manifests_served >= 1,
        "the revived server must have answered manifest requests"
    );
    assert_eq!(
        rev_server_stats.ships_rejected, 0,
        "the revived server must accept every catch-up re-ship"
    );
    drop(rev_set2);
    drop(rev_gateway2);
    for server in rev_servers.iter_mut() {
        if let Some(handle) = server.take() {
            handle.join().expect("replica drains");
        }
    }
    drop(rev_replicators);
    drop(rev_gateways);
    for root in &rev_roots {
        let _ = std::fs::remove_dir_all(root);
    }

    let mut rev_table = ReportTable::new(
        "Revival: re-publish during outage, revive mid-load (anti-entropy catch-up)",
        &[
            "replicas",
            "load clients",
            "completed",
            "errors",
            "stale reads",
            "manifests exchanged",
            "keys re-shipped",
            "catch-up latency (ms)",
        ],
    );
    rev_table.push_row(vec![
        format!("{REPLICAS} (1 revived)"),
        repl_load_clients.to_string(),
        rev_run.completed.to_string(),
        rev_run.errors.to_string(),
        "0".to_string(),
        rev_manifests.to_string(),
        rev_reshipped.to_string(),
        format!("{catch_up_ms:.1}"),
    ]);
    report.add_table(rev_table);
    eprintln!(
        "[serve] revival: {} completed / {} errors across the revival, 0 stale reads, \
         {rev_reshipped} keys re-shipped, catch-up latency {catch_up_ms:.1} ms",
        rev_run.completed, rev_run.errors,
    );

    println!("{}", report.render());
    if let Some(path) = report.save_json() {
        eprintln!("[serve] report saved to {}", path.display());
    }
    if let Some(path) = report.save_bench_json() {
        eprintln!("[serve] bench trajectory saved to {}", path.display());
    }

    // CI regression gate: operator-grouped batching must never fall below
    // the scalar per-plan path.
    assert!(
        batched_best_tput >= scalar_tput,
        "batched QPPNet regressed below scalar: {batched_best_tput:.0} < {scalar_tput:.0} plans/s"
    );
    eprintln!(
        "[serve] QPPNet batched/scalar speedup: {:.2}x",
        batched_best_tput / scalar_tput
    );

    // CI regression gate: the AVX2 kernel must keep a real lead over the
    // scalar kernel on the batch-32 QPPNet path — same process, same
    // plans, same run. Skipped (loudly) on CPUs without AVX2, where the
    // sweep only exercised the scalar/portable pair.
    match avx2_f64_tput {
        Some(avx2) => {
            assert!(
                avx2 >= 1.15 * scalar_f64_tput,
                "AVX2 kernel regressed below 1.15x scalar: {avx2:.0} vs {scalar_f64_tput:.0} plans/s"
            );
            eprintln!(
                "[serve] AVX2/scalar kernel speedup at batch 32: {:.2}x",
                avx2 / scalar_f64_tput
            );
        }
        None => eprintln!("[serve] AVX2 gate skipped: CPU does not support AVX2+FMA"),
    }

    // CI regression gate: routing through the gateway must stay within 20%
    // of the equivalent hand-wired per-service setup (the front door adds
    // fingerprint hashing and one shard-map lookup per request, nothing
    // that should cost real throughput).
    assert!(
        gateway_tput >= 0.8 * handwired_tput,
        "routed gateway regressed below 80% of hand-wired: {gateway_tput:.0} vs {handwired_tput:.0} est/s"
    );

    // CI regression gate: a cold restart that loads persisted QCFW weights
    // must reach its first estimate faster than one that retrains.
    assert!(
        disk_ms < retrain_ms,
        "disk-loaded restart ({disk_ms:.3} ms) must beat retraining ({retrain_ms:.3} ms)"
    );

    // CI regression gate: online refinement must not make a cold
    // environment worse — after refit from its own labels, estimate error
    // is at most the transferred-snapshot error.
    assert!(
        refined_run.mean_q_error() <= transferred_run.mean_q_error(),
        "refit error regressed above transferred error: {:.4} > {:.4}",
        refined_run.mean_q_error(),
        transferred_run.mean_q_error()
    );
}

//! Figure 8 — convergence comparison (training error vs iteration) of a
//! directly-trained QCFE(qpp) model against a snapshot-transferred model.
//! The full transfer pipeline (including Table VII) lives in
//! `table7_transfer`; this binary only reproduces the convergence curves
//! with a lighter setup so they can be regenerated quickly.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin fig8_convergence [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::collect::collect_workload;
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::{EnvSnapshots, QppNetEstimator};
use qcfe_core::pipeline::{prepare_context, ContextConfig};
use qcfe_core::snapshot::FeatureSnapshot;
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let (quick, seed) = parse_common_args();
    let kind = BenchmarkKind::Tpch;
    let cfg = if quick {
        ContextConfig::quick(kind)
    } else {
        ContextConfig {
            seed,
            ..ContextConfig::full(kind)
        }
    };
    let iterations = if quick { 10 } else { 30 };

    let ctx = prepare_context(kind, &cfg);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);

    // Basis model trained on h1 environments.
    let (h1_train, _) = ctx.workload.split(0.8, seed);
    let mut basis = QppNetEstimator::new(encoder.clone(), None, &mut rng);
    basis.train(&h1_train, Some(&ctx.snapshots_fso), iterations, &mut rng);

    // New hardware environment and its snapshot.
    let h2_env = DbEnvironment {
        name: "env-h2".into(),
        hardware: HardwareProfile::h2(),
        ..DbEnvironment::reference()
    };
    let h2 = collect_workload(
        &ctx.benchmark,
        &[h2_env],
        if quick { 80 } else { 300 },
        seed + 3,
    );
    let (h2_train, h2_test) = h2.split(0.8, seed + 4);
    let fso_h2: EnvSnapshots = vec![Some(FeatureSnapshot::fit_from_executions(
        &h2_train
            .queries
            .iter()
            .map(|q| q.executed.clone())
            .collect::<Vec<_>>(),
    ))];

    let mut direct = QppNetEstimator::new(encoder, None, &mut rng);
    let mut transfer = basis.clone();
    let mut table = ReportTable::new(
        "Figure 8 — q-error vs training iteration",
        &["iteration", "direct training", "transferred model"],
    );
    for i in 1..=iterations {
        direct.train(&h2_train, Some(&fso_h2), 1, &mut rng);
        transfer.train(&h2_train, Some(&fso_h2), 1, &mut rng);
        table.push_row(vec![
            i.to_string(),
            fmt3(direct.evaluate(&h2_test, Some(&fso_h2)).mean_q_error),
            fmt3(transfer.evaluate(&h2_test, Some(&fso_h2)).mean_q_error),
        ]);
    }

    let mut report = ExperimentReport::new(
        "fig8",
        "convergence of direct vs transferred model (TPCH)",
        quick,
    );
    report.add_table(table);
    println!("{}", report.render());
    report.save_json();
}

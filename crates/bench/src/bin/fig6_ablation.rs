//! Figure 6 — ablation of QCFE design choices on the QPPNet model:
//! FSO, FST, FSO+FR, FSO+GD, FSO+Greedy.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin fig6_ablation [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{
    prepare_context, run_method, AblationVariant, ContextConfig, EstimatorKind, RunConfig,
};
use qcfe_workloads::BenchmarkKind;

fn main() {
    let (quick, seed) = parse_common_args();
    let sample_size = if quick { 150 } else { 1000 };
    let iterations = if quick { 8 } else { 40 };

    let mut report = ExperimentReport::new(
        "fig6",
        format!("ablation of QCFE(qpp) at scale {sample_size}"),
        quick,
    );
    for kind in BenchmarkKind::ALL {
        let cfg = if quick {
            ContextConfig::quick(kind)
        } else {
            ContextConfig {
                seed,
                ..ContextConfig::full(kind)
            }
        };
        let ctx = prepare_context(kind, &cfg);
        let mut table = ReportTable::new(
            format!("Figure 6 — {}", kind.name()),
            &[
                "variant",
                "mean q-error",
                "p50 q-error",
                "p95 q-error",
                "pearson",
            ],
        );
        for variant in AblationVariant::ALL {
            let (snapshot_source, reduction) = variant.config();
            let run = RunConfig {
                snapshot_source,
                reduction,
                ..RunConfig::new(sample_size, iterations, seed)
            };
            let result = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
            table.push_row(vec![
                variant.name().to_string(),
                fmt3(result.accuracy.mean_q_error),
                fmt3(result.accuracy.median_q_error),
                fmt3(result.accuracy.p95_q_error),
                fmt3(result.accuracy.pearson),
            ]);
            eprintln!(
                "[fig6] {} {} q={:.3}",
                kind.name(),
                variant.name(),
                result.accuracy.mean_q_error
            );
        }
        report.add_table(table);
    }
    println!("{}", report.render());
    report.save_json();
}

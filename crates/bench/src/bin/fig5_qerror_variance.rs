//! Figure 5 — q-error distribution (25th/50th/75th percentiles) per
//! benchmark and scale for QPPNet, MSCN and their QCFE variants.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin fig5_qerror_variance [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
use qcfe_workloads::BenchmarkKind;

fn main() {
    let (quick, seed) = parse_common_args();
    let scales: Vec<usize> = if quick {
        vec![150]
    } else {
        vec![500, 1000, 2000]
    };
    let estimators = [
        EstimatorKind::QcfeMscn,
        EstimatorKind::QcfeQpp,
        EstimatorKind::Mscn,
        EstimatorKind::QppNet,
    ];

    let mut report = ExperimentReport::new("fig5", "q-error percentiles (box plot data)", quick);
    for kind in BenchmarkKind::ALL {
        let cfg = if quick {
            ContextConfig::quick(kind)
        } else {
            ContextConfig {
                seed,
                ..ContextConfig::full(kind)
            }
        };
        let ctx = prepare_context(kind, &cfg);
        let mut table = ReportTable::new(
            format!("Figure 5 — {}", kind.name()),
            &["model", "scale", "p25", "p50", "p75", "p90", "variance"],
        );
        for &scale in &scales {
            for est in estimators {
                let iterations = if quick { 8 } else { 30 };
                let result = run_method(&ctx, est, &RunConfig::new(scale, iterations, seed));
                let a = &result.accuracy;
                table.push_row(vec![
                    est.name().to_string(),
                    scale.to_string(),
                    fmt3(a.p25_q_error),
                    fmt3(a.median_q_error),
                    fmt3(a.p75_q_error),
                    fmt3(a.p90_q_error),
                    fmt3(a.q_error_variance),
                ]);
            }
        }
        report.add_table(table);
    }
    println!("{}", report.render());
    report.save_json();
}

//! Table VI — robustness of difference propagation to the reference-set
//! size N: q-error, reduction runtime and reduction ratio for QCFE(qpp) on
//! TPC-H.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin table6_reference_count [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
use qcfe_workloads::BenchmarkKind;

fn main() {
    let (quick, seed) = parse_common_args();
    let reference_counts: Vec<usize> = if quick {
        vec![50, 100]
    } else {
        vec![200, 250, 300, 400, 500]
    };
    let sample_size = if quick { 150 } else { 800 };
    let kind = BenchmarkKind::Tpch;
    let cfg = if quick {
        ContextConfig::quick(kind)
    } else {
        ContextConfig {
            seed,
            ..ContextConfig::full(kind)
        }
    };
    let ctx = prepare_context(kind, &cfg);

    let mut report = ExperimentReport::new(
        "table6",
        "reference-count robustness (TPCH, QCFE(qpp))",
        quick,
    );
    let mut table = ReportTable::new(
        "Table VI — number of reference points",
        &[
            "N",
            "mean q-error",
            "p95 q-error",
            "p90 q-error",
            "FR runtime (ms)",
            "reduction ratio",
        ],
    );
    for &n in &reference_counts {
        let run = RunConfig {
            reference_count: n,
            ..RunConfig::new(sample_size, if quick { 6 } else { 30 }, seed)
        };
        let result = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
        let (runtime_ms, ratio) = {
            let outcomes: Vec<_> = result.operator_reductions.values().collect();
            let runtime: f64 = outcomes.iter().map(|o| o.runtime_ms).sum();
            let ratio = if outcomes.is_empty() {
                0.0
            } else {
                outcomes.iter().map(|o| o.reduction_ratio()).sum::<f64>() / outcomes.len() as f64
            };
            (runtime, ratio)
        };
        table.push_row(vec![
            n.to_string(),
            fmt3(result.accuracy.mean_q_error),
            fmt3(result.accuracy.p95_q_error),
            fmt3(result.accuracy.p90_q_error),
            fmt3(runtime_ms),
            fmt3(ratio),
        ]);
        eprintln!("[table6] N={n} done");
    }
    report.add_table(table);
    println!("{}", report.render());
    report.save_json();
}

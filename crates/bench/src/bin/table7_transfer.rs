//! Table VII + Figure 8 — transferability of the feature snapshot to a new
//! hardware environment (h2): a model trained on h1 environments is reused
//! on h2 by recomputing only the snapshot (FSO or FST) and fine-tuning
//! briefly, compared against training from scratch on h2 labels.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin table7_transfer [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::collect::{collect_workload, execute_queries};
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::{EnvSnapshots, QppNetEstimator};
use qcfe_core::pipeline::{prepare_context, ContextConfig};
use qcfe_core::snapshot::FeatureSnapshot;
use qcfe_core::templates::{simplified_queries, DataAbstract};
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_workloads::BenchmarkKind;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let (quick, seed) = parse_common_args();
    let mut report = ExperimentReport::new(
        "table7_fig8",
        "hardware transferability of the feature snapshot",
        quick,
    );

    for kind in [BenchmarkKind::Tpch, BenchmarkKind::JobLight] {
        let cfg = if quick {
            ContextConfig::quick(kind)
        } else {
            ContextConfig {
                seed,
                ..ContextConfig::full(kind)
            }
        };
        let basis_iterations = if quick { 8 } else { 40 };
        let finetune_iterations = basis_iterations / 4;
        let h2_queries = if quick { 80 } else { 400 };

        // 1. Train the basis QCFE(qpp) model on the h1 environments.
        let ctx = prepare_context(kind, &cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
        let (h1_train, _) = ctx.workload.split(0.8, seed);
        let mut basis = QppNetEstimator::new(encoder.clone(), None, &mut rng);
        let basis_stats = basis.train(
            &h1_train,
            Some(&ctx.snapshots_fso),
            basis_iterations,
            &mut rng,
        );

        // 2. Collect a small labeled set on the new hardware h2.
        let h2_env = DbEnvironment {
            name: "env-h2".into(),
            hardware: HardwareProfile::h2(),
            ..DbEnvironment::reference()
        };
        let h2_workload = collect_workload(
            &ctx.benchmark,
            std::slice::from_ref(&h2_env),
            h2_queries,
            seed + 7,
        );
        let (h2_train, h2_test) = h2_workload.split(0.8, seed + 8);

        // 3. Snapshots on h2: from the labeled originals (FSO) and from the
        //    simplified templates (FST).
        let fso_h2: EnvSnapshots = vec![Some(FeatureSnapshot::fit_from_executions(
            &h2_train
                .queries
                .iter()
                .map(|q| q.executed.clone())
                .collect::<Vec<_>>(),
        ))];
        let reference_db = ctx.benchmark.build_database(DbEnvironment::reference());
        let abstract_ = DataAbstract::from_database(&reference_db);
        let original_sql: Vec<String> = ctx
            .benchmark
            .templates
            .iter()
            .map(|t| t.representative_sql(&mut rng))
            .collect();
        let simplified = simplified_queries(
            &original_sql,
            &abstract_,
            cfg.template_scale.max(1),
            &mut rng,
        );
        let fst_h2: EnvSnapshots = vec![Some(FeatureSnapshot::fit_from_executions(
            &execute_queries(&ctx.benchmark, &h2_env, &simplified, seed + 9),
        ))];

        // 4a. Direct training on h2 labels only (the "basis"-equivalent on h2).
        let mut direct = QppNetEstimator::new(encoder.clone(), None, &mut rng);
        let t0 = Instant::now();
        let mut direct_curve = Vec::new();
        for _ in 0..basis_iterations {
            direct.train(&h2_train, Some(&fso_h2), 1, &mut rng);
            direct_curve.push(direct.evaluate(&h2_test, Some(&fso_h2)).mean_q_error);
        }
        let direct_time = t0.elapsed().as_secs_f64();
        let direct_acc = direct.evaluate(&h2_test, Some(&fso_h2));

        // 4b. Transfer with FSO: reuse the basis model, swap the snapshot,
        //     fine-tune briefly.
        let mut trans_fso = basis.clone();
        let t0 = Instant::now();
        let mut trans_curve = Vec::new();
        for _ in 0..finetune_iterations {
            trans_fso.train(&h2_train, Some(&fso_h2), 1, &mut rng);
            trans_curve.push(trans_fso.evaluate(&h2_test, Some(&fso_h2)).mean_q_error);
        }
        let trans_fso_time = t0.elapsed().as_secs_f64();
        let trans_fso_acc = trans_fso.evaluate(&h2_test, Some(&fso_h2));

        // 4c. Transfer with FST.
        let mut trans_fst = basis.clone();
        let t0 = Instant::now();
        trans_fst.train(&h2_train, Some(&fst_h2), finetune_iterations, &mut rng);
        let trans_fst_time = t0.elapsed().as_secs_f64();
        let trans_fst_acc = trans_fst.evaluate(&h2_test, Some(&fst_h2));

        let mut table = ReportTable::new(
            format!("Table VII — {}", kind.name()),
            &["model", "pearson", "mean q-error", "train time (s)"],
        );
        table.push_row(vec![
            "basis (direct h2 training)".into(),
            fmt3(direct_acc.pearson),
            fmt3(direct_acc.mean_q_error),
            fmt3(direct_time),
        ]);
        table.push_row(vec![
            "trans-FSO".into(),
            fmt3(trans_fso_acc.pearson),
            fmt3(trans_fso_acc.mean_q_error),
            fmt3(trans_fso_time),
        ]);
        table.push_row(vec![
            "trans-FST".into(),
            fmt3(trans_fst_acc.pearson),
            fmt3(trans_fst_acc.mean_q_error),
            fmt3(trans_fst_time),
        ]);
        report.add_table(table);

        // Figure 8 — convergence curves.
        let mut curve = ReportTable::new(
            format!("Figure 8 — convergence on {}", kind.name()),
            &["iteration", "direct q-error", "transfer q-error"],
        );
        for i in 0..direct_curve.len().max(trans_curve.len()) {
            curve.push_row(vec![
                (i + 1).to_string(),
                direct_curve
                    .get(i)
                    .map(|v| fmt3(*v))
                    .unwrap_or_else(|| "-".into()),
                trans_curve
                    .get(i)
                    .map(|v| fmt3(*v))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        report.add_table(curve);
        eprintln!(
            "[table7] {} basis trained in {:.1}s, transfer fine-tuned in {:.1}s",
            kind.name(),
            basis_stats.train_time_s,
            trans_fso_time
        );
    }
    println!("{}", report.render());
    report.save_json();
}

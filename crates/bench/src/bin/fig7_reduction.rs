//! Figure 7 — number of features removed per operator by Greedy, GD and FR
//! (difference propagation) on TPC-H.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin fig7_reduction [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
use qcfe_core::reduction::ReductionMethod;
use qcfe_db::plan::OperatorKind;
use qcfe_workloads::BenchmarkKind;
use std::collections::HashMap;

fn main() {
    let (quick, seed) = parse_common_args();
    let sample_size = if quick { 150 } else { 1000 };
    let kind = BenchmarkKind::Tpch;
    let cfg = if quick {
        ContextConfig::quick(kind)
    } else {
        ContextConfig {
            seed,
            ..ContextConfig::full(kind)
        }
    };
    let ctx = prepare_context(kind, &cfg);

    let methods = [
        ReductionMethod::Greedy,
        ReductionMethod::Gradient,
        ReductionMethod::DiffProp,
    ];
    let mut per_method: HashMap<ReductionMethod, HashMap<OperatorKind, (usize, f64)>> =
        HashMap::new();
    for method in methods {
        let run = RunConfig {
            reduction: method,
            ..RunConfig::new(sample_size, if quick { 4 } else { 10 }, seed)
        };
        let result = run_method(&ctx, EstimatorKind::QcfeQpp, &run);
        let summary = result
            .operator_reductions
            .iter()
            .map(|(op, o)| (*op, (o.removed_count(), o.reduction_ratio())))
            .collect();
        per_method.insert(method, summary);
    }

    let mut report = ExperimentReport::new("fig7", "features removed per operator (TPCH)", quick);
    let mut table = ReportTable::new(
        "Figure 7 — feature reduction per operator",
        &[
            "operator",
            "Greedy removed",
            "GD removed",
            "FR removed",
            "FR ratio",
        ],
    );
    for op in OperatorKind::ALL {
        let get = |m: ReductionMethod| {
            per_method
                .get(&m)
                .and_then(|h| h.get(&op))
                .copied()
                .unwrap_or((0, 0.0))
        };
        let (g, _) = get(ReductionMethod::Greedy);
        let (gd, _) = get(ReductionMethod::Gradient);
        let (fr, ratio) = get(ReductionMethod::DiffProp);
        if g == 0 && gd == 0 && fr == 0 {
            continue;
        }
        table.push_row(vec![
            op.name().to_string(),
            g.to_string(),
            gd.to_string(),
            fr.to_string(),
            fmt3(ratio),
        ]);
    }
    report.add_table(table);
    println!("{}", report.render());
    report.save_json();
}

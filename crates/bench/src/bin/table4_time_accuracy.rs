//! Table IV — time-accuracy efficiency of PGSQL, MSCN, QPPNet, QCFE(mscn)
//! and QCFE(qpp) across benchmarks and label-set scales.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin table4_time_accuracy [--quick] [--seed N]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::pipeline::{prepare_context, run_method, ContextConfig, EstimatorKind, RunConfig};
use qcfe_workloads::BenchmarkKind;

fn main() {
    let (quick, seed) = parse_common_args();
    let scales: Vec<usize> = if quick {
        vec![100, 200]
    } else {
        vec![500, 1000, 2000]
    };
    let iterations = |kind: BenchmarkKind| match kind {
        BenchmarkKind::Tpch => {
            if quick {
                10
            } else {
                40
            }
        }
        BenchmarkKind::JobLight => {
            if quick {
                12
            } else {
                60
            }
        }
        BenchmarkKind::Sysbench => {
            if quick {
                8
            } else {
                20
            }
        }
    };

    let mut report = ExperimentReport::new(
        "table4",
        format!("time-accuracy efficiency, scales {scales:?}, seed {seed}"),
        quick,
    );

    for bench_kind in BenchmarkKind::ALL {
        let cfg = if quick {
            ContextConfig::quick(bench_kind)
        } else {
            ContextConfig {
                seed,
                ..ContextConfig::full(bench_kind)
            }
        };
        eprintln!("[table4] preparing {} context...", bench_kind.name());
        let ctx = prepare_context(bench_kind, &cfg);

        let mut table = ReportTable::new(
            format!("Table IV — {}", bench_kind.name()),
            &[
                "model",
                "scale",
                "pearson",
                "mean q-error",
                "train time (s)",
            ],
        );
        for &scale in &scales {
            for est in EstimatorKind::ALL {
                let run = RunConfig::new(scale, iterations(bench_kind), seed);
                let result = run_method(&ctx, est, &run);
                table.push_row(vec![
                    est.name().to_string(),
                    scale.to_string(),
                    fmt3(result.accuracy.pearson),
                    fmt3(result.accuracy.mean_q_error),
                    fmt3(result.train.train_time_s),
                ]);
                eprintln!(
                    "[table4] {} {} scale={} pearson={:.3} q={:.3} t={:.2}s",
                    bench_kind.name(),
                    est.name(),
                    scale,
                    result.accuracy.pearson,
                    result.accuracy.mean_q_error,
                    result.train.train_time_s
                );
            }
        }
        report.add_table(table);
    }

    println!("{}", report.render());
    if let Some(path) = report.save_json() {
        eprintln!("saved {}", path.display());
    }
}

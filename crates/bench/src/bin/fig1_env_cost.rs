//! Figure 1 — average query cost of the same workload under different
//! database environments (knob configurations), showing the 2–3x spread that
//! motivates the feature snapshot.
//!
//! Usage: `cargo run --release -p qcfe-bench --bin fig1_env_cost [--quick]`

use qcfe_bench::report::{fmt3, parse_common_args, ExperimentReport, ReportTable};
use qcfe_core::collect::collect_workload;
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_workloads::BenchmarkKind;
use rand::SeedableRng;

fn main() {
    let (quick, seed) = parse_common_args();
    let env_count = 5;
    let queries = if quick { 100 } else { 1000 };

    let mut report = ExperimentReport::new(
        "fig1",
        format!("average cost of {queries} queries under {env_count} knob configurations"),
        quick,
    );

    for kind in [BenchmarkKind::Tpch, BenchmarkKind::Sysbench] {
        let scale = if quick {
            kind.quick_scale()
        } else {
            kind.default_scale()
        };
        let bench = kind.build(scale, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let envs = DbEnvironment::sample_knob_configs(env_count, HardwareProfile::h1(), &mut rng);
        let workload = collect_workload(&bench, &envs, queries / env_count, seed);
        let averages = workload.average_cost_per_environment();

        let mut table = ReportTable::new(
            format!("Figure 1 — {}", kind.name()),
            &["environment", "avg query cost (ms)"],
        );
        for (i, avg) in averages.iter().enumerate() {
            table.push_row(vec![format!("config-{i}"), fmt3(*avg)]);
        }
        let min = averages.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = averages.iter().cloned().fold(0.0_f64, f64::max);
        table.push_row(vec!["max/min spread".into(), fmt3(max / min.max(1e-9))]);
        report.add_table(table);
    }

    println!("{}", report.render());
    report.save_json();
}

//! Shared helpers for the QCFE experiment harness binaries and benches.
//!
//! The real content lives in `src/bin/*` (one binary per paper table/figure)
//! and `benches/*` (Criterion microbenchmarks). This library crate holds the
//! small amount of code they share: result tables, output formatting, and
//! the `--quick` switch.

pub mod json;
pub mod report;

pub use json::Json;
pub use report::{ExperimentReport, ReportTable};

//! Criterion microbenchmarks: inference latency, training step cost,
//! snapshot fitting and feature-reduction runtime — the time-efficiency side
//! of the paper's "time-accuracy" comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use qcfe_core::collect::collect_workload;
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::MscnEstimator;
use qcfe_core::pipeline::{prepare_context, ContextConfig};
use qcfe_core::reduction::{diffprop_reduction, gradient_reduction};
use qcfe_core::snapshot::{operator_samples_from, FeatureSnapshot};
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_workloads::BenchmarkKind;
use rand::SeedableRng;

fn bench_inference(c: &mut Criterion) {
    let kind = BenchmarkKind::Sysbench;
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let (train, test) = ctx.workload.split(0.8, 1);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (mscn, _) = MscnEstimator::train(encoder, &train, Some(&ctx.snapshots_fso), None, 20, &mut rng);
    let sample = &test.queries[0];
    let snapshot = ctx.snapshots_fso[sample.env_index].as_ref();

    c.bench_function("mscn_single_plan_inference", |b| {
        b.iter(|| mscn.predict(&sample.executed.root, snapshot))
    });
}

fn bench_snapshot_fit(c: &mut Criterion) {
    let kind = BenchmarkKind::Sysbench;
    let bench = kind.build(kind.quick_scale(), 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let envs = DbEnvironment::sample_knob_configs(1, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(&bench, &envs, 100, 3);
    let executions: Vec<_> = workload.queries.iter().map(|q| q.executed.clone()).collect();
    let samples = operator_samples_from(&executions);

    c.bench_function("feature_snapshot_least_squares_fit", |b| {
        b.iter(|| FeatureSnapshot::fit(&samples))
    });
}

fn bench_reduction(c: &mut Criterion) {
    use qcfe_nn::{Activation, Dataset, Mlp};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..300)
        .map(|i| (0..40).map(|k| ((i * (k + 3)) % 17) as f64 / 17.0).collect())
        .collect();
    let ys: Vec<f64> = xs.iter().map(|x| x.iter().take(5).sum::<f64>() * 10.0).collect();
    let data = Dataset::new(xs, ys).unwrap();
    let model = Mlp::new(&[40, 32, 1], Activation::Relu, &mut rng);

    let mut group = c.benchmark_group("feature_reduction");
    group.bench_function("difference_propagation_n100", |b| {
        b.iter(|| diffprop_reduction(&model, &data, 100, &mut rng))
    });
    group.bench_function("gradient_importance", |b| {
        b.iter(|| gradient_reduction(&model, &data))
    });
    group.finish();
}

fn bench_execution_simulator(c: &mut Criterion) {
    let kind = BenchmarkKind::Tpch;
    let bench = kind.build(kind.quick_scale(), 7);
    let db = bench.build_database(DbEnvironment::reference());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let query = bench.templates[0].instantiate(&mut rng);

    c.bench_function("tpch_q1_plan_and_execute", |b| {
        b.iter(|| db.execute(&query, &mut rng).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_inference, bench_snapshot_fit, bench_reduction, bench_execution_simulator
}
criterion_main!(benches);

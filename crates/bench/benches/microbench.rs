//! Microbenchmarks: inference latency, snapshot fitting and feature-reduction
//! runtime — the time-efficiency side of the paper's "time-accuracy"
//! comparisons.
//!
//! Criterion is unavailable offline, so this is a plain `harness = false`
//! bench binary with warm-up plus median-of-samples timing. Run with
//! `cargo bench -p qcfe-bench`.

use qcfe_core::collect::collect_workload;
use qcfe_core::encoding::FeatureEncoder;
use qcfe_core::estimators::MscnEstimator;
use qcfe_core::pipeline::{prepare_context, ContextConfig};
use qcfe_core::reduction::{diffprop_reduction, gradient_reduction};
use qcfe_core::snapshot::{operator_samples_from, FeatureSnapshot};
use qcfe_db::env::{DbEnvironment, HardwareProfile};
use qcfe_workloads::BenchmarkKind;
use rand::SeedableRng;
use std::time::Instant;

/// Time `f` with a short warm-up, returning the median per-iteration time in
/// microseconds over `samples` measured batches.
fn bench<F: FnMut()>(name: &str, samples: usize, iters_per_sample: usize, mut f: F) {
    for _ in 0..iters_per_sample.min(3) {
        f();
    }
    let mut times_us: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            start.elapsed().as_secs_f64() * 1e6 / iters_per_sample as f64
        })
        .collect();
    times_us.sort_by(|a, b| a.total_cmp(b));
    let median = times_us[times_us.len() / 2];
    println!("{name:<44} {median:>12.2} us/iter  ({samples} samples x {iters_per_sample} iters)");
}

fn bench_inference() {
    let kind = BenchmarkKind::Sysbench;
    let ctx = prepare_context(kind, &ContextConfig::quick(kind));
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let (train, test) = ctx.workload.split(0.8, 1);
    let encoder = FeatureEncoder::new(&ctx.benchmark.catalog, true);
    let (mscn, _) = MscnEstimator::train(
        encoder,
        &train,
        Some(&ctx.snapshots_fso),
        None,
        20,
        &mut rng,
    );
    let sample = &test.queries[0];
    let snapshot = ctx.snapshots_fso[sample.env_index].as_ref();

    bench("mscn_single_plan_inference", 20, 200, || {
        std::hint::black_box(mscn.predict(&sample.executed.root, snapshot));
    });
}

fn bench_snapshot_fit() {
    let kind = BenchmarkKind::Sysbench;
    let bench_data = kind.build(kind.quick_scale(), 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let envs = DbEnvironment::sample_knob_configs(1, HardwareProfile::h1(), &mut rng);
    let workload = collect_workload(&bench_data, &envs, 100, 3);
    let executions: Vec<_> = workload
        .queries
        .iter()
        .map(|q| q.executed.clone())
        .collect();
    let samples = operator_samples_from(&executions);

    bench("feature_snapshot_least_squares_fit", 20, 20, || {
        std::hint::black_box(FeatureSnapshot::fit(&samples));
    });
}

fn bench_reduction() {
    use qcfe_nn::{Activation, Dataset, Mlp};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let xs: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            (0..40)
                .map(|k| ((i * (k + 3)) % 17) as f64 / 17.0)
                .collect()
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| x.iter().take(5).sum::<f64>() * 10.0)
        .collect();
    let data = Dataset::new(xs, ys).unwrap();
    let model = Mlp::new(&[40, 32, 1], Activation::Relu, &mut rng);

    let mut diff_rng = rand::rngs::StdRng::seed_from_u64(6);
    bench("feature_reduction/difference_propagation", 10, 3, || {
        std::hint::black_box(diffprop_reduction(&model, &data, 100, &mut diff_rng));
    });
    bench("feature_reduction/gradient_importance", 10, 3, || {
        std::hint::black_box(gradient_reduction(&model, &data));
    });
}

fn bench_execution_simulator() {
    let kind = BenchmarkKind::Tpch;
    let bench_data = kind.build(kind.quick_scale(), 7);
    let db = bench_data.build_database(DbEnvironment::reference());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let query = bench_data.templates[0].instantiate(&mut rng);

    bench("tpch_q1_plan_and_execute", 20, 5, || {
        std::hint::black_box(db.execute(&query, &mut rng).unwrap());
    });
}

fn main() {
    println!("QCFE microbenchmarks (plain harness)");
    bench_inference();
    bench_snapshot_fit();
    bench_reduction();
    bench_execution_simulator();
}

//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The build environment has no crates.io access, so real serde is
//! unavailable. The workspace keeps its `#[derive(Serialize, Deserialize)]`
//! annotations (they document intent and keep the code drop-in compatible
//! with real serde should it become available) and persistence is done by
//! hand-written codecs instead (`qcfe_core::snapshot` binary codec,
//! `qcfe_bench::json` writer).

use proc_macro::TokenStream;

/// Expands to nothing; the annotation is documentation-only in this build.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the annotation is documentation-only in this build.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

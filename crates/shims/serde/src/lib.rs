//! Offline `serde` shim.
//!
//! Re-exports the no-op [`Serialize`]/[`Deserialize`] derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without crates.io access. Actual persistence in this workspace goes
//! through hand-written codecs (see `qcfe_core::snapshot::FeatureSnapshot::to_bytes`
//! and `qcfe_bench::json`).

pub use serde_derive::{Deserialize, Serialize};

//! A minimal, dependency-free re-implementation of the subset of the `rand`
//! crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! its own deterministic PRNG behind the familiar `rand` names:
//!
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64 (NOT the upstream
//!   ChaCha12 generator, so seeded streams differ from real `rand`, but they
//!   are equally deterministic and statistically sound for simulation),
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges,
//! * [`Rng::gen_bool`],
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`],
//! * [`SeedableRng::seed_from_u64`].
//!
//! Anything outside this subset is intentionally unimplemented.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift. The modulo
/// bias is at most `bound / 2^64`, far below anything observable here.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let x = unit_f64(rng) as $t;
                self.start + x * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.5..=2.0)`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman/Vigna), seeded
    /// through SplitMix64 so any `u64` seed yields a well-mixed state.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (`None` when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_differ_by_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds_for_all_supported_types() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let u: usize = r.gen_range(0..7);
            assert!(u < 7);
            let i: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
            let f: f64 = r.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&f));
            let g: f64 = r.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let w: u64 = r.gen_range(1..=1);
            assert_eq!(w, 1);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_and_choose_picks_members() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut r).is_none());
    }
}

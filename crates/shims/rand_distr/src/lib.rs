//! Offline subset of `rand_distr`: the [`Normal`] and [`Zipf`] distributions
//! used by the execution simulator and the synthetic data generators.
//!
//! See the sibling `rand` shim for why this exists (no crates.io access in
//! the build environment).

use rand::{Rng, RngCore};

/// Types that can be sampled given a source of randomness.
pub trait Distribution<T> {
    /// Draw one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors from invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A parameter was non-finite, non-positive, or otherwise out of range.
    InvalidParameter(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::InvalidParameter(what) => write!(f, "invalid distribution parameter: {what}"),
        }
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution, sampled via Marsaglia's polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error::InvalidParameter(
                "Normal requires finite mean and std_dev >= 0",
            ));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Marsaglia polar method; one of the pair is discarded to stay
        // stateless.
        loop {
            let u = rng.gen_range(-1.0f64..1.0);
            let v = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std_dev * u * factor;
            }
        }
    }
}

/// Zipf distribution over `{1, …, n}` with exponent `s`, sampled by inverting
/// the continuous power-law CDF (an excellent approximation for the skew
/// modelling this workspace needs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    s: f64,
}

impl Zipf {
    /// Create a Zipf distribution; requires `n >= 1` and finite `s > 0`.
    pub fn new(n: u64, s: f64) -> Result<Self, Error> {
        if n == 0 || !s.is_finite() || s <= 0.0 {
            return Err(Error::InvalidParameter("Zipf requires n >= 1 and s > 0"));
        }
        Ok(Zipf { n, s })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.n == 1 {
            return 1.0;
        }
        let n = self.n as f64;
        let u: f64 = rng.gen_range(0.0f64..1.0);
        let x = if (self.s - 1.0).abs() < 1e-9 {
            // s == 1: CDF ∝ ln(x), invert directly.
            n.powf(u)
        } else {
            let e = 1.0 - self.s;
            (u * (n.powf(e) - 1.0) + 1.0).powf(1.0 / e)
        };
        x.clamp(1.0, n).floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_matches_mean_and_spread() {
        let mut r = StdRng::seed_from_u64(1);
        let d = Normal::new(5.0, 2.0).unwrap();
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn zipf_bounds_and_skew() {
        let mut r = StdRng::seed_from_u64(2);
        let d = Zipf::new(1000, 1.2).unwrap();
        let xs: Vec<f64> = (0..5000).map(|_| d.sample(&mut r)).collect();
        assert!(xs.iter().all(|&x| (1.0..=1000.0).contains(&x)));
        let small = xs.iter().filter(|&&x| x <= 10.0).count();
        let large = xs.iter().filter(|&&x| x > 990.0).count();
        assert!(small > large * 5, "small {small} large {large}");
    }

    #[test]
    fn zipf_rejects_bad_parameters_and_handles_n1() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        let mut r = StdRng::seed_from_u64(3);
        let d = Zipf::new(1, 2.0).unwrap();
        assert_eq!(d.sample(&mut r), 1.0);
    }
}

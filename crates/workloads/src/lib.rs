//! # qcfe-workloads — benchmark schemas, data generators and query templates
//!
//! Provides the three benchmarks the QCFE paper evaluates on, rebuilt as
//! synthetic but structurally faithful workloads over the `qcfe-db`
//! substrate:
//!
//! * [`tpch`] — the eight-table TPC-H schema with 22 query templates,
//! * [`joblight`] — an IMDB-subset schema with the 70 join templates of
//!   job-light,
//! * [`sysbench`] — the single-table `oltp_read_only` mix,
//! * [`loadgen`] — a closed-loop load generator for driving online services
//!   (e.g. `qcfe-serve`) with benchmark queries from concurrent clients.
//!
//! All three expose a `benchmark(scale, seed) -> Benchmark` constructor; the
//! returned [`Benchmark`](template::Benchmark) bundles catalog, data and
//! templates and can build a [`qcfe_db::Database`] for any environment.

pub mod generator;
pub mod joblight;
pub mod loadgen;
pub mod sysbench;
pub mod template;
pub mod tpch;

pub use loadgen::{
    run_closed_loop, run_feedback_loop, run_multi_tenant_mix, run_timed_loop, ClosedLoopConfig,
    FeedbackReport, LoadReport, MultiTenantReport, ObservedEstimate, SubmitError, TenantLoad,
    TenantLoadReport,
};
pub use template::{Benchmark, ParamDomain, ParamOp, PredicateSpec, QueryTemplate};

/// Which benchmark to build (used by the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BenchmarkKind {
    /// TPC-H-style OLAP workload.
    Tpch,
    /// job-light-style IMDB join workload.
    JobLight,
    /// Sysbench-style OLTP read-only workload.
    Sysbench,
}

impl BenchmarkKind {
    /// All benchmarks, in the order the paper reports them.
    pub const ALL: [BenchmarkKind; 3] = [
        BenchmarkKind::Tpch,
        BenchmarkKind::Sysbench,
        BenchmarkKind::JobLight,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            BenchmarkKind::Tpch => "TPCH",
            BenchmarkKind::JobLight => "job-light",
            BenchmarkKind::Sysbench => "Sysbench",
        }
    }

    /// Build the benchmark at the given scale.
    pub fn build(&self, scale: f64, seed: u64) -> Benchmark {
        match self {
            BenchmarkKind::Tpch => tpch::benchmark(scale, seed),
            BenchmarkKind::JobLight => joblight::benchmark(scale, seed),
            BenchmarkKind::Sysbench => sysbench::benchmark(scale, seed),
        }
    }

    /// A scale factor suitable for fast experiments on a laptop (used by the
    /// `--quick` mode of the harness).
    pub fn quick_scale(&self) -> f64 {
        match self {
            BenchmarkKind::Tpch => 0.001,
            BenchmarkKind::JobLight => 0.02,
            BenchmarkKind::Sysbench => 0.002,
        }
    }

    /// The default scale factor used by the full experiment harness.
    pub fn default_scale(&self) -> f64 {
        match self {
            BenchmarkKind::Tpch => 0.004,
            BenchmarkKind::JobLight => 0.1,
            BenchmarkKind::Sysbench => 0.01,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_kinds_enumerate_and_build() {
        assert_eq!(BenchmarkKind::ALL.len(), 3);
        for kind in BenchmarkKind::ALL {
            assert!(!kind.name().is_empty());
            assert!(kind.quick_scale() <= kind.default_scale());
            let bench = kind.build(kind.quick_scale(), 1);
            assert!(!bench.templates.is_empty(), "{:?}", kind);
            assert!(bench.total_rows() > 0);
            assert_eq!(bench.catalog.table_count(), bench.data.len());
        }
    }

    #[test]
    fn template_counts_match_the_paper() {
        assert_eq!(tpch::templates().len(), 22);
        assert_eq!(joblight::templates().len(), 70);
        assert_eq!(sysbench::templates_for(1000).len(), 5);
    }
}
